#include "src/rpc/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/rpc/client.h"

namespace afs {

Service::Service(Network* network, std::string name, int num_workers)
    : network_(network),
      name_(std::move(name)),
      num_workers_(std::max(1, num_workers)),
      metrics_(name_),
      handle_ns_(metrics_.histogram("rpc.handle_ns")),
      queue_depth_(metrics_.gauge("rpc.queue_depth")),
      crash_failed_(metrics_.counter("rpc.crash_failed")),
      dup_replayed_(metrics_.counter("rpc.dup_replayed")),
      dup_coalesced_(metrics_.counter("rpc.dup_coalesced")),
      late_replies_(metrics_.counter("rpc.late_replies")),
      reply_cache_clients_(metrics_.gauge("rpc.reply_cache_clients")) {}

Service::~Service() {
  Shutdown();
  ReapZombies();
  if (port_ != kNullPort) {
    network_->UnbindService(port_);
  }
}

void Service::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) {
      return;
    }
  }
  if (port_ == kNullPort) {
    port_ = network_->BindService(this);
  } else {
    network_->RebindService(this, port_);
  }
  std::lock_guard<std::mutex> lock(mu_);
  running_ = true;
  stopping_ = false;
  for (int i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

bool Service::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void Service::StopWorkers(bool mark_crashed) {
  std::vector<std::shared_ptr<CallState>> to_fail;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      return;
    }
    running_ = false;
    stopping_ = true;
    // Fail everything queued and everything a worker is currently handling. The client
    // unblocks immediately with kCrashed — the paper's crash-notification property.
    for (auto& [req, state] : queue_) {
      (void)req;
      to_fail.push_back(state);
    }
    queue_.clear();
    queue_depth_->Set(0);
    for (auto& state : in_flight_) {
      to_fail.push_back(state);
    }
    // Workers are not joined here: a crash must not wait for in-flight handlers. They
    // drain into zombies_ and are reaped on Restart() or destruction.
    for (auto& w : workers_) {
      zombies_.push_back(std::move(w));
    }
    workers_.clear();
  }
  queue_cv_.notify_all();
  if (!to_fail.empty()) {
    crash_failed_->Inc(to_fail.size());
    obs::Trace(obs::TraceEvent::kRpcCrashFail, to_fail.size());
  }
  for (auto& state : to_fail) {
    std::lock_guard<std::mutex> lock(state->mu);
    if (!state->done) {
      state->done = true;
      state->result = mark_crashed ? CrashedError(name_ + " crashed")
                                   : UnavailableError(name_ + " shut down");
      state->cv.notify_all();
    }
  }
  if (port_ != kNullPort) {
    network_->SetServiceAlive(port_, false);
  }
  // The reply cache is server RAM: it dies with the process. A retransmission arriving
  // after Restart() misses the cache and re-executes — the documented at-most-once limit
  // (docs/FAULTS.md); clients are warned by kCrashed in the meantime.
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    reply_cache_.clear();
    reply_cache_clients_->Set(0);
  }
}

void Service::ReapZombies() {
  std::vector<std::thread> zombies;
  {
    std::lock_guard<std::mutex> lock(mu_);
    zombies.swap(zombies_);
  }
  for (auto& z : zombies) {
    if (z.joinable()) {
      z.join();
    }
  }
}

void Service::Crash() { StopWorkers(/*mark_crashed=*/true); }

void Service::Shutdown() { StopWorkers(/*mark_crashed=*/false); }

void Service::Restart() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) {
      return;
    }
  }
  ReapZombies();
  OnRestart();
  Start();
}

Result<Message> Service::Submit(Message request, std::chrono::milliseconds timeout) {
  const bool stamped = request.client_id != 0;
  const uint64_t client_id = request.client_id;
  const uint64_t txn_id = request.txn_id;
  std::shared_ptr<CallState> state;
  if (stamped) {
    bool fresh = false;
    state = RegisterCall(request, &fresh);
    if (!fresh) {
      return AwaitExisting(state, request, timeout);
    }
  } else {
    state = std::make_shared<CallState>();
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!running_) {
      lock.unlock();
      if (stamped) {
        ForgetCall(client_id, txn_id);
      }
      return CrashedError(name_ + " is down");
    }
    queue_.emplace_back(std::move(request), state);
    // Published under mu_ so the gauge can never under- or over-count relative to the
    // queue it describes.
    queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  }
  queue_cv_.notify_one();

  std::unique_lock<std::mutex> lock(state->mu);
  if (!state->cv.wait_for(lock, timeout, [&] { return state->done; })) {
    // The handler may still be running. Leave the call registered so its eventual reply
    // lands in the cache (counted as rpc.late_replies) where the retransmission finds it,
    // instead of discarding the reply and re-executing a possibly non-idempotent op.
    state->abandoned = true;
    return TimeoutError(name_ + " transaction timed out");
  }
  if (stamped) {
    return state->result;  // copy: the entry stays replayable for retransmissions
  }
  return std::move(state->result);
}

Result<Message> Service::AwaitExisting(const std::shared_ptr<CallState>& state,
                                       const Message& request,
                                       std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(state->mu);
  if (state->done) {
    // Replay increments ONLY rpc.dup_replayed: the handler does not re-run, so the per-op
    // count/latency instruments and the handle span all stay at exactly one per logical
    // call — the cached reply still references the original span via its trace context.
    dup_replayed_->Inc();
    obs::Trace(obs::TraceEvent::kRpcDupReplay, request.client_id, request.txn_id);
    return state->result;
  }
  // The original delivery is still executing: attach to it instead of enqueueing a second
  // execution. Handle() runs at most once no matter how many copies arrive.
  dup_coalesced_->Inc();
  if (!state->cv.wait_for(lock, timeout, [&] { return state->done; })) {
    state->abandoned = true;
    return TimeoutError(name_ + " transaction timed out");
  }
  return state->result;
}

std::shared_ptr<Service::CallState> Service::RegisterCall(const Message& request,
                                                          bool* fresh) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  ClientWindow& window = reply_cache_[request.client_id];
  window.last_used = ++cache_tick_;
  auto it = window.by_txn.find(request.txn_id);
  if (it != window.by_txn.end()) {
    *fresh = false;
    return it->second;
  }
  *fresh = true;
  auto state = std::make_shared<CallState>();
  window.by_txn.emplace(request.txn_id, state);
  window.order.push_back(request.txn_id);
  // Trim this client's window, oldest first, but never evict an in-flight call — a
  // coalesced duplicate may be waiting on it.
  while (window.order.size() > kReplyWindowPerClient) {
    const uint64_t oldest = window.order.front();
    auto oit = window.by_txn.find(oldest);
    if (oit != window.by_txn.end()) {
      std::lock_guard<std::mutex> slock(oit->second->mu);
      if (!oit->second->done) {
        break;
      }
    }
    window.order.pop_front();
    if (oit != window.by_txn.end()) {
      window.by_txn.erase(oit);
    }
  }
  if (reply_cache_.size() > kReplyCacheMaxClients) {
    EvictIdlestClientLocked(request.client_id);
  }
  reply_cache_clients_->Set(static_cast<int64_t>(reply_cache_.size()));
  return state;
}

void Service::EvictIdlestClientLocked(uint64_t keep) {
  uint64_t victim = 0;
  uint64_t victim_tick = 0;
  bool found = false;
  for (auto& [cid, window] : reply_cache_) {
    if (cid == keep || (found && window.last_used >= victim_tick)) {
      continue;
    }
    bool all_done = true;
    for (auto& [txn, state] : window.by_txn) {
      (void)txn;
      std::lock_guard<std::mutex> slock(state->mu);
      if (!state->done) {
        all_done = false;
        break;
      }
    }
    if (all_done) {
      victim = cid;
      victim_tick = window.last_used;
      found = true;
    }
  }
  if (found) {
    reply_cache_.erase(victim);
  }
}

void Service::ForgetCall(uint64_t client_id, uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = reply_cache_.find(client_id);
  if (it == reply_cache_.end()) {
    return;
  }
  it->second.by_txn.erase(txn_id);
  auto& order = it->second.order;
  order.erase(std::remove(order.begin(), order.end(), txn_id), order.end());
  if (it->second.by_txn.empty()) {
    reply_cache_.erase(it);
  }
  reply_cache_clients_->Set(static_cast<int64_t>(reply_cache_.size()));
}

void Service::WorkerLoop() {
  for (;;) {
    Message request;
    std::shared_ptr<CallState> state;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) {
        return;
      }
      request = std::move(queue_.front().first);
      state = std::move(queue_.front().second);
      queue_.pop_front();
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
      in_flight_.push_back(state);
    }

    const auto start = std::chrono::steady_clock::now();
    Result<Message> result = Status(ErrorCode::kInternal);
    {
      // Adopt the caller's trace context so this handle span — and every span the handler
      // opens below it (commit phases, nested block RPCs, journal work) — joins the
      // caller's tree. This block runs at most once per logical call: a retransmission of
      // a completed call is answered from the reply cache (AwaitExisting) without ever
      // reaching a worker, so no duplicate handle span can exist.
      obs::SpanContextScope rpc_ctx(request.trace_id, request.span_id);
      char span_name[obs::kSpanNameBytes] = "handle";
      if (obs::SpanEnabled()) {
        if (request.opcode == kGetStats) {
          std::snprintf(span_name, sizeof(span_name), "handle:stats");
        } else if (request.opcode == kGetSpans) {
          std::snprintf(span_name, sizeof(span_name), "handle:spans");
        } else {
          std::snprintf(span_name, sizeof(span_name), "handle:%u", request.opcode);
        }
      }
      obs::ScopedSpan handle_span(span_name, obs::SpanKind::kServer, request.opcode, 0);
      result = request.opcode == kGetStats   ? HandleGetStats()
               : request.opcode == kGetSpans ? HandleGetSpans(request)
                                             : Handle(request);
      if (!result.ok()) {
        handle_span.set_status(static_cast<uint8_t>(result.status().code()));
      }
    }
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             start)
            .count());
    // Primary per-op instruments: recorded here, on the one fresh execution, and nowhere
    // else — the dup-replay path must never touch them (see AwaitExisting).
    handle_ns_->Record(ns);
    OpStats* op = StatsForOp(request.opcode);
    op->count->Inc();
    op->handle_ns->Record(ns);
    obs::Trace(obs::TraceEvent::kRpcHandle, request.opcode, ns);

    {
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_.erase(std::remove(in_flight_.begin(), in_flight_.end(), state),
                       in_flight_.end());
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      // done may already be set by StopWorkers (kCrashed/kUnavailable) — that verdict
      // stands; a crash-era reply must not leak out.
      if (!state->done) {
        state->done = true;
        state->result = std::move(result);
        if (state->abandoned) {
          // Every waiter timed out before the handler finished. The reply is not lost:
          // it sits in the cache entry, where the retransmission will find it.
          late_replies_->Inc();
        }
        state->cv.notify_all();
      }
    }
  }
}

Service::OpStats* Service::StatsForOp(uint32_t opcode) {
  std::lock_guard<std::mutex> lock(op_stats_mu_);
  OpStats& stats = op_stats_[opcode];
  if (stats.count == nullptr) {
    const std::string suffix = opcode == kGetStats   ? std::string("stats")
                               : opcode == kGetSpans ? std::string("spans")
                                                     : std::to_string(opcode);
    stats.count = metrics_.counter("rpc.op." + suffix + ".count");
    stats.handle_ns = metrics_.histogram("rpc.op." + suffix + ".handle_ns");
  }
  return &stats;
}

Result<Message> Service::HandleGetStats() {
  std::string text;
  metrics_.DumpText(&text);
  WireEncoder out;
  out.PutString(text);
  return OkReply(kGetStats, std::move(out));
}

Result<Message> Service::HandleGetSpans(const Message& request) {
  WireDecoder req(std::vector<uint8_t>(request.payload));
  ASSIGN_OR_RETURN(uint32_t max_spans, req.GetU32());
  ASSIGN_OR_RETURN(uint8_t format, req.GetU8());
  max_spans = std::min<uint32_t>(max_spans, obs::kSpanRingCapacity);
  std::string text = format == 1 ? obs::DumpSpansChromeJson(max_spans)
                                 : obs::DumpSpansText(max_spans);
  // The reply must itself fit in one transaction message; drop whole lines from the OLD
  // end (text dumps are oldest-first) until it does. The Chrome export cannot be cut at a
  // line boundary, so it is retried with ever fewer events instead.
  const size_t budget = kMaxMessageBytes - 256;
  if (format == 1) {
    uint32_t n = max_spans;
    while (text.size() > budget && n > 1) {
      n /= 2;
      text = obs::DumpSpansChromeJson(n);
    }
  } else if (text.size() > budget) {
    text.erase(0, text.find('\n', text.size() - budget) + 1);
  }
  WireEncoder out;
  out.PutString(text);
  return OkReply(kGetSpans, std::move(out));
}

}  // namespace afs
