#include "src/rpc/service.h"

#include <algorithm>
#include <chrono>

#include "src/obs/trace.h"
#include "src/rpc/client.h"

namespace afs {

Service::Service(Network* network, std::string name, int num_workers)
    : network_(network),
      name_(std::move(name)),
      num_workers_(std::max(1, num_workers)),
      metrics_(name_),
      handle_ns_(metrics_.histogram("rpc.handle_ns")),
      queue_depth_(metrics_.gauge("rpc.queue_depth")),
      crash_failed_(metrics_.counter("rpc.crash_failed")) {}

Service::~Service() {
  Shutdown();
  ReapZombies();
  if (port_ != kNullPort) {
    network_->UnbindService(port_);
  }
}

void Service::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) {
      return;
    }
  }
  if (port_ == kNullPort) {
    port_ = network_->BindService(this);
  } else {
    network_->RebindService(this, port_);
  }
  std::lock_guard<std::mutex> lock(mu_);
  running_ = true;
  stopping_ = false;
  for (int i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

bool Service::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void Service::StopWorkers(bool mark_crashed) {
  std::vector<std::shared_ptr<CallState>> to_fail;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      return;
    }
    running_ = false;
    stopping_ = true;
    // Fail everything queued and everything a worker is currently handling. The client
    // unblocks immediately with kCrashed — the paper's crash-notification property.
    for (auto& [req, state] : queue_) {
      (void)req;
      to_fail.push_back(state);
    }
    queue_.clear();
    queue_depth_->Set(0);
    for (auto& state : in_flight_) {
      to_fail.push_back(state);
    }
    // Workers are not joined here: a crash must not wait for in-flight handlers. They
    // drain into zombies_ and are reaped on Restart() or destruction.
    for (auto& w : workers_) {
      zombies_.push_back(std::move(w));
    }
    workers_.clear();
  }
  queue_cv_.notify_all();
  if (!to_fail.empty()) {
    crash_failed_->Inc(to_fail.size());
    obs::Trace(obs::TraceEvent::kRpcCrashFail, to_fail.size());
  }
  for (auto& state : to_fail) {
    std::lock_guard<std::mutex> lock(state->mu);
    if (!state->done) {
      state->done = true;
      state->result = mark_crashed ? CrashedError(name_ + " crashed")
                                   : UnavailableError(name_ + " shut down");
      state->cv.notify_all();
    }
  }
  if (port_ != kNullPort) {
    network_->SetServiceAlive(port_, false);
  }
}

void Service::ReapZombies() {
  std::vector<std::thread> zombies;
  {
    std::lock_guard<std::mutex> lock(mu_);
    zombies.swap(zombies_);
  }
  for (auto& z : zombies) {
    if (z.joinable()) {
      z.join();
    }
  }
}

void Service::Crash() { StopWorkers(/*mark_crashed=*/true); }

void Service::Shutdown() { StopWorkers(/*mark_crashed=*/false); }

void Service::Restart() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) {
      return;
    }
  }
  ReapZombies();
  OnRestart();
  Start();
}

Result<Message> Service::Submit(Message request, std::chrono::milliseconds timeout) {
  auto state = std::make_shared<CallState>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      return CrashedError(name_ + " is down");
    }
    queue_.emplace_back(std::move(request), state);
    // Published under mu_ so the gauge can never under- or over-count relative to the
    // queue it describes.
    queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  }
  queue_cv_.notify_one();

  std::unique_lock<std::mutex> lock(state->mu);
  if (!state->cv.wait_for(lock, timeout, [&] { return state->done; })) {
    state->done = true;  // worker reply, if it ever arrives, is discarded
    return TimeoutError(name_ + " transaction timed out");
  }
  return std::move(state->result);
}

void Service::WorkerLoop() {
  for (;;) {
    Message request;
    std::shared_ptr<CallState> state;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) {
        return;
      }
      request = std::move(queue_.front().first);
      state = std::move(queue_.front().second);
      queue_.pop_front();
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
      in_flight_.push_back(state);
    }

    const auto start = std::chrono::steady_clock::now();
    Result<Message> result =
        request.opcode == kGetStats ? HandleGetStats() : Handle(request);
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             start)
            .count());
    handle_ns_->Record(ns);
    OpStats* op = StatsForOp(request.opcode);
    op->count->Inc();
    op->handle_ns->Record(ns);
    obs::Trace(obs::TraceEvent::kRpcHandle, request.opcode, ns);

    {
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_.erase(std::remove(in_flight_.begin(), in_flight_.end(), state),
                       in_flight_.end());
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (!state->done) {
        state->done = true;
        state->result = std::move(result);
        state->cv.notify_all();
      }
    }
  }
}

Service::OpStats* Service::StatsForOp(uint32_t opcode) {
  std::lock_guard<std::mutex> lock(op_stats_mu_);
  OpStats& stats = op_stats_[opcode];
  if (stats.count == nullptr) {
    const std::string suffix =
        opcode == kGetStats ? std::string("stats") : std::to_string(opcode);
    stats.count = metrics_.counter("rpc.op." + suffix + ".count");
    stats.handle_ns = metrics_.histogram("rpc.op." + suffix + ".handle_ns");
  }
  return &stats;
}

Result<Message> Service::HandleGetStats() {
  std::string text;
  metrics_.DumpText(&text);
  WireEncoder out;
  out.PutString(text);
  return OkReply(kGetStats, std::move(out));
}

}  // namespace afs
