// Request/reply messages, the unit of an Amoeba transaction.
//
// The paper bounds a page by "the maximum length of a message in a transaction: 32K bytes";
// we enforce the same limit on payloads so that every page really is read or written in one
// atomic request.
//
// Every request carries a (client_id, txn_id) transaction identity, the Birrell & Nelson
// at-most-once construction: the client stub retransmits a timed-out call under the SAME
// identity, and the server's reply cache recognises the duplicate and returns the original
// reply instead of re-executing. client_id 0 means "unstamped" — the request is delivered
// at most once per send and never retransmitted (CallOptions::at_most_once == false).

#ifndef SRC_RPC_MESSAGE_H_
#define SRC_RPC_MESSAGE_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace afs {

// Maximum payload of one transaction message (and therefore of one page), per the paper.
inline constexpr size_t kMaxMessageBytes = 32 * 1024;

struct Message {
  uint32_t opcode = 0;
  // At-most-once transaction identity. Stamped by Network::Call; stable across the
  // retransmissions of one logical call, unique across distinct calls.
  uint64_t client_id = 0;  // 0 = unstamped (no retransmission, no reply caching)
  uint64_t txn_id = 0;
  // Causal trace context, riding next to the identity: the caller's trace and the
  // client-side RPC span that issued this request (which becomes the parent of the
  // server's handle span). Stamped once by Network::Call and held constant across the
  // retransmissions of one logical call, so a reply replayed from the server's cache
  // always references the original span — a duplicate delivery can never fork the span
  // tree. All zero = untraced (span recording disabled at the caller).
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::vector<uint8_t> payload;

  Message() = default;
  Message(uint32_t op, std::vector<uint8_t> data) : opcode(op), payload(std::move(data)) {}
};

}  // namespace afs

#endif  // SRC_RPC_MESSAGE_H_
