// Request/reply messages, the unit of an Amoeba transaction.
//
// The paper bounds a page by "the maximum length of a message in a transaction: 32K bytes";
// we enforce the same limit on payloads so that every page really is read or written in one
// atomic request.

#ifndef SRC_RPC_MESSAGE_H_
#define SRC_RPC_MESSAGE_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace afs {

// Maximum payload of one transaction message (and therefore of one page), per the paper.
inline constexpr size_t kMaxMessageBytes = 32 * 1024;

struct Message {
  uint32_t opcode = 0;
  std::vector<uint8_t> payload;

  Message() = default;
  Message(uint32_t op, std::vector<uint8_t> data) : opcode(op), payload(std::move(data)) {}
};

}  // namespace afs

#endif  // SRC_RPC_MESSAGE_H_
