// Small client-side helpers shared by every service stub: encode a request, perform the
// transaction, decode the status header of the reply.
//
// Reply wire format, used by all AFS services:
//   u32 error_code, string error_message, then service-specific payload.

#ifndef SRC_RPC_CLIENT_H_
#define SRC_RPC_CLIENT_H_

#include <utility>

#include "src/base/status.h"
#include "src/base/wire.h"
#include "src/rpc/message.h"
#include "src/rpc/transport.h"

namespace afs {

// Service-side: encode an ok reply carrying `payload`'s bytes (status header + payload).
Message OkReply(uint32_t opcode, WireEncoder payload);
Message OkReply(uint32_t opcode);

// Service-side: encode an error reply.
Message ErrorReply(uint32_t opcode, const Status& status);

// Client-side: perform the call and peel the status header. On success the returned decoder
// owns the reply buffer and is positioned at the service-specific payload.
Result<WireDecoder> CallAndCheck(Transport* transport, Port target, uint32_t opcode,
                                 WireEncoder request, const CallOptions& options = {});

// Scrape the metrics of any live server (the Service::kGetStats op): returns the server's
// MetricRegistry text exposition.
Result<std::string> ScrapeStats(Transport* transport, Port target,
                                const CallOptions& options = {});

// Scrape recent spans from any live server (the Service::kGetSpans op). `chrome_json`
// selects the Chrome trace_event export over the one-line-per-span text form. The span
// collector is process-wide, so any server answers for the whole deployment.
Result<std::string> ScrapeSpans(Transport* transport, Port target, uint32_t max_spans,
                                bool chrome_json, const CallOptions& options = {});

}  // namespace afs

#endif  // SRC_RPC_CLIENT_H_
