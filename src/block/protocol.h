// Wire protocol of the block server (paper §4).
//
// Request payloads are WireEncoder-encoded in the field order documented per opcode below;
// replies are status-header + fields (see src/rpc/client.h). The same opcodes serve both
// plain block servers and members of a stable pair; companion traffic (server-to-server)
// uses the kCompanion* opcodes.

#ifndef SRC_BLOCK_PROTOCOL_H_
#define SRC_BLOCK_PROTOCOL_H_

#include <cstdint>

namespace afs {

enum class BlockOp : uint32_t {
  // CreateAccount: () -> (capability account)
  kCreateAccount = 1,
  // Allocate: (capability account) -> (u32 bno)
  //   Reserves a block number without writing it. Rarely used alone; see kAllocWrite.
  kAllocate = 2,
  // AllocWrite: (capability account, bytes payload) -> (u32 bno)
  //   The paper's "request to allocate and write a block" — one round trip, and in a stable
  //   pair the companion disk is written first.
  kAllocWrite = 3,
  // Write: (capability account, u32 bno, bytes payload) -> ()
  //   Atomic overwrite; acked only after durable (and, in a pair, after the companion ack).
  kWrite = 4,
  // Read: (capability account, u32 bno) -> (bytes payload)
  kRead = 5,
  // Free: (capability account, u32 bno) -> ()
  kFree = 6,
  // Lock: (capability account, u32 bno, u64 owner_port) -> ()
  //   The "simple locking facility" used by file servers for commit ("lock and read a block,
  //   examine and modify it, then write and unlock"). A lock held by a dead port is stolen.
  kLock = 7,
  // Unlock: (capability account, u32 bno, u64 owner_port) -> ()
  kUnlock = 8,
  // Recover: (capability account) -> (u32 n, n * u32 bno)
  //   "given an account number, returns a list of block numbers owned by that account."
  kRecover = 9,
  // Stat: () -> (u32 free_blocks, u32 total_blocks, u64 reads, u64 writes)
  kStat = 10,

  // --- Vectored (batched) block I/O -----------------------------------------
  // The paper sizes pages against "the maximum length of a message in a transaction: 32K
  // bytes"; these opcodes pack as many blocks as fit under kMaxMessageBytes into one
  // transaction. The client stub chunks larger batches automatically (BlockClient); a
  // batch therefore never produces an oversized message. Each chunk is one server
  // transaction: it is applied (and replicated companion-first) as a unit.
  //
  // ReadMulti: (capability account, u32 n, n * u32 bno) ->
  //   (u32 n, n * (u32 error_code, bytes payload))
  //   Per-block status so one missing block does not fail the batch (recovery scans read
  //   everything the account owns, tolerating holes). The client stub bounds n by the
  //   REPLY size: n * (8 + payload_capacity) must stay under kMaxMessageBytes.
  kReadMulti = 11,
  // WriteMulti: (capability account, u32 n, n * (u32 bno, bytes payload)) -> ()
  //   Atomic overwrite of existing blocks. The whole chunk is validated first, shipped to
  //   the companion in one kCompanionWriteMulti transaction per sub-chunk (companion-first
  //   order preserved per block), then written locally. A collision anywhere in the chunk
  //   rejects the chunk before any damage is done.
  kWriteMulti = 12,
  // FreeMulti: (capability account, u32 n, n * u32 bno) -> ()
  //   Batched tombstone writes (account 0), mirrored to the companion per chunk.
  kFreeMulti = 13,
  // AllocMulti: (capability account, u32 n) -> (u32 n, n * u32 bno)
  //   Reserve-and-stamp n blocks in one round trip (one companion transaction for the
  //   whole stamp batch). Callers follow up with WriteMulti to fill them — two transactions
  //   where the single-block path needs n.
  kAllocMulti = 14,

  // Companion traffic (only accepted from the configured companion):
  // CompanionWrite: (u32 bno, u64 account_object, bytes payload, u8 is_alloc) -> ()
  //   "B then writes the block to disk at the address indicated by A". Collision detection
  //   happens here: if B itself has an in-flight primary operation on the same block, the
  //   write is rejected with kConflict ("collisions are detected ... because writes are
  //   always carried out on the companion disk first").
  kCompanionWrite = 20,
  // CompanionFree: (u32 bno) -> ()
  kCompanionFree = 21,
  // FetchIntentions: () -> (u32 n, n * u32 bno)
  //   Restarting server asks the survivor which blocks changed while it was down
  //   ("block servers make intentions lists for crashed companion servers").
  kFetchIntentions = 22,
  // CompanionRead: (u32 bno) -> (u64 account_object, u8 in_use, bytes payload)
  //   Raw read used during compare-notes recovery and corrupt-block repair.
  kCompanionRead = 23,
  // CompanionWriteMulti: (u32 n, n * (u32 bno, u64 account_object, u64 seq, bytes payload,
  //   u8 is_alloc)) -> ()
  //   One companion transaction per batch chunk instead of one per block. Collision
  //   detection covers the WHOLE chunk before any block is written: if any entry collides
  //   with an in-flight primary operation (or an allocate collision), the entire chunk is
  //   rejected with kConflict and the companion disk is untouched.
  kCompanionWriteMulti = 24,
};

// Default geometry: 4 KiB physical blocks. The page layer chains blocks for pages larger
// than one block's payload (§5.1 footnote on arbitrarily long atomic pages).
inline constexpr uint32_t kDefaultBlockSize = 4096;

}  // namespace afs

#endif  // SRC_BLOCK_PROTOCOL_H_
