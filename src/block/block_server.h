// BlockServer: the bottom of the storage hierarchy (paper §4, Figure 1).
//
// Manages fixed-size blocks on one BlockDevice: allocate, free, read, write — writes atomic
// and acknowledged only once durable — plus account-based protection, a simple locking
// facility, and the account-scan recovery operation. A BlockServer may be paired with a
// *companion* on a different disk to form stable storage: every write then goes to the
// companion's disk first ("in contrast to Lampson and Sturgis' method which uses one server
// and two disk drives"), collisions are detected at the companion, and after a crash the
// returning server compares notes with the survivor before accepting requests.
//
// Internal state is striped into `num_shards` mutex shards keyed by block number — each
// shard guards its slice of the allocation map, the lock table and the in-flight set — so
// the multi-worker Service scales instead of convoying on one mutex. Cross-block state
// (accounts, allocation cursor, intentions list) lives behind its own small mutexes or
// atomics. Lock order, where two are ever held: alloc_mu_ -> shard.mu.
//
// On-disk block format (self-describing, enabling Recover() by scan and CRC integrity):
//   u32 magic | u64 account_object | u64 write_seq | u32 payload_crc | u32 payload_len | data
// The header steals 28 bytes of each physical block; payload capacity is block_size - 28.

#ifndef SRC_BLOCK_BLOCK_SERVER_H_
#define SRC_BLOCK_BLOCK_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/base/capability.h"
#include "src/base/rng.h"
#include "src/disk/block_device.h"
#include "src/rpc/service.h"

namespace afs {

inline constexpr uint32_t kBlockHeaderBytes = 28;
inline constexpr uint32_t kBlockMagic = 0xafb10c05;

class BlockServer : public Service {
 public:
  // `device` must outlive the server. `secret_seed` keys the capability signer.
  // `num_shards` (rounded up to a power of two) stripes the lock/allocation state;
  // `num_workers` sizes the Service worker pool (bench_batch sweeps both).
  BlockServer(Network* network, std::string name, BlockDevice* device, uint64_t secret_seed,
              uint32_t num_shards = 16, int num_workers = 4);

  // Pair this server with its companion. Both directions must be configured. Until paired
  // (or when `companion == kNullPort`), the server runs standalone and writes only locally.
  void SetCompanion(Port companion);

  // Usable payload bytes per block.
  uint32_t payload_capacity() const;

  // Direct (in-process) account creation for bootstrap; also reachable via kCreateAccount.
  Capability CreateAccountDirect();

  // Cold-start adoption of pre-existing on-disk state (a persistent device, e.g. FileDisk,
  // opened from a previous process run): the same scan-and-compare-notes recovery that
  // OnRestart() performs after an in-process crash. Call after Start() (and after
  // SetCompanion, if any) and before serving clients.
  void RecoverFromDisk();

  // Test hooks / stats.
  uint64_t collisions_detected() const { return collisions_.load(); }
  uint64_t degraded_writes() const { return degraded_writes_.load(); }
  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  BlockDevice* device() const { return device_; }

 protected:
  Result<Message> Handle(const Message& request) override;

  // Crash recovery (paper §4): scan the local disk to rebuild the allocation map, then
  // compare notes with the companion — fetch its intentions list and replay the blocks this
  // server missed while down — before accepting any requests.
  void OnRestart() override;

 private:
  struct BlockMeta {
    uint64_t account = 0;
    uint64_t seq = 0;
    bool in_use = false;
  };

  // One stripe of the block-keyed state. blocks_[bno] (in the flat vector below) is guarded
  // by ShardFor(bno).mu as well.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<BlockNo, Port> locks;
    // Blocks with local primary operations currently in flight (value = nesting count); a
    // companion write that lands on one of these is a collision.
    std::unordered_map<BlockNo, int> in_flight_primary;
  };

  // One entry of a batched stable write, after validation and seq assignment.
  struct PendingWrite {
    BlockNo bno = 0;
    uint64_t account = 0;
    uint64_t seq = 0;
    std::vector<uint8_t> payload;
    bool is_alloc = false;
  };

  // -- Request handlers (one per opcode) ------------------------------------
  Result<Message> HandleCreateAccount(const Message& m);
  Result<Message> HandleAllocate(const Message& m);
  Result<Message> HandleAllocWrite(const Message& m);
  Result<Message> HandleWrite(const Message& m);
  Result<Message> HandleRead(const Message& m);
  Result<Message> HandleFree(const Message& m);
  Result<Message> HandleReadMulti(const Message& m);
  Result<Message> HandleWriteMulti(const Message& m);
  Result<Message> HandleFreeMulti(const Message& m);
  Result<Message> HandleAllocMulti(const Message& m);
  Result<Message> HandleLock(const Message& m);
  Result<Message> HandleUnlock(const Message& m);
  Result<Message> HandleRecover(const Message& m);
  Result<Message> HandleStat(const Message& m);
  Result<Message> HandleCompanionWrite(const Message& m);
  Result<Message> HandleCompanionWriteMulti(const Message& m);
  Result<Message> HandleCompanionFree(const Message& m);
  Result<Message> HandleFetchIntentions(const Message& m);
  Result<Message> HandleCompanionRead(const Message& m);

  // -- Internals -------------------------------------------------------------
  Shard& ShardFor(BlockNo bno) { return shards_[bno & shard_mask_]; }
  Status VerifyAccount(const Capability& cap, uint32_t rights, uint64_t* account_out);
  Result<BlockNo> PickFreeBlock();
  // Validates that `bno` exists, is allocated, and belongs to `account` (shared by the
  // single and vectored write/free paths). `require_in_use` false = free-style idempotence.
  Status CheckWritable(BlockNo bno, uint64_t account, bool* in_use_out);
  // Core of Write/AllocWrite: companion-first stable write, with intentions-list fallback
  // when the companion is down.
  Status StableWrite(BlockNo bno, uint64_t account, std::span<const uint8_t> payload,
                     bool is_alloc);
  // Batched form: ships the batch to the companion in kCompanionWriteMulti chunks (each
  // under kMaxMessageBytes), pipelining chunk i+1's companion RPC with chunk i's local
  // writes. Per-block companion-first order is preserved: a block is written locally only
  // after its chunk was acked (or the companion was found down and an intention recorded).
  Status StableWriteBatch(std::vector<PendingWrite> writes);
  Status WriteLocal(BlockNo bno, uint64_t account, uint64_t seq,
                    std::span<const uint8_t> payload);
  // Reads the payload; on CRC failure consults the companion and repairs the local copy.
  Result<std::vector<uint8_t>> ReadPayload(BlockNo bno, uint64_t account,
                                           bool check_account);
  Result<std::vector<uint8_t>> FetchFromCompanion(BlockNo bno);
  void RecordIntention(BlockNo bno);
  void MarkInFlight(std::span<const PendingWrite> writes, int delta);
  void RebuildAllocationFromDisk();
  void ReplayIntentionsFromCompanion();

  BlockDevice* device_;
  CapabilitySigner signer_;

  std::mutex accounts_mu_;  // guards accounts_ and rng_
  Rng rng_;
  std::unordered_set<uint64_t> accounts_;

  std::vector<Shard> shards_;
  uint32_t shard_mask_ = 0;
  // blocks_[bno] is guarded by ShardFor(bno).mu; the vector itself is sized once.
  std::vector<BlockMeta> blocks_;

  std::mutex alloc_mu_;  // guards the cursor; PickFreeBlock takes shard locks under it
  BlockNo alloc_cursor_ = 0;

  std::mutex intentions_mu_;
  // Blocks written while the companion was unreachable; shipped to it on its restart.
  std::set<BlockNo> intentions_for_companion_;

  std::atomic<uint64_t> next_seq_{1};
  std::atomic<Port> companion_{kNullPort};
  std::atomic<uint64_t> collisions_{0};
  std::atomic<uint64_t> degraded_writes_{0};
};

}  // namespace afs

#endif  // SRC_BLOCK_BLOCK_SERVER_H_
