// BlockServer: the bottom of the storage hierarchy (paper §4, Figure 1).
//
// Manages fixed-size blocks on one BlockDevice: allocate, free, read, write — writes atomic
// and acknowledged only once durable — plus account-based protection, a simple locking
// facility, and the account-scan recovery operation. A BlockServer may be paired with a
// *companion* on a different disk to form stable storage: every write then goes to the
// companion's disk first ("in contrast to Lampson and Sturgis' method which uses one server
// and two disk drives"), collisions are detected at the companion, and after a crash the
// returning server compares notes with the survivor before accepting requests.
//
// On-disk block format (self-describing, enabling Recover() by scan and CRC integrity):
//   u32 magic | u64 account_object | u64 write_seq | u32 payload_crc | u32 payload_len | data
// The header steals 28 bytes of each physical block; payload capacity is block_size - 28.

#ifndef SRC_BLOCK_BLOCK_SERVER_H_
#define SRC_BLOCK_BLOCK_SERVER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/base/capability.h"
#include "src/base/rng.h"
#include "src/disk/block_device.h"
#include "src/rpc/service.h"

namespace afs {

inline constexpr uint32_t kBlockHeaderBytes = 28;
inline constexpr uint32_t kBlockMagic = 0xafb10c05;

class BlockServer : public Service {
 public:
  // `device` must outlive the server. `secret_seed` keys the capability signer.
  BlockServer(Network* network, std::string name, BlockDevice* device, uint64_t secret_seed);

  // Pair this server with its companion. Both directions must be configured. Until paired
  // (or when `companion == kNullPort`), the server runs standalone and writes only locally.
  void SetCompanion(Port companion);

  // Usable payload bytes per block.
  uint32_t payload_capacity() const;

  // Direct (in-process) account creation for bootstrap; also reachable via kCreateAccount.
  Capability CreateAccountDirect();

  // Cold-start adoption of pre-existing on-disk state (a persistent device, e.g. FileDisk,
  // opened from a previous process run): the same scan-and-compare-notes recovery that
  // OnRestart() performs after an in-process crash. Call after Start() (and after
  // SetCompanion, if any) and before serving clients.
  void RecoverFromDisk();

  // Test hooks / stats.
  uint64_t collisions_detected() const;
  uint64_t degraded_writes() const;  // writes performed while the companion was down
  BlockDevice* device() const { return device_; }

 protected:
  Result<Message> Handle(const Message& request) override;

  // Crash recovery (paper §4): scan the local disk to rebuild the allocation map, then
  // compare notes with the companion — fetch its intentions list and replay the blocks this
  // server missed while down — before accepting any requests.
  void OnRestart() override;

 private:
  struct BlockMeta {
    uint64_t account = 0;
    uint64_t seq = 0;
    bool in_use = false;
  };

  // -- Request handlers (one per opcode) ------------------------------------
  Result<Message> HandleCreateAccount(const Message& m);
  Result<Message> HandleAllocate(const Message& m);
  Result<Message> HandleAllocWrite(const Message& m);
  Result<Message> HandleWrite(const Message& m);
  Result<Message> HandleRead(const Message& m);
  Result<Message> HandleFree(const Message& m);
  Result<Message> HandleLock(const Message& m);
  Result<Message> HandleUnlock(const Message& m);
  Result<Message> HandleRecover(const Message& m);
  Result<Message> HandleStat(const Message& m);
  Result<Message> HandleCompanionWrite(const Message& m);
  Result<Message> HandleCompanionFree(const Message& m);
  Result<Message> HandleFetchIntentions(const Message& m);
  Result<Message> HandleCompanionRead(const Message& m);

  // -- Internals -------------------------------------------------------------
  Status VerifyAccount(const Capability& cap, uint32_t rights, uint64_t* account_out);
  Result<BlockNo> PickFreeBlock();
  // Core of Write/AllocWrite: companion-first stable write, with intentions-list fallback
  // when the companion is down.
  Status StableWrite(BlockNo bno, uint64_t account, std::span<const uint8_t> payload,
                     bool is_alloc);
  Status WriteLocal(BlockNo bno, uint64_t account, uint64_t seq,
                    std::span<const uint8_t> payload);
  // Reads the payload; on CRC failure consults the companion and repairs the local copy.
  Result<std::vector<uint8_t>> ReadPayload(BlockNo bno, uint64_t account,
                                           bool check_account);
  Result<std::vector<uint8_t>> FetchFromCompanion(BlockNo bno);
  void RecordIntention(BlockNo bno);
  void RebuildAllocationFromDisk();
  void ReplayIntentionsFromCompanion();

  BlockDevice* device_;
  CapabilitySigner signer_;
  Rng rng_;

  mutable std::mutex state_mu_;
  std::unordered_set<uint64_t> accounts_;
  uint64_t next_account_ = 1;
  uint64_t next_seq_ = 1;
  std::vector<BlockMeta> blocks_;
  BlockNo alloc_cursor_ = 0;
  std::unordered_map<BlockNo, Port> locks_;
  // Blocks with local primary operations currently in flight (value = nesting count); a
  // companion write that lands on one of these is a collision.
  std::unordered_map<BlockNo, int> in_flight_primary_;
  // Blocks written while the companion was unreachable; shipped to it on its restart.
  std::set<BlockNo> intentions_for_companion_;
  Port companion_ = kNullPort;
  uint64_t collisions_ = 0;
  uint64_t degraded_writes_ = 0;
};

}  // namespace afs

#endif  // SRC_BLOCK_BLOCK_SERVER_H_
