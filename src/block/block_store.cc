#include "src/block/block_store.h"

#include <chrono>
#include <thread>

#include "src/base/wire.h"
#include "src/block/protocol.h"
#include "src/rpc/client.h"

namespace afs {

// ---------------------------------------------------------------------------
// BlockClient
// ---------------------------------------------------------------------------

BlockClient::BlockClient(Network* network, Port server, Capability account,
                         uint32_t payload_capacity)
    : network_(network),
      server_(server),
      account_(account),
      payload_capacity_(payload_capacity) {}

Result<BlockNo> BlockClient::AllocWrite(std::span<const uint8_t> payload) {
  WireEncoder req;
  req.PutCapability(account_);
  req.PutBytes(payload);
  ASSIGN_OR_RETURN(WireDecoder reply,
                   CallAndCheck(network_, server_, static_cast<uint32_t>(BlockOp::kAllocWrite),
                                std::move(req)));
  return reply.GetU32();
}

Status BlockClient::Write(BlockNo bno, std::span<const uint8_t> payload) {
  WireEncoder req;
  req.PutCapability(account_);
  req.PutU32(bno);
  req.PutBytes(payload);
  return CallAndCheck(network_, server_, static_cast<uint32_t>(BlockOp::kWrite), std::move(req))
      .status();
}

Result<std::vector<uint8_t>> BlockClient::Read(BlockNo bno) {
  WireEncoder req;
  req.PutCapability(account_);
  req.PutU32(bno);
  ASSIGN_OR_RETURN(WireDecoder reply,
                   CallAndCheck(network_, server_, static_cast<uint32_t>(BlockOp::kRead),
                                std::move(req)));
  return reply.GetBytes();
}

Status BlockClient::Free(BlockNo bno) {
  WireEncoder req;
  req.PutCapability(account_);
  req.PutU32(bno);
  return CallAndCheck(network_, server_, static_cast<uint32_t>(BlockOp::kFree), std::move(req))
      .status();
}

Status BlockClient::Lock(BlockNo bno, Port owner) {
  WireEncoder req;
  req.PutCapability(account_);
  req.PutU32(bno);
  req.PutU64(owner);
  return CallAndCheck(network_, server_, static_cast<uint32_t>(BlockOp::kLock), std::move(req))
      .status();
}

Status BlockClient::Unlock(BlockNo bno, Port owner) {
  WireEncoder req;
  req.PutCapability(account_);
  req.PutU32(bno);
  req.PutU64(owner);
  return CallAndCheck(network_, server_, static_cast<uint32_t>(BlockOp::kUnlock), std::move(req))
      .status();
}

Result<std::vector<BlockNo>> BlockClient::ListBlocks() {
  WireEncoder req;
  req.PutCapability(account_);
  ASSIGN_OR_RETURN(WireDecoder reply,
                   CallAndCheck(network_, server_, static_cast<uint32_t>(BlockOp::kRecover),
                                std::move(req)));
  ASSIGN_OR_RETURN(uint32_t n, reply.GetU32());
  std::vector<BlockNo> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(BlockNo bno, reply.GetU32());
    out.push_back(bno);
  }
  return out;
}

// ---------------------------------------------------------------------------
// StableStore
// ---------------------------------------------------------------------------

namespace {

bool IsConnectivityError(const Status& s) {
  switch (s.code()) {
    case ErrorCode::kCrashed:
    case ErrorCode::kTimeout:
    case ErrorCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

}  // namespace

StableStore::StableStore(std::unique_ptr<BlockClient> a, std::unique_ptr<BlockClient> b,
                         uint64_t retry_seed)
    : rng_(retry_seed) {
  members_[0] = std::move(a);
  members_[1] = std::move(b);
}

template <typename T>
Result<T> StableStore::WithFailover(const std::function<Result<T>(BlockClient*)>& op) {
  constexpr int kMaxCollisionRetries = 8;
  for (int attempt = 0; attempt < kMaxCollisionRetries; ++attempt) {
    int first;
    {
      std::lock_guard<std::mutex> lock(mu_);
      first = preferred_;
    }
    Result<T> result = op(members_[first].get());
    if (!result.ok() && IsConnectivityError(result.status())) {
      // "Clients send requests to the alternative block server if the primary fails to
      // respond."
      int other = 1 - first;
      result = op(members_[other].get());
      if (result.ok() || !IsConnectivityError(result.status())) {
        std::lock_guard<std::mutex> lock(mu_);
        preferred_ = other;
      }
    }
    if (result.ok() || result.status().code() != ErrorCode::kConflict) {
      return result;
    }
    // Allocate/write collision: "redo the operation after a random wait interval."
    uint64_t wait_us;
    {
      std::lock_guard<std::mutex> lock(mu_);
      wait_us = rng_.NextInRange(50, 500) << attempt;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(wait_us));
  }
  return ConflictError("persistent block collision");
}

Result<BlockNo> StableStore::AllocWrite(std::span<const uint8_t> payload) {
  return WithFailover<BlockNo>([&](BlockClient* c) { return c->AllocWrite(payload); });
}

namespace {
// Adapts a Status-returning call to the Result-based failover helper.
struct Unit {};
}  // namespace

Status StableStore::Write(BlockNo bno, std::span<const uint8_t> payload) {
  return WithFailover<Unit>([&](BlockClient* c) -> Result<Unit> {
           RETURN_IF_ERROR(c->Write(bno, payload));
           return Unit{};
         })
      .status();
}

Result<std::vector<uint8_t>> StableStore::Read(BlockNo bno) {
  return WithFailover<std::vector<uint8_t>>([&](BlockClient* c) { return c->Read(bno); });
}

Status StableStore::Free(BlockNo bno) {
  return WithFailover<Unit>([&](BlockClient* c) -> Result<Unit> {
           RETURN_IF_ERROR(c->Free(bno));
           return Unit{};
         })
      .status();
}

Status StableStore::Lock(BlockNo bno, Port owner) {
  // Locks are not replicated: they die with the server that grants them, and lock holders
  // are identified by (possibly dead) ports, so the waiter-side recovery of §5.3 applies.
  // Locks always target the preferred member so both parties race on the same lock table.
  return WithFailover<Unit>([&](BlockClient* c) -> Result<Unit> {
           RETURN_IF_ERROR(c->Lock(bno, owner));
           return Unit{};
         })
      .status();
}

Status StableStore::Unlock(BlockNo bno, Port owner) {
  return WithFailover<Unit>([&](BlockClient* c) -> Result<Unit> {
           RETURN_IF_ERROR(c->Unlock(bno, owner));
           return Unit{};
         })
      .status();
}

Result<std::vector<BlockNo>> StableStore::ListBlocks() {
  return WithFailover<std::vector<BlockNo>>([&](BlockClient* c) { return c->ListBlocks(); });
}

uint32_t StableStore::payload_capacity() const { return members_[0]->payload_capacity(); }

// ---------------------------------------------------------------------------
// InMemoryBlockStore
// ---------------------------------------------------------------------------

InMemoryBlockStore::InMemoryBlockStore(uint32_t payload_capacity, uint32_t num_blocks)
    : payload_capacity_(payload_capacity), num_blocks_(num_blocks) {
  latency_.BindMetrics(metrics_.counter("store.charged_ops"),
                       metrics_.histogram("store.charged_ns"));
}

Result<BlockNo> InMemoryBlockStore::AllocWrite(std::span<const uint8_t> payload) {
  latency_.Charge();
  if (payload.size() > payload_capacity_) {
    return InvalidArgumentError("payload exceeds block capacity");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (blocks_.size() >= num_blocks_) {
    return NoSpaceError("in-memory store full");
  }
  while (blocks_.count(next_) > 0) {
    next_ = (next_ + 1) & kMaxBlockNo;
  }
  BlockNo bno = next_;
  next_ = (next_ + 1) & kMaxBlockNo;
  blocks_[bno] = std::vector<uint8_t>(payload.begin(), payload.end());
  writes_->Inc();
  return bno;
}

Status InMemoryBlockStore::Write(BlockNo bno, std::span<const uint8_t> payload) {
  latency_.Charge();
  if (payload.size() > payload_capacity_) {
    return InvalidArgumentError("payload exceeds block capacity");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(bno);
  if (it == blocks_.end()) {
    return NotFoundError("write to unallocated block");
  }
  it->second.assign(payload.begin(), payload.end());
  writes_->Inc();
  return OkStatus();
}

Result<std::vector<uint8_t>> InMemoryBlockStore::Read(BlockNo bno) {
  latency_.Charge();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(bno);
  if (it == blocks_.end()) {
    return NotFoundError("read of unallocated block");
  }
  reads_->Inc();
  return it->second;
}

Status InMemoryBlockStore::Free(BlockNo bno) {
  std::lock_guard<std::mutex> lock(mu_);
  blocks_.erase(bno);
  locks_.erase(bno);
  frees_->Inc();
  return OkStatus();
}

Status InMemoryBlockStore::Lock(BlockNo bno, Port owner) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = locks_.find(bno);
  if (it != locks_.end() && it->second != owner) {
    lock_contended_->Inc();
    return LockedError("block locked");
  }
  locks_[bno] = owner;
  return OkStatus();
}

Status InMemoryBlockStore::Unlock(BlockNo bno, Port owner) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = locks_.find(bno);
  if (it == locks_.end() || it->second != owner) {
    return InvalidArgumentError("unlock by non-holder");
  }
  locks_.erase(it);
  return OkStatus();
}

Result<std::vector<BlockNo>> InMemoryBlockStore::ListBlocks() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BlockNo> out;
  out.reserve(blocks_.size());
  for (const auto& [bno, data] : blocks_) {
    (void)data;
    out.push_back(bno);
  }
  return out;
}

size_t InMemoryBlockStore::allocated_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.size();
}

}  // namespace afs
