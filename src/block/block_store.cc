#include "src/block/block_store.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "src/base/wire.h"
#include "src/block/protocol.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/rpc/client.h"

namespace afs {

namespace {

std::atomic<bool> g_batching_enabled{true};

// Wire slack reserved per message for the fixed parts of a vectored request/reply
// (capability, counts, status header). Generous on purpose; the cost of a slightly
// smaller chunk is one extra RPC, the cost of an oversized message is a hard failure.
constexpr size_t kBatchFixedSlack = 96;

// Encoded bytes of one WriteMulti entry: u32 bno + length-prefixed payload.
size_t WriteEntryBytes(const BlockWrite& w) { return 4 + 4 + w.payload.size(); }

}  // namespace

void SetBatchingEnabled(bool enabled) {
  g_batching_enabled.store(enabled, std::memory_order_relaxed);
}

bool BatchingEnabled() { return g_batching_enabled.load(std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// BlockStore default (per-block loop) implementations
// ---------------------------------------------------------------------------

Result<std::vector<BlockReadResult>> BlockStore::ReadMulti(std::span<const BlockNo> bnos) {
  std::vector<BlockReadResult> out(bnos.size());
  for (size_t i = 0; i < bnos.size(); ++i) {
    auto data = Read(bnos[i]);
    if (data.ok()) {
      out[i].data = std::move(*data);
    } else {
      out[i].status = data.status();
    }
  }
  return out;
}

Status BlockStore::WriteBatch(std::span<const BlockWrite> writes) {
  for (const BlockWrite& w : writes) {
    RETURN_IF_ERROR(Write(w.bno, w.payload));
  }
  return OkStatus();
}

Status BlockStore::FreeMulti(std::span<const BlockNo> bnos) {
  for (BlockNo bno : bnos) {
    RETURN_IF_ERROR(Free(bno));
  }
  return OkStatus();
}

Result<std::vector<BlockNo>> BlockStore::AllocMulti(uint32_t n) {
  std::vector<BlockNo> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto bno = AllocWrite({});
    if (!bno.ok()) {
      for (BlockNo allocated : out) {
        (void)Free(allocated);
      }
      return bno.status();
    }
    out.push_back(*bno);
  }
  return out;
}

// ---------------------------------------------------------------------------
// BlockClient
// ---------------------------------------------------------------------------

BlockClient::BlockClient(Transport* transport, Port server, Capability account,
                         uint32_t payload_capacity)
    : transport_(transport),
      server_(server),
      account_(account),
      payload_capacity_(payload_capacity) {}

Result<BlockNo> BlockClient::AllocWrite(std::span<const uint8_t> payload) {
  WireEncoder req;
  req.PutCapability(account_);
  req.PutBytes(payload);
  ASSIGN_OR_RETURN(WireDecoder reply,
                   CallAndCheck(transport_, server_, static_cast<uint32_t>(BlockOp::kAllocWrite),
                                std::move(req)));
  return reply.GetU32();
}

Status BlockClient::Write(BlockNo bno, std::span<const uint8_t> payload) {
  WireEncoder req;
  req.PutCapability(account_);
  req.PutU32(bno);
  req.PutBytes(payload);
  return CallAndCheck(transport_, server_, static_cast<uint32_t>(BlockOp::kWrite), std::move(req))
      .status();
}

Result<std::vector<uint8_t>> BlockClient::Read(BlockNo bno) {
  WireEncoder req;
  req.PutCapability(account_);
  req.PutU32(bno);
  ASSIGN_OR_RETURN(WireDecoder reply,
                   CallAndCheck(transport_, server_, static_cast<uint32_t>(BlockOp::kRead),
                                std::move(req)));
  return reply.GetBytes();
}

Status BlockClient::Free(BlockNo bno) {
  WireEncoder req;
  req.PutCapability(account_);
  req.PutU32(bno);
  return CallAndCheck(transport_, server_, static_cast<uint32_t>(BlockOp::kFree), std::move(req))
      .status();
}

size_t BlockClient::ReadChunkBlocks() const {
  // The REPLY is the binding constraint: each entry returns u32 code + length-prefixed
  // payload of up to payload_capacity bytes.
  const size_t per_entry = 8 + payload_capacity_;
  return std::max<size_t>(1, (kMaxMessageBytes - kBatchFixedSlack) / per_entry);
}

Result<std::vector<BlockReadResult>> BlockClient::ReadMulti(std::span<const BlockNo> bnos) {
  if (!BatchingEnabled()) {
    return BlockStore::ReadMulti(bnos);
  }
  std::vector<BlockReadResult> out(bnos.size());
  const size_t chunk = ReadChunkBlocks();
  size_t completed_chunks = 0;
  for (size_t begin = 0; begin < bnos.size(); begin += chunk) {
    if (begin > 0 && between_chunks_hook_) {
      between_chunks_hook_(completed_chunks);
    }
    const size_t n = std::min(chunk, bnos.size() - begin);
    WireEncoder req;
    req.PutCapability(account_);
    req.PutU32(static_cast<uint32_t>(n));
    for (size_t i = 0; i < n; ++i) {
      req.PutU32(bnos[begin + i]);
    }
    ASSIGN_OR_RETURN(WireDecoder reply,
                     CallAndCheck(transport_, server_,
                                  static_cast<uint32_t>(BlockOp::kReadMulti), std::move(req)));
    ASSIGN_OR_RETURN(uint32_t count, reply.GetU32());
    if (count != n) {
      return InternalError("read-multi reply count mismatch");
    }
    for (size_t i = 0; i < n; ++i) {
      ASSIGN_OR_RETURN(uint32_t code, reply.GetU32());
      ASSIGN_OR_RETURN(std::vector<uint8_t> data, reply.GetBytes());
      BlockReadResult& r = out[begin + i];
      if (code == static_cast<uint32_t>(ErrorCode::kOk)) {
        r.data = std::move(data);
      } else {
        r.status = Status(static_cast<ErrorCode>(code), "read-multi entry failed");
      }
    }
    ++completed_chunks;
  }
  return out;
}

Status BlockClient::WriteBatch(std::span<const BlockWrite> writes) {
  if (!BatchingEnabled()) {
    return BlockStore::WriteBatch(writes);
  }
  // Pre-flight: any single entry that cannot fit in one message fails the whole batch
  // cleanly, before anything is sent.
  for (const BlockWrite& w : writes) {
    if (kBatchFixedSlack + WriteEntryBytes(w) > kMaxMessageBytes) {
      return InvalidArgumentError("single write exceeds the 32K transaction message limit");
    }
  }
  size_t completed_chunks = 0;
  size_t begin = 0;
  while (begin < writes.size()) {
    if (begin > 0 && between_chunks_hook_) {
      between_chunks_hook_(completed_chunks);
    }
    // Greedily pack entries while the encoded request stays under the limit.
    size_t bytes = kBatchFixedSlack;
    size_t end = begin;
    while (end < writes.size() && bytes + WriteEntryBytes(writes[end]) <= kMaxMessageBytes) {
      bytes += WriteEntryBytes(writes[end]);
      ++end;
    }
    WireEncoder req;
    req.PutCapability(account_);
    req.PutU32(static_cast<uint32_t>(end - begin));
    for (size_t i = begin; i < end; ++i) {
      req.PutU32(writes[i].bno);
      req.PutBytes(writes[i].payload);
    }
    RETURN_IF_ERROR(CallAndCheck(transport_, server_,
                                 static_cast<uint32_t>(BlockOp::kWriteMulti), std::move(req))
                        .status());
    ++completed_chunks;
    begin = end;
  }
  return OkStatus();
}

Status BlockClient::FreeMulti(std::span<const BlockNo> bnos) {
  if (!BatchingEnabled()) {
    return BlockStore::FreeMulti(bnos);
  }
  const size_t chunk = (kMaxMessageBytes - kBatchFixedSlack) / 4;
  size_t completed_chunks = 0;
  for (size_t begin = 0; begin < bnos.size(); begin += chunk) {
    if (begin > 0 && between_chunks_hook_) {
      between_chunks_hook_(completed_chunks);
    }
    const size_t n = std::min(chunk, bnos.size() - begin);
    WireEncoder req;
    req.PutCapability(account_);
    req.PutU32(static_cast<uint32_t>(n));
    for (size_t i = 0; i < n; ++i) {
      req.PutU32(bnos[begin + i]);
    }
    RETURN_IF_ERROR(CallAndCheck(transport_, server_,
                                 static_cast<uint32_t>(BlockOp::kFreeMulti), std::move(req))
                        .status());
    ++completed_chunks;
  }
  return OkStatus();
}

Result<std::vector<BlockNo>> BlockClient::AllocMulti(uint32_t n) {
  if (!BatchingEnabled()) {
    return BlockStore::AllocMulti(n);
  }
  // The reply carries n block numbers; bound a chunk well under the message limit.
  const uint32_t chunk =
      static_cast<uint32_t>(std::max<size_t>(1, (kMaxMessageBytes - kBatchFixedSlack) / 8));
  std::vector<BlockNo> out;
  out.reserve(n);
  size_t completed_chunks = 0;
  for (uint32_t begin = 0; begin < n; begin += chunk) {
    if (begin > 0 && between_chunks_hook_) {
      between_chunks_hook_(completed_chunks);
    }
    const uint32_t want = std::min(chunk, n - begin);
    WireEncoder req;
    req.PutCapability(account_);
    req.PutU32(want);
    auto reply = CallAndCheck(transport_, server_, static_cast<uint32_t>(BlockOp::kAllocMulti),
                              std::move(req));
    if (!reply.ok()) {
      for (BlockNo allocated : out) {
        (void)Free(allocated);
      }
      return reply.status();
    }
    auto count = reply->GetU32();
    if (!count.ok() || *count != want) {
      return InternalError("alloc-multi reply count mismatch");
    }
    for (uint32_t i = 0; i < want; ++i) {
      ASSIGN_OR_RETURN(BlockNo bno, reply->GetU32());
      out.push_back(bno);
    }
    ++completed_chunks;
  }
  return out;
}

Status BlockClient::Lock(BlockNo bno, Port owner) {
  WireEncoder req;
  req.PutCapability(account_);
  req.PutU32(bno);
  req.PutU64(owner);
  return CallAndCheck(transport_, server_, static_cast<uint32_t>(BlockOp::kLock), std::move(req))
      .status();
}

Status BlockClient::Unlock(BlockNo bno, Port owner) {
  WireEncoder req;
  req.PutCapability(account_);
  req.PutU32(bno);
  req.PutU64(owner);
  return CallAndCheck(transport_, server_, static_cast<uint32_t>(BlockOp::kUnlock), std::move(req))
      .status();
}

Result<std::vector<BlockNo>> BlockClient::ListBlocks() {
  WireEncoder req;
  req.PutCapability(account_);
  ASSIGN_OR_RETURN(WireDecoder reply,
                   CallAndCheck(transport_, server_, static_cast<uint32_t>(BlockOp::kRecover),
                                std::move(req)));
  ASSIGN_OR_RETURN(uint32_t n, reply.GetU32());
  std::vector<BlockNo> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(BlockNo bno, reply.GetU32());
    out.push_back(bno);
  }
  return out;
}

// ---------------------------------------------------------------------------
// StableStore
// ---------------------------------------------------------------------------

namespace {

bool IsConnectivityError(const Status& s) {
  switch (s.code()) {
    case ErrorCode::kCrashed:
    case ErrorCode::kTimeout:
    case ErrorCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

}  // namespace

StableStore::StableStore(std::unique_ptr<BlockClient> a, std::unique_ptr<BlockClient> b,
                         uint64_t retry_seed)
    : rng_(retry_seed) {
  members_[0] = std::move(a);
  members_[1] = std::move(b);
}

template <typename T>
Result<T> StableStore::WithFailover(const std::function<Result<T>(BlockClient*)>& op) {
  constexpr int kMaxCollisionRetries = 8;
  for (int attempt = 0; attempt < kMaxCollisionRetries; ++attempt) {
    int first;
    {
      std::lock_guard<std::mutex> lock(mu_);
      first = preferred_;
    }
    Result<T> result = op(members_[first].get());
    if (!result.ok() && IsConnectivityError(result.status())) {
      // "Clients send requests to the alternative block server if the primary fails to
      // respond."
      int other = 1 - first;
      Status abandoned = result.status();
      result = op(members_[other].get());
      if (result.ok() || !IsConnectivityError(result.status())) {
        failovers_->Inc();
        // Degraded: the pair is operating through one member. Cleared on the next
        // first-try success at the (new) preferred member; the gauge's max() watermark
        // lets chaos runs assert the pair really failed over at some point.
        degraded_->Set(1);
        obs::Trace(obs::TraceEvent::kStableFailover, static_cast<uint64_t>(first),
                   static_cast<uint64_t>(abandoned.code()));
        std::lock_guard<std::mutex> lock(mu_);
        preferred_ = other;
      }
    } else {
      degraded_->Set(0);
    }
    if (result.ok() || result.status().code() != ErrorCode::kConflict) {
      return result;
    }
    // Allocate/write collision: "redo the operation after a random wait interval."
    uint64_t wait_us;
    {
      std::lock_guard<std::mutex> lock(mu_);
      wait_us = rng_.NextInRange(50, 500) << attempt;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(wait_us));
  }
  return ConflictError("persistent block collision");
}

Result<BlockNo> StableStore::AllocWrite(std::span<const uint8_t> payload) {
  return WithFailover<BlockNo>([&](BlockClient* c) { return c->AllocWrite(payload); });
}

namespace {
// Adapts a Status-returning call to the Result-based failover helper.
struct Unit {};
}  // namespace

Status StableStore::Write(BlockNo bno, std::span<const uint8_t> payload) {
  return WithFailover<Unit>([&](BlockClient* c) -> Result<Unit> {
           RETURN_IF_ERROR(c->Write(bno, payload));
           return Unit{};
         })
      .status();
}

Result<std::vector<uint8_t>> StableStore::Read(BlockNo bno) {
  return WithFailover<std::vector<uint8_t>>([&](BlockClient* c) { return c->Read(bno); });
}

Status StableStore::Free(BlockNo bno) {
  return WithFailover<Unit>([&](BlockClient* c) -> Result<Unit> {
           RETURN_IF_ERROR(c->Free(bno));
           return Unit{};
         })
      .status();
}

Result<std::vector<BlockReadResult>> StableStore::ReadMulti(std::span<const BlockNo> bnos) {
  obs::ScopedSpan span("stable.read_multi", obs::SpanKind::kStore, bnos.size());
  return WithFailover<std::vector<BlockReadResult>>(
      [&](BlockClient* c) { return c->ReadMulti(bnos); });
}

Status StableStore::WriteBatch(std::span<const BlockWrite> writes) {
  // Overwrites are idempotent, so retrying the whole batch after a collision or a
  // mid-batch fail-over is safe: re-sent chunks simply overwrite identically.
  obs::ScopedSpan span("stable.write_batch", obs::SpanKind::kStore, writes.size());
  return WithFailover<Unit>([&](BlockClient* c) -> Result<Unit> {
           RETURN_IF_ERROR(c->WriteBatch(writes));
           return Unit{};
         })
      .status();
}

Status StableStore::FreeMulti(std::span<const BlockNo> bnos) {
  obs::ScopedSpan span("stable.free_multi", obs::SpanKind::kStore, bnos.size());
  return WithFailover<Unit>([&](BlockClient* c) -> Result<Unit> {
           RETURN_IF_ERROR(c->FreeMulti(bnos));
           return Unit{};
         })
      .status();
}

Result<std::vector<BlockNo>> StableStore::AllocMulti(uint32_t n) {
  obs::ScopedSpan span("stable.alloc_multi", obs::SpanKind::kStore, n);
  return WithFailover<std::vector<BlockNo>>([&](BlockClient* c) { return c->AllocMulti(n); });
}

Status StableStore::Lock(BlockNo bno, Port owner) {
  // Locks are not replicated: they die with the server that grants them, and lock holders
  // are identified by (possibly dead) ports, so the waiter-side recovery of §5.3 applies.
  // Locks always target the preferred member so both parties race on the same lock table.
  return WithFailover<Unit>([&](BlockClient* c) -> Result<Unit> {
           RETURN_IF_ERROR(c->Lock(bno, owner));
           return Unit{};
         })
      .status();
}

Status StableStore::Unlock(BlockNo bno, Port owner) {
  return WithFailover<Unit>([&](BlockClient* c) -> Result<Unit> {
           RETURN_IF_ERROR(c->Unlock(bno, owner));
           return Unit{};
         })
      .status();
}

Result<std::vector<BlockNo>> StableStore::ListBlocks() {
  return WithFailover<std::vector<BlockNo>>([&](BlockClient* c) { return c->ListBlocks(); });
}

uint32_t StableStore::payload_capacity() const { return members_[0]->payload_capacity(); }

// ---------------------------------------------------------------------------
// InMemoryBlockStore
// ---------------------------------------------------------------------------

namespace {

uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v && p < (1u << 16)) {
    p <<= 1;
  }
  return p;
}

}  // namespace

InMemoryBlockStore::InMemoryBlockStore(uint32_t payload_capacity, uint32_t num_blocks,
                                       uint32_t num_shards)
    : payload_capacity_(payload_capacity),
      num_blocks_(num_blocks),
      shards_(RoundUpPow2(std::max(1u, num_shards))),
      shard_mask_(static_cast<uint32_t>(shards_.size()) - 1) {
  latency_.BindMetrics(metrics_.counter("store.charged_ops"),
                       metrics_.histogram("store.charged_ns"));
}

Result<BlockNo> InMemoryBlockStore::AllocOne(std::span<const uint8_t> payload) {
  if (payload.size() > payload_capacity_) {
    return InvalidArgumentError("payload exceeds block capacity");
  }
  if (allocated_.load(std::memory_order_relaxed) >= num_blocks_) {
    return NoSpaceError("in-memory store full");
  }
  // The cursor hands out fresh numbers; a collision with a still-allocated number (cursor
  // wrapped) just advances to the next candidate.
  for (uint64_t attempt = 0; attempt <= static_cast<uint64_t>(kMaxBlockNo) + 1; ++attempt) {
    BlockNo bno = next_.fetch_add(1, std::memory_order_relaxed) & kMaxBlockNo;
    Shard& shard = ShardFor(bno);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] =
        shard.blocks.emplace(bno, std::vector<uint8_t>(payload.begin(), payload.end()));
    if (inserted) {
      allocated_.fetch_add(1, std::memory_order_relaxed);
      writes_->Inc();
      return bno;
    }
  }
  return NoSpaceError("in-memory store exhausted block numbers");
}

Result<BlockNo> InMemoryBlockStore::AllocWrite(std::span<const uint8_t> payload) {
  latency_.Charge();
  return AllocOne(payload);
}

Result<std::vector<BlockNo>> InMemoryBlockStore::AllocMulti(uint32_t n) {
  std::vector<BlockNo> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    latency_.Charge();
    auto bno = AllocOne({});
    if (!bno.ok()) {
      for (BlockNo allocated : out) {
        (void)Free(allocated);
      }
      return bno.status();
    }
    out.push_back(*bno);
  }
  return out;
}

Status InMemoryBlockStore::Write(BlockNo bno, std::span<const uint8_t> payload) {
  latency_.Charge();
  if (payload.size() > payload_capacity_) {
    return InvalidArgumentError("payload exceeds block capacity");
  }
  Shard& shard = ShardFor(bno);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.blocks.find(bno);
  if (it == shard.blocks.end()) {
    return NotFoundError("write to unallocated block");
  }
  it->second.assign(payload.begin(), payload.end());
  writes_->Inc();
  return OkStatus();
}

Status InMemoryBlockStore::WriteBatch(std::span<const BlockWrite> writes) {
  batch_writes_->Inc();
  for (const BlockWrite& w : writes) {
    RETURN_IF_ERROR(Write(w.bno, w.payload));
  }
  return OkStatus();
}

Result<std::vector<uint8_t>> InMemoryBlockStore::Read(BlockNo bno) {
  latency_.Charge();
  Shard& shard = ShardFor(bno);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.blocks.find(bno);
  if (it == shard.blocks.end()) {
    return NotFoundError("read of unallocated block");
  }
  reads_->Inc();
  return it->second;
}

Result<std::vector<BlockReadResult>> InMemoryBlockStore::ReadMulti(
    std::span<const BlockNo> bnos) {
  batch_reads_->Inc();
  return BlockStore::ReadMulti(bnos);
}

Status InMemoryBlockStore::Free(BlockNo bno) {
  Shard& shard = ShardFor(bno);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.blocks.erase(bno) > 0) {
    allocated_.fetch_sub(1, std::memory_order_relaxed);
  }
  shard.locks.erase(bno);
  frees_->Inc();
  return OkStatus();
}

Status InMemoryBlockStore::FreeMulti(std::span<const BlockNo> bnos) {
  for (BlockNo bno : bnos) {
    RETURN_IF_ERROR(Free(bno));
  }
  return OkStatus();
}

Status InMemoryBlockStore::Lock(BlockNo bno, Port owner) {
  Shard& shard = ShardFor(bno);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.locks.find(bno);
  if (it != shard.locks.end() && it->second != owner) {
    lock_contended_->Inc();
    return LockedError("block locked");
  }
  shard.locks[bno] = owner;
  return OkStatus();
}

Status InMemoryBlockStore::Unlock(BlockNo bno, Port owner) {
  Shard& shard = ShardFor(bno);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.locks.find(bno);
  if (it == shard.locks.end() || it->second != owner) {
    return InvalidArgumentError("unlock by non-holder");
  }
  shard.locks.erase(it);
  return OkStatus();
}

Result<std::vector<BlockNo>> InMemoryBlockStore::ListBlocks() {
  std::vector<BlockNo> out;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [bno, data] : shard.blocks) {
      (void)data;
      out.push_back(bno);
    }
  }
  return out;
}

size_t InMemoryBlockStore::allocated_blocks() const {
  return allocated_.load(std::memory_order_relaxed);
}

}  // namespace afs
