#include "src/block/block_server.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <thread>
#include <utility>

#include "src/base/crc32.h"
#include "src/base/wire.h"
#include "src/block/protocol.h"
#include "src/obs/span.h"
#include "src/rpc/client.h"

namespace afs {
namespace {

struct BlockHeader {
  uint32_t magic = 0;
  uint64_t account = 0;
  uint64_t seq = 0;
  uint32_t crc = 0;
  uint32_t len = 0;
};

void StoreU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

void StoreU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

void EncodeBlock(std::span<uint8_t> block, const BlockHeader& h,
                 std::span<const uint8_t> payload) {
  StoreU32(block.data(), h.magic);
  StoreU64(block.data() + 4, h.account);
  StoreU64(block.data() + 12, h.seq);
  StoreU32(block.data() + 20, h.crc);
  StoreU32(block.data() + 24, h.len);
  if (!payload.empty()) {  // empty spans may carry a null data() — UB to pass to memcpy
    std::memcpy(block.data() + kBlockHeaderBytes, payload.data(), payload.size());
  }
  std::memset(block.data() + kBlockHeaderBytes + payload.size(), 0,
              block.size() - kBlockHeaderBytes - payload.size());
}

// Parses and integrity-checks a raw block. kCorrupt on bad magic, bad length, or CRC
// mismatch; a never-written (all-zero) block decodes as "not in use".
Result<BlockHeader> DecodeBlock(std::span<const uint8_t> block) {
  BlockHeader h;
  h.magic = LoadU32(block.data());
  h.account = LoadU64(block.data() + 4);
  h.seq = LoadU64(block.data() + 12);
  h.crc = LoadU32(block.data() + 20);
  h.len = LoadU32(block.data() + 24);
  if (h.magic == 0 && h.account == 0 && h.len == 0) {
    // Virgin block.
    return h;
  }
  if (h.magic != kBlockMagic) {
    return CorruptError("bad block magic");
  }
  if (h.len > block.size() - kBlockHeaderBytes) {
    return CorruptError("block payload length out of range");
  }
  if (Crc32c(block.data() + kBlockHeaderBytes, h.len) != h.crc) {
    return CorruptError("block payload CRC mismatch");
  }
  return h;
}

uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v && p < (1u << 16)) {
    p <<= 1;
  }
  return p;
}

bool IsCompanionDown(const Status& s) {
  switch (s.code()) {
    case ErrorCode::kCrashed:
    case ErrorCode::kTimeout:
    case ErrorCode::kUnavailable:
    case ErrorCode::kNotFound:
      return true;
    default:
      return false;
  }
}

// Wire slack for the fixed parts of a companion batch message.
constexpr size_t kCompanionFixedSlack = 96;

// Encoded bytes of one kCompanionWriteMulti entry:
// u32 bno + u64 account + u64 seq + length-prefixed payload + u8 is_alloc.
size_t CompanionEntryBytes(size_t payload_size) { return 25 + payload_size; }

}  // namespace

BlockServer::BlockServer(Network* network, std::string name, BlockDevice* device,
                         uint64_t secret_seed, uint32_t num_shards, int num_workers)
    : Service(network, std::move(name), num_workers),
      device_(device),
      signer_(0, Mix64(secret_seed)),
      rng_(secret_seed ^ 0xb10c),
      shards_(RoundUpPow2(std::max(1u, num_shards))),
      shard_mask_(static_cast<uint32_t>(shards_.size()) - 1) {
  blocks_.resize(device->geometry().num_blocks);
}

void BlockServer::SetCompanion(Port companion) { companion_.store(companion); }

uint32_t BlockServer::payload_capacity() const {
  return device_->geometry().block_size - kBlockHeaderBytes;
}

Capability BlockServer::CreateAccountDirect() {
  std::lock_guard<std::mutex> lock(accounts_mu_);
  uint64_t account = rng_.NextU64() | 1;
  accounts_.insert(account);
  // The signer's port field is not known until Start(); accounts are signed against object
  // ids only (port 0), so capabilities survive server restarts on the same secret.
  return signer_.Sign(account, Rights::kAll);
}

Status BlockServer::VerifyAccount(const Capability& cap, uint32_t rights,
                                  uint64_t* account_out) {
  RETURN_IF_ERROR(signer_.Verify(cap, rights));
  *account_out = cap.object;
  return OkStatus();
}

Result<BlockNo> BlockServer::PickFreeBlock() {
  // Lock order: alloc_mu_ -> shard.mu (nothing takes them the other way round).
  std::lock_guard<std::mutex> alloc_lock(alloc_mu_);
  const auto num_blocks = static_cast<BlockNo>(blocks_.size());
  for (BlockNo probe = 0; probe < num_blocks; ++probe) {
    BlockNo bno = (alloc_cursor_ + probe) % num_blocks;
    Shard& shard = ShardFor(bno);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!blocks_[bno].in_use &&
        shard.in_flight_primary.find(bno) == shard.in_flight_primary.end() &&
        shard.locks.find(bno) == shard.locks.end()) {
      alloc_cursor_ = (bno + 1) % num_blocks;
      blocks_[bno].in_use = true;  // tentative; rolled back on collision
      return bno;
    }
  }
  return NoSpaceError("disk full");
}

Status BlockServer::CheckWritable(BlockNo bno, uint64_t account, bool* in_use_out) {
  if (bno >= blocks_.size()) {
    return InvalidArgumentError("block number out of range");
  }
  Shard& shard = ShardFor(bno);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (in_use_out != nullptr) {
    *in_use_out = blocks_[bno].in_use;
  }
  if (!blocks_[bno].in_use) {
    // Callers interested in in_use (the free paths) treat "already free" as idempotent.
    return in_use_out != nullptr ? OkStatus() : NotFoundError("write to unallocated block");
  }
  if (blocks_[bno].account != 0 && blocks_[bno].account != account) {
    return BadCapabilityError("block owned by a different account");
  }
  return OkStatus();
}

Status BlockServer::WriteLocal(BlockNo bno, uint64_t account, uint64_t seq,
                               std::span<const uint8_t> payload) {
  const uint32_t block_size = device_->geometry().block_size;
  if (payload.size() > block_size - kBlockHeaderBytes) {
    return InvalidArgumentError("payload exceeds block capacity");
  }
  std::vector<uint8_t> raw(block_size);
  BlockHeader h;
  h.magic = kBlockMagic;
  h.account = account;
  h.seq = seq;
  h.len = static_cast<uint32_t>(payload.size());
  h.crc = Crc32c(payload.data(), payload.size());
  EncodeBlock(raw, h, payload);
  RETURN_IF_ERROR(device_->Write(bno, raw));
  Shard& shard = ShardFor(bno);
  std::lock_guard<std::mutex> lock(shard.mu);
  blocks_[bno].account = account;
  blocks_[bno].seq = seq;
  blocks_[bno].in_use = account != 0;
  return OkStatus();
}

void BlockServer::RecordIntention(BlockNo bno) {
  {
    std::lock_guard<std::mutex> lock(intentions_mu_);
    intentions_for_companion_.insert(bno);
  }
  degraded_writes_.fetch_add(1);
}

void BlockServer::MarkInFlight(std::span<const PendingWrite> writes, int delta) {
  for (const PendingWrite& w : writes) {
    Shard& shard = ShardFor(w.bno);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (delta > 0) {
      ++shard.in_flight_primary[w.bno];
    } else {
      auto it = shard.in_flight_primary.find(w.bno);
      if (it != shard.in_flight_primary.end() && --it->second == 0) {
        shard.in_flight_primary.erase(it);
      }
    }
  }
}

Status BlockServer::StableWrite(BlockNo bno, uint64_t account,
                                std::span<const uint8_t> payload, bool is_alloc) {
  const Port companion = companion_.load();
  const uint64_t seq = next_seq_.fetch_add(1);
  {
    Shard& shard = ShardFor(bno);
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.in_flight_primary[bno];
  }

  Status result = OkStatus();
  if (companion != kNullPort) {
    // "writes are always carried out on the companion disk first."
    WireEncoder req;
    req.PutU32(bno);
    req.PutU64(account);
    req.PutU64(seq);
    req.PutBytes(payload);
    req.PutU8(is_alloc ? 1 : 0);
    auto reply = CallAndCheck(network(), companion,
                              static_cast<uint32_t>(BlockOp::kCompanionWrite), std::move(req));
    if (!reply.ok()) {
      if (reply.status().code() == ErrorCode::kConflict) {
        // Allocate or write collision, detected at the companion before any damage.
        result = ConflictError("block write collision at companion");
      } else if (IsCompanionDown(reply.status())) {
        // Companion down: degrade to local-only and remember what it missed.
        RecordIntention(bno);
      } else {
        result = reply.status();
      }
    }
  }
  if (result.ok()) {
    result = WriteLocal(bno, account, seq, payload);
  }

  Shard& shard = ShardFor(bno);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.in_flight_primary.find(bno);
  if (it != shard.in_flight_primary.end() && --it->second == 0) {
    shard.in_flight_primary.erase(it);
  }
  if (!result.ok() && is_alloc) {
    blocks_[bno].in_use = false;  // roll back the tentative allocation
  }
  return result;
}

Status BlockServer::StableWriteBatch(std::vector<PendingWrite> writes) {
  if (writes.empty()) {
    return OkStatus();
  }
  const Port companion = companion_.load();
  // b distinguishes replicated (1) from standalone (0) batches in the trace.
  obs::ScopedSpan span("bs.stable_write_batch", obs::SpanKind::kStore, writes.size(),
                       companion == kNullPort ? 0 : 1);
  MarkInFlight(writes, +1);

  Status result = OkStatus();
  std::vector<char> written(writes.size(), 0);

  if (companion == kNullPort) {
    for (size_t i = 0; i < writes.size(); ++i) {
      Status st = WriteLocal(writes[i].bno, writes[i].account, writes[i].seq,
                             writes[i].payload);
      if (!st.ok()) {
        result = st;
        break;
      }
      written[i] = 1;
    }
  } else {
    // Chunk so each companion message stays under kMaxMessageBytes.
    std::vector<std::pair<size_t, size_t>> chunks;  // [begin, end)
    size_t begin = 0;
    while (begin < writes.size()) {
      size_t bytes = kCompanionFixedSlack;
      size_t end = begin;
      while (end < writes.size() &&
             (end == begin ||
              bytes + CompanionEntryBytes(writes[end].payload.size()) <= kMaxMessageBytes)) {
        bytes += CompanionEntryBytes(writes[end].payload.size());
        ++end;
      }
      chunks.emplace_back(begin, end);
      begin = end;
    }

    auto send_chunk = [this, companion, &writes](size_t b, size_t e) -> Status {
      WireEncoder req;
      req.PutU32(static_cast<uint32_t>(e - b));
      for (size_t i = b; i < e; ++i) {
        req.PutU32(writes[i].bno);
        req.PutU64(writes[i].account);
        req.PutU64(writes[i].seq);
        req.PutBytes(writes[i].payload);
        req.PutU8(writes[i].is_alloc ? 1 : 0);
      }
      return CallAndCheck(network(), companion,
                          static_cast<uint32_t>(BlockOp::kCompanionWriteMulti), std::move(req))
          .status();
    };

    // Pipeline: chunk i+1's companion round trip overlaps chunk i's local disk writes.
    // Per-block companion-first order holds: a block is written locally only after its own
    // chunk was acked (or an intention was recorded for it). Once a chunk has been launched
    // it is always fully processed — acked chunks are written locally even when an earlier
    // chunk already failed, so the pair never diverges on a chunk the companion accepted.
    std::future<Status> pending =
        std::async(std::launch::async, send_chunk, chunks[0].first, chunks[0].second);
    for (size_t ci = 0; ci < chunks.size(); ++ci) {
      Status ack = pending.get();
      pending = std::future<Status>();
      if (ci + 1 < chunks.size() && result.ok()) {
        pending = std::async(std::launch::async, send_chunk, chunks[ci + 1].first,
                             chunks[ci + 1].second);
      }
      const auto [b, e] = chunks[ci];
      if (!ack.ok()) {
        if (IsCompanionDown(ack)) {
          for (size_t i = b; i < e; ++i) {
            RecordIntention(writes[i].bno);
          }
          // Degrade to local-only for this chunk (falls through to the local writes).
        } else {
          // Collision (or hard error): the companion rejected the whole chunk before
          // writing anything, so skip the local writes too.
          if (result.ok()) {
            result = ack.code() == ErrorCode::kConflict
                         ? ConflictError("batched write collision at companion")
                         : ack;
          }
          if (!pending.valid()) {
            break;
          }
          continue;
        }
      }
      for (size_t i = b; i < e; ++i) {
        Status st = WriteLocal(writes[i].bno, writes[i].account, writes[i].seq,
                               writes[i].payload);
        if (!st.ok()) {
          if (result.ok()) {
            result = st;
          }
          break;
        }
        written[i] = 1;
      }
      if (!pending.valid()) {
        break;
      }
    }
  }

  MarkInFlight(writes, -1);
  if (!result.ok()) {
    for (size_t i = 0; i < writes.size(); ++i) {
      if (writes[i].is_alloc && !written[i]) {
        Shard& shard = ShardFor(writes[i].bno);
        std::lock_guard<std::mutex> lock(shard.mu);
        blocks_[writes[i].bno].in_use = false;  // roll back tentative allocations
      }
    }
  }
  return result;
}

Result<std::vector<uint8_t>> BlockServer::FetchFromCompanion(BlockNo bno) {
  const Port companion = companion_.load();
  if (companion == kNullPort) {
    return CorruptError("block corrupt and no companion configured");
  }
  WireEncoder req;
  req.PutU32(bno);
  ASSIGN_OR_RETURN(WireDecoder reply,
                   CallAndCheck(network(), companion,
                                static_cast<uint32_t>(BlockOp::kCompanionRead), std::move(req)));
  ASSIGN_OR_RETURN(uint64_t account, reply.GetU64());
  ASSIGN_OR_RETURN(uint8_t in_use, reply.GetU8());
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, reply.GetBytes());
  if (in_use == 0) {
    return NotFoundError("companion copy not in use");
  }
  (void)account;
  return payload;
}

Result<std::vector<uint8_t>> BlockServer::ReadPayload(BlockNo bno, uint64_t account,
                                                      bool check_account) {
  const uint32_t block_size = device_->geometry().block_size;
  if (bno >= blocks_.size()) {
    return InvalidArgumentError("block number out of range");
  }
  std::vector<uint8_t> raw(block_size);
  // A device-level kCorrupt (FileDisk's sector checksum caught a torn or misdirected
  // write) enters the same companion-repair path as a server-level CRC mismatch.
  Status read_status = device_->Read(bno, raw);
  if (!read_status.ok() && read_status.code() != ErrorCode::kCorrupt) {
    return read_status;
  }
  auto header = read_status.ok() ? DecodeBlock(raw) : Result<BlockHeader>(read_status);
  if (!header.ok()) {
    // "the block server need not consult its companion, except when the block on its disk
    // is corrupted." Fetch the good copy and repair the local one.
    ASSIGN_OR_RETURN(std::vector<uint8_t> payload, FetchFromCompanion(bno));
    uint64_t seq = next_seq_.fetch_add(1);
    uint64_t repaired_account = account;
    RETURN_IF_ERROR(WriteLocal(bno, repaired_account, seq, payload));
    return payload;
  }
  if (header->magic == 0) {
    return NotFoundError("block never written");
  }
  if (check_account && header->account != account) {
    return BadCapabilityError("block owned by a different account");
  }
  std::vector<uint8_t> payload(raw.begin() + kBlockHeaderBytes,
                               raw.begin() + kBlockHeaderBytes + header->len);
  return payload;
}

// ---------------------------------------------------------------------------
// Request dispatch
// ---------------------------------------------------------------------------

Result<Message> BlockServer::Handle(const Message& request) {
  switch (static_cast<BlockOp>(request.opcode)) {
    case BlockOp::kCreateAccount:
      return HandleCreateAccount(request);
    case BlockOp::kAllocate:
      return HandleAllocate(request);
    case BlockOp::kAllocWrite:
      return HandleAllocWrite(request);
    case BlockOp::kWrite:
      return HandleWrite(request);
    case BlockOp::kRead:
      return HandleRead(request);
    case BlockOp::kFree:
      return HandleFree(request);
    case BlockOp::kReadMulti:
      return HandleReadMulti(request);
    case BlockOp::kWriteMulti:
      return HandleWriteMulti(request);
    case BlockOp::kFreeMulti:
      return HandleFreeMulti(request);
    case BlockOp::kAllocMulti:
      return HandleAllocMulti(request);
    case BlockOp::kLock:
      return HandleLock(request);
    case BlockOp::kUnlock:
      return HandleUnlock(request);
    case BlockOp::kRecover:
      return HandleRecover(request);
    case BlockOp::kStat:
      return HandleStat(request);
    case BlockOp::kCompanionWrite:
      return HandleCompanionWrite(request);
    case BlockOp::kCompanionWriteMulti:
      return HandleCompanionWriteMulti(request);
    case BlockOp::kCompanionFree:
      return HandleCompanionFree(request);
    case BlockOp::kFetchIntentions:
      return HandleFetchIntentions(request);
    case BlockOp::kCompanionRead:
      return HandleCompanionRead(request);
  }
  return InvalidArgumentError("unknown block server opcode");
}

Result<Message> BlockServer::HandleCreateAccount(const Message& m) {
  Capability cap = CreateAccountDirect();
  WireEncoder out;
  out.PutCapability(cap);
  return OkReply(m.opcode, std::move(out));
}

Result<Message> BlockServer::HandleAllocate(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(Capability cap, in.GetCapability());
  uint64_t account;
  RETURN_IF_ERROR(VerifyAccount(cap, Rights::kCreate, &account));
  ASSIGN_OR_RETURN(BlockNo bno, PickFreeBlock());
  // Stamp ownership so Recover() finds it even if never written by the client.
  Status st = StableWrite(bno, account, {}, /*is_alloc=*/true);
  if (!st.ok()) {
    return st;
  }
  WireEncoder out;
  out.PutU32(bno);
  return OkReply(m.opcode, std::move(out));
}

Result<Message> BlockServer::HandleAllocWrite(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(Capability cap, in.GetCapability());
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, in.GetBytes());
  uint64_t account;
  RETURN_IF_ERROR(VerifyAccount(cap, Rights::kCreate | Rights::kWrite, &account));
  ASSIGN_OR_RETURN(BlockNo bno, PickFreeBlock());
  Status st = StableWrite(bno, account, payload, /*is_alloc=*/true);
  if (!st.ok()) {
    return st;
  }
  WireEncoder out;
  out.PutU32(bno);
  return OkReply(m.opcode, std::move(out));
}

Result<Message> BlockServer::HandleWrite(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(Capability cap, in.GetCapability());
  ASSIGN_OR_RETURN(BlockNo bno, in.GetU32());
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, in.GetBytes());
  uint64_t account;
  RETURN_IF_ERROR(VerifyAccount(cap, Rights::kWrite, &account));
  RETURN_IF_ERROR(CheckWritable(bno, account, nullptr));
  RETURN_IF_ERROR(StableWrite(bno, account, payload, /*is_alloc=*/false));
  return OkReply(m.opcode);
}

Result<Message> BlockServer::HandleRead(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(Capability cap, in.GetCapability());
  ASSIGN_OR_RETURN(BlockNo bno, in.GetU32());
  uint64_t account;
  RETURN_IF_ERROR(VerifyAccount(cap, Rights::kRead, &account));
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                   ReadPayload(bno, account, /*check_account=*/true));
  WireEncoder out;
  out.PutBytes(payload);
  return OkReply(m.opcode, std::move(out));
}

Result<Message> BlockServer::HandleFree(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(Capability cap, in.GetCapability());
  ASSIGN_OR_RETURN(BlockNo bno, in.GetU32());
  uint64_t account;
  RETURN_IF_ERROR(VerifyAccount(cap, Rights::kDestroy, &account));
  bool in_use = false;
  RETURN_IF_ERROR(CheckWritable(bno, account, &in_use));
  if (!in_use) {
    return OkReply(m.opcode);  // freeing a free block is idempotent
  }
  // A free is a stable write of a tombstone (account 0), mirrored on the companion.
  RETURN_IF_ERROR(StableWrite(bno, 0, {}, /*is_alloc=*/false));
  return OkReply(m.opcode);
}

Result<Message> BlockServer::HandleReadMulti(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(Capability cap, in.GetCapability());
  uint64_t account;
  RETURN_IF_ERROR(VerifyAccount(cap, Rights::kRead, &account));
  ASSIGN_OR_RETURN(uint32_t n, in.GetU32());
  WireEncoder out;
  out.PutU32(n);
  // The client stub bounds n by the reply size; enforce it here too so a buggy or
  // malicious client can never make the server emit an oversized message.
  size_t reply_bytes = 96;
  for (uint32_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(BlockNo bno, in.GetU32());
    auto payload = ReadPayload(bno, account, /*check_account=*/true);
    const size_t entry_bytes = 8 + (payload.ok() ? payload->size() : 0);
    reply_bytes += entry_bytes;
    if (reply_bytes > kMaxMessageBytes) {
      return InvalidArgumentError("read-multi reply would exceed the 32K message limit");
    }
    if (payload.ok()) {
      out.PutU32(static_cast<uint32_t>(ErrorCode::kOk));
      out.PutBytes(*payload);
    } else {
      out.PutU32(static_cast<uint32_t>(payload.status().code()));
      out.PutBytes(std::span<const uint8_t>());
    }
  }
  return OkReply(m.opcode, std::move(out));
}

Result<Message> BlockServer::HandleWriteMulti(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(Capability cap, in.GetCapability());
  uint64_t account;
  RETURN_IF_ERROR(VerifyAccount(cap, Rights::kWrite, &account));
  ASSIGN_OR_RETURN(uint32_t n, in.GetU32());
  std::vector<PendingWrite> writes;
  writes.reserve(n);
  // Validate the whole chunk before touching anything, so a bad entry fails the chunk
  // cleanly with no partial effects.
  for (uint32_t i = 0; i < n; ++i) {
    PendingWrite w;
    ASSIGN_OR_RETURN(w.bno, in.GetU32());
    ASSIGN_OR_RETURN(w.payload, in.GetBytes());
    RETURN_IF_ERROR(CheckWritable(w.bno, account, nullptr));
    w.account = account;
    w.seq = next_seq_.fetch_add(1);
    writes.push_back(std::move(w));
  }
  RETURN_IF_ERROR(StableWriteBatch(std::move(writes)));
  return OkReply(m.opcode);
}

Result<Message> BlockServer::HandleFreeMulti(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(Capability cap, in.GetCapability());
  uint64_t account;
  RETURN_IF_ERROR(VerifyAccount(cap, Rights::kDestroy, &account));
  ASSIGN_OR_RETURN(uint32_t n, in.GetU32());
  std::vector<PendingWrite> writes;
  writes.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(BlockNo bno, in.GetU32());
    bool in_use = false;
    RETURN_IF_ERROR(CheckWritable(bno, account, &in_use));
    if (!in_use) {
      continue;  // freeing a free block is idempotent
    }
    PendingWrite w;
    w.bno = bno;
    w.account = 0;  // tombstone
    w.seq = next_seq_.fetch_add(1);
    writes.push_back(std::move(w));
  }
  RETURN_IF_ERROR(StableWriteBatch(std::move(writes)));
  return OkReply(m.opcode);
}

Result<Message> BlockServer::HandleAllocMulti(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(Capability cap, in.GetCapability());
  uint64_t account;
  RETURN_IF_ERROR(VerifyAccount(cap, Rights::kCreate | Rights::kWrite, &account));
  ASSIGN_OR_RETURN(uint32_t n, in.GetU32());
  if (n > blocks_.size()) {
    return NoSpaceError("alloc-multi larger than the disk");
  }
  std::vector<PendingWrite> writes;
  writes.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto bno = PickFreeBlock();
    if (!bno.ok()) {
      for (const PendingWrite& w : writes) {
        Shard& shard = ShardFor(w.bno);
        std::lock_guard<std::mutex> lock(shard.mu);
        blocks_[w.bno].in_use = false;  // roll back tentative picks
      }
      return bno.status();
    }
    PendingWrite w;
    w.bno = *bno;
    w.account = account;
    w.seq = next_seq_.fetch_add(1);
    w.is_alloc = true;
    writes.push_back(std::move(w));
  }
  WireEncoder out;
  out.PutU32(n);
  for (const PendingWrite& w : writes) {
    out.PutU32(w.bno);
  }
  // One companion transaction stamps the whole batch (per chunk); StableWriteBatch rolls
  // back any entries that never reached the disk.
  RETURN_IF_ERROR(StableWriteBatch(std::move(writes)));
  return OkReply(m.opcode, std::move(out));
}

Result<Message> BlockServer::HandleLock(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(Capability cap, in.GetCapability());
  ASSIGN_OR_RETURN(BlockNo bno, in.GetU32());
  ASSIGN_OR_RETURN(Port owner, in.GetU64());
  uint64_t account;
  RETURN_IF_ERROR(VerifyAccount(cap, Rights::kWrite, &account));
  Shard& shard = ShardFor(bno);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.locks.find(bno);
  if (it != shard.locks.end() && it->second != owner) {
    if (network()->IsPortAlive(it->second)) {
      return LockedError("block locked by another live transaction");
    }
    // The holder's port is dead — its process crashed; steal the lock (locks made of ports).
    it->second = owner;
    return OkReply(m.opcode);
  }
  shard.locks[bno] = owner;
  return OkReply(m.opcode);
}

Result<Message> BlockServer::HandleUnlock(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(Capability cap, in.GetCapability());
  ASSIGN_OR_RETURN(BlockNo bno, in.GetU32());
  ASSIGN_OR_RETURN(Port owner, in.GetU64());
  uint64_t account;
  RETURN_IF_ERROR(VerifyAccount(cap, Rights::kWrite, &account));
  Shard& shard = ShardFor(bno);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.locks.find(bno);
  if (it == shard.locks.end() || it->second != owner) {
    return InvalidArgumentError("unlock by non-holder");
  }
  shard.locks.erase(it);
  return OkReply(m.opcode);
}

Result<Message> BlockServer::HandleRecover(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(Capability cap, in.GetCapability());
  uint64_t account;
  RETURN_IF_ERROR(VerifyAccount(cap, Rights::kAdmin, &account));
  std::vector<BlockNo> owned;
  for (BlockNo bno = 0; bno < blocks_.size(); ++bno) {
    Shard& shard = ShardFor(bno);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (blocks_[bno].in_use && blocks_[bno].account == account) {
      owned.push_back(bno);
    }
  }
  WireEncoder out;
  out.PutU32(static_cast<uint32_t>(owned.size()));
  for (BlockNo bno : owned) {
    out.PutU32(bno);
  }
  return OkReply(m.opcode, std::move(out));
}

Result<Message> BlockServer::HandleStat(const Message& m) {
  uint32_t free_blocks = 0;
  for (BlockNo bno = 0; bno < blocks_.size(); ++bno) {
    Shard& shard = ShardFor(bno);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!blocks_[bno].in_use) {
      ++free_blocks;
    }
  }
  WireEncoder out;
  out.PutU32(free_blocks);
  out.PutU32(device_->geometry().num_blocks);
  out.PutU64(device_->reads());
  out.PutU64(device_->writes());
  return OkReply(m.opcode, std::move(out));
}

Result<Message> BlockServer::HandleCompanionWrite(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(BlockNo bno, in.GetU32());
  ASSIGN_OR_RETURN(uint64_t account, in.GetU64());
  ASSIGN_OR_RETURN(uint64_t seq, in.GetU64());
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, in.GetBytes());
  ASSIGN_OR_RETURN(uint8_t is_alloc, in.GetU8());
  if (bno >= blocks_.size()) {
    return InvalidArgumentError("block number out of range");
  }
  {
    Shard& shard = ShardFor(bno);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.in_flight_primary.find(bno) != shard.in_flight_primary.end()) {
      // Collision: this server is itself the primary for a concurrent operation on the same
      // block. Detected "before any damage is done" because companion writes happen first.
      collisions_.fetch_add(1);
      return ConflictError("concurrent primary operation on this block");
    }
    if (is_alloc != 0 && blocks_[bno].in_use) {
      // Allocate collision: the peer picked a number this server already handed out.
      collisions_.fetch_add(1);
      return ConflictError("allocate collision");
    }
  }
  RETURN_IF_ERROR(WriteLocal(bno, account, seq, payload));
  return OkReply(m.opcode);
}

Result<Message> BlockServer::HandleCompanionWriteMulti(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(uint32_t n, in.GetU32());
  std::vector<PendingWrite> entries;
  entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PendingWrite w;
    ASSIGN_OR_RETURN(w.bno, in.GetU32());
    ASSIGN_OR_RETURN(w.account, in.GetU64());
    ASSIGN_OR_RETURN(w.seq, in.GetU64());
    ASSIGN_OR_RETURN(w.payload, in.GetBytes());
    ASSIGN_OR_RETURN(uint8_t is_alloc, in.GetU8());
    w.is_alloc = is_alloc != 0;
    entries.push_back(std::move(w));
  }
  // Collision detection covers the WHOLE chunk before any block is written: a collision
  // anywhere rejects the chunk with the companion disk untouched.
  for (const PendingWrite& w : entries) {
    if (w.bno >= blocks_.size()) {
      return InvalidArgumentError("block number out of range");
    }
    Shard& shard = ShardFor(w.bno);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.in_flight_primary.find(w.bno) != shard.in_flight_primary.end()) {
      collisions_.fetch_add(1);
      return ConflictError("concurrent primary operation on a batched block");
    }
    if (w.is_alloc && blocks_[w.bno].in_use) {
      collisions_.fetch_add(1);
      return ConflictError("allocate collision in batch");
    }
  }
  for (const PendingWrite& w : entries) {
    RETURN_IF_ERROR(WriteLocal(w.bno, w.account, w.seq, w.payload));
  }
  return OkReply(m.opcode);
}

Result<Message> BlockServer::HandleCompanionFree(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(BlockNo bno, in.GetU32());
  RETURN_IF_ERROR(WriteLocal(bno, 0, 0, {}));
  return OkReply(m.opcode);
}

Result<Message> BlockServer::HandleFetchIntentions(const Message& m) {
  std::set<BlockNo> intentions;
  {
    std::lock_guard<std::mutex> lock(intentions_mu_);
    intentions.swap(intentions_for_companion_);
  }
  WireEncoder out;
  out.PutU32(static_cast<uint32_t>(intentions.size()));
  for (BlockNo bno : intentions) {
    out.PutU32(bno);
  }
  return OkReply(m.opcode, std::move(out));
}

Result<Message> BlockServer::HandleCompanionRead(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(BlockNo bno, in.GetU32());
  if (bno >= blocks_.size()) {
    return InvalidArgumentError("block number out of range");
  }
  const uint32_t block_size = device_->geometry().block_size;
  std::vector<uint8_t> raw(block_size);
  RETURN_IF_ERROR(device_->Read(bno, raw));
  ASSIGN_OR_RETURN(BlockHeader header, DecodeBlock(raw));
  WireEncoder out;
  out.PutU64(header.account);
  out.PutU8(header.magic != 0 && header.account != 0 ? 1 : 0);
  out.PutBytes(std::span<const uint8_t>(raw.data() + kBlockHeaderBytes, header.len));
  return OkReply(m.opcode, std::move(out));
}

// ---------------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------------

void BlockServer::RebuildAllocationFromDisk() {
  const DiskGeometry geo = device_->geometry();
  std::vector<uint8_t> raw(geo.block_size);
  uint64_t max_seq = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.locks.clear();  // locks died with the crashed process
    shard.in_flight_primary.clear();
  }
  for (BlockNo bno = 0; bno < geo.num_blocks; ++bno) {
    Shard& shard = ShardFor(bno);
    std::lock_guard<std::mutex> lock(shard.mu);
    blocks_[bno] = BlockMeta{};
    if (!device_->Read(bno, raw).ok()) {
      continue;
    }
    auto header = DecodeBlock(raw);
    if (!header.ok() || header->magic == 0) {
      continue;
    }
    blocks_[bno].account = header->account;
    blocks_[bno].seq = header->seq;
    blocks_[bno].in_use = header->account != 0;
    max_seq = std::max(max_seq, header->seq);
  }
  uint64_t expected = next_seq_.load();
  while (expected < max_seq + 1 &&
         !next_seq_.compare_exchange_weak(expected, max_seq + 1)) {
  }
}

void BlockServer::ReplayIntentionsFromCompanion() {
  const Port companion = companion_.load();
  if (companion == kNullPort) {
    return;
  }
  auto reply = CallAndCheck(network(), companion,
                            static_cast<uint32_t>(BlockOp::kFetchIntentions), WireEncoder());
  if (!reply.ok()) {
    return;  // companion also down; it will push state when it recovers
  }
  auto count = reply->GetU32();
  if (!count.ok()) {
    return;
  }
  for (uint32_t i = 0; i < *count; ++i) {
    auto bno = reply->GetU32();
    if (!bno.ok()) {
      return;
    }
    WireEncoder req;
    req.PutU32(*bno);
    auto data = CallAndCheck(network(), companion,
                             static_cast<uint32_t>(BlockOp::kCompanionRead), std::move(req));
    if (!data.ok()) {
      continue;
    }
    auto account = data->GetU64();
    auto in_use = data->GetU8();
    auto payload = data->GetBytes();
    if (!account.ok() || !in_use.ok() || !payload.ok()) {
      continue;
    }
    uint64_t seq = next_seq_.fetch_add(1);
    (void)WriteLocal(*bno, *in_use != 0 ? *account : 0, seq, *payload);
  }
}

void BlockServer::OnRestart() {
  // "After a crash, the block server compares notes with its companion, and restores its
  // disk before accepting any requests."
  RebuildAllocationFromDisk();
  ReplayIntentionsFromCompanion();
}

void BlockServer::RecoverFromDisk() {
  RebuildAllocationFromDisk();
  ReplayIntentionsFromCompanion();
}

}  // namespace afs
