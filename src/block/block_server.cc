#include "src/block/block_server.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "src/base/crc32.h"
#include "src/base/wire.h"
#include "src/block/protocol.h"
#include "src/rpc/client.h"

namespace afs {
namespace {

struct BlockHeader {
  uint32_t magic = 0;
  uint64_t account = 0;
  uint64_t seq = 0;
  uint32_t crc = 0;
  uint32_t len = 0;
};

void StoreU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

void StoreU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

void EncodeBlock(std::span<uint8_t> block, const BlockHeader& h,
                 std::span<const uint8_t> payload) {
  StoreU32(block.data(), h.magic);
  StoreU64(block.data() + 4, h.account);
  StoreU64(block.data() + 12, h.seq);
  StoreU32(block.data() + 20, h.crc);
  StoreU32(block.data() + 24, h.len);
  std::memcpy(block.data() + kBlockHeaderBytes, payload.data(), payload.size());
  std::memset(block.data() + kBlockHeaderBytes + payload.size(), 0,
              block.size() - kBlockHeaderBytes - payload.size());
}

// Parses and integrity-checks a raw block. kCorrupt on bad magic, bad length, or CRC
// mismatch; a never-written (all-zero) block decodes as "not in use".
Result<BlockHeader> DecodeBlock(std::span<const uint8_t> block) {
  BlockHeader h;
  h.magic = LoadU32(block.data());
  h.account = LoadU64(block.data() + 4);
  h.seq = LoadU64(block.data() + 12);
  h.crc = LoadU32(block.data() + 20);
  h.len = LoadU32(block.data() + 24);
  if (h.magic == 0 && h.account == 0 && h.len == 0) {
    // Virgin block.
    return h;
  }
  if (h.magic != kBlockMagic) {
    return CorruptError("bad block magic");
  }
  if (h.len > block.size() - kBlockHeaderBytes) {
    return CorruptError("block payload length out of range");
  }
  if (Crc32c(block.data() + kBlockHeaderBytes, h.len) != h.crc) {
    return CorruptError("block payload CRC mismatch");
  }
  return h;
}

}  // namespace

BlockServer::BlockServer(Network* network, std::string name, BlockDevice* device,
                         uint64_t secret_seed)
    : Service(network, std::move(name)),
      device_(device),
      signer_(0, Mix64(secret_seed)),
      rng_(secret_seed ^ 0xb10c) {
  blocks_.resize(device->geometry().num_blocks);
}

void BlockServer::SetCompanion(Port companion) {
  std::lock_guard<std::mutex> lock(state_mu_);
  companion_ = companion;
}

uint32_t BlockServer::payload_capacity() const {
  return device_->geometry().block_size - kBlockHeaderBytes;
}

Capability BlockServer::CreateAccountDirect() {
  std::lock_guard<std::mutex> lock(state_mu_);
  uint64_t account = rng_.NextU64() | 1;
  accounts_.insert(account);
  // The signer's port field is not known until Start(); accounts are signed against object
  // ids only (port 0), so capabilities survive server restarts on the same secret.
  return signer_.Sign(account, Rights::kAll);
}

uint64_t BlockServer::collisions_detected() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return collisions_;
}

uint64_t BlockServer::degraded_writes() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return degraded_writes_;
}

Status BlockServer::VerifyAccount(const Capability& cap, uint32_t rights,
                                  uint64_t* account_out) {
  RETURN_IF_ERROR(signer_.Verify(cap, rights));
  *account_out = cap.object;
  return OkStatus();
}

Result<BlockNo> BlockServer::PickFreeBlock() {
  std::lock_guard<std::mutex> lock(state_mu_);
  const auto num_blocks = static_cast<BlockNo>(blocks_.size());
  for (BlockNo probe = 0; probe < num_blocks; ++probe) {
    BlockNo bno = (alloc_cursor_ + probe) % num_blocks;
    if (!blocks_[bno].in_use && in_flight_primary_.find(bno) == in_flight_primary_.end() &&
        locks_.find(bno) == locks_.end()) {
      alloc_cursor_ = (bno + 1) % num_blocks;
      blocks_[bno].in_use = true;  // tentative; rolled back on collision
      return bno;
    }
  }
  return NoSpaceError("disk full");
}

Status BlockServer::WriteLocal(BlockNo bno, uint64_t account, uint64_t seq,
                               std::span<const uint8_t> payload) {
  const uint32_t block_size = device_->geometry().block_size;
  if (payload.size() > block_size - kBlockHeaderBytes) {
    return InvalidArgumentError("payload exceeds block capacity");
  }
  std::vector<uint8_t> raw(block_size);
  BlockHeader h;
  h.magic = kBlockMagic;
  h.account = account;
  h.seq = seq;
  h.len = static_cast<uint32_t>(payload.size());
  h.crc = Crc32c(payload.data(), payload.size());
  EncodeBlock(raw, h, payload);
  RETURN_IF_ERROR(device_->Write(bno, raw));
  std::lock_guard<std::mutex> lock(state_mu_);
  blocks_[bno].account = account;
  blocks_[bno].seq = seq;
  blocks_[bno].in_use = account != 0;
  return OkStatus();
}

void BlockServer::RecordIntention(BlockNo bno) {
  std::lock_guard<std::mutex> lock(state_mu_);
  intentions_for_companion_.insert(bno);
  ++degraded_writes_;
}

Status BlockServer::StableWrite(BlockNo bno, uint64_t account,
                                std::span<const uint8_t> payload, bool is_alloc) {
  Port companion;
  uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    companion = companion_;
    seq = next_seq_++;
    ++in_flight_primary_[bno];
  }

  Status result = OkStatus();
  if (companion != kNullPort) {
    // "writes are always carried out on the companion disk first."
    WireEncoder req;
    req.PutU32(bno);
    req.PutU64(account);
    req.PutU64(seq);
    req.PutBytes(payload);
    req.PutU8(is_alloc ? 1 : 0);
    auto reply = CallAndCheck(network(), companion,
                              static_cast<uint32_t>(BlockOp::kCompanionWrite), std::move(req));
    if (!reply.ok()) {
      switch (reply.status().code()) {
        case ErrorCode::kConflict:
          // Allocate or write collision, detected at the companion before any damage.
          result = ConflictError("block write collision at companion");
          break;
        case ErrorCode::kCrashed:
        case ErrorCode::kTimeout:
        case ErrorCode::kUnavailable:
        case ErrorCode::kNotFound:
          // Companion down: degrade to local-only and remember what it missed.
          RecordIntention(bno);
          break;
        default:
          result = reply.status();
          break;
      }
    }
  }
  if (result.ok()) {
    result = WriteLocal(bno, account, seq, payload);
  }

  std::lock_guard<std::mutex> lock(state_mu_);
  auto it = in_flight_primary_.find(bno);
  if (it != in_flight_primary_.end() && --it->second == 0) {
    in_flight_primary_.erase(it);
  }
  if (!result.ok() && is_alloc) {
    blocks_[bno].in_use = false;  // roll back the tentative allocation
  }
  return result;
}

Result<std::vector<uint8_t>> BlockServer::FetchFromCompanion(BlockNo bno) {
  Port companion;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    companion = companion_;
  }
  if (companion == kNullPort) {
    return CorruptError("block corrupt and no companion configured");
  }
  WireEncoder req;
  req.PutU32(bno);
  ASSIGN_OR_RETURN(WireDecoder reply,
                   CallAndCheck(network(), companion,
                                static_cast<uint32_t>(BlockOp::kCompanionRead), std::move(req)));
  ASSIGN_OR_RETURN(uint64_t account, reply.GetU64());
  ASSIGN_OR_RETURN(uint8_t in_use, reply.GetU8());
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, reply.GetBytes());
  if (in_use == 0) {
    return NotFoundError("companion copy not in use");
  }
  (void)account;
  return payload;
}

Result<std::vector<uint8_t>> BlockServer::ReadPayload(BlockNo bno, uint64_t account,
                                                      bool check_account) {
  const uint32_t block_size = device_->geometry().block_size;
  if (bno >= blocks_.size()) {
    return InvalidArgumentError("block number out of range");
  }
  std::vector<uint8_t> raw(block_size);
  // A device-level kCorrupt (FileDisk's sector checksum caught a torn or misdirected
  // write) enters the same companion-repair path as a server-level CRC mismatch.
  Status read_status = device_->Read(bno, raw);
  if (!read_status.ok() && read_status.code() != ErrorCode::kCorrupt) {
    return read_status;
  }
  auto header = read_status.ok() ? DecodeBlock(raw) : Result<BlockHeader>(read_status);
  if (!header.ok()) {
    // "the block server need not consult its companion, except when the block on its disk
    // is corrupted." Fetch the good copy and repair the local one.
    ASSIGN_OR_RETURN(std::vector<uint8_t> payload, FetchFromCompanion(bno));
    uint64_t seq;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      seq = next_seq_++;
    }
    uint64_t repaired_account = account;
    RETURN_IF_ERROR(WriteLocal(bno, repaired_account, seq, payload));
    return payload;
  }
  if (header->magic == 0) {
    return NotFoundError("block never written");
  }
  if (check_account && header->account != account) {
    return BadCapabilityError("block owned by a different account");
  }
  std::vector<uint8_t> payload(raw.begin() + kBlockHeaderBytes,
                               raw.begin() + kBlockHeaderBytes + header->len);
  return payload;
}

// ---------------------------------------------------------------------------
// Request dispatch
// ---------------------------------------------------------------------------

Result<Message> BlockServer::Handle(const Message& request) {
  switch (static_cast<BlockOp>(request.opcode)) {
    case BlockOp::kCreateAccount:
      return HandleCreateAccount(request);
    case BlockOp::kAllocate:
      return HandleAllocate(request);
    case BlockOp::kAllocWrite:
      return HandleAllocWrite(request);
    case BlockOp::kWrite:
      return HandleWrite(request);
    case BlockOp::kRead:
      return HandleRead(request);
    case BlockOp::kFree:
      return HandleFree(request);
    case BlockOp::kLock:
      return HandleLock(request);
    case BlockOp::kUnlock:
      return HandleUnlock(request);
    case BlockOp::kRecover:
      return HandleRecover(request);
    case BlockOp::kStat:
      return HandleStat(request);
    case BlockOp::kCompanionWrite:
      return HandleCompanionWrite(request);
    case BlockOp::kCompanionFree:
      return HandleCompanionFree(request);
    case BlockOp::kFetchIntentions:
      return HandleFetchIntentions(request);
    case BlockOp::kCompanionRead:
      return HandleCompanionRead(request);
  }
  return InvalidArgumentError("unknown block server opcode");
}

Result<Message> BlockServer::HandleCreateAccount(const Message& m) {
  Capability cap = CreateAccountDirect();
  WireEncoder out;
  out.PutCapability(cap);
  return OkReply(m.opcode, std::move(out));
}

Result<Message> BlockServer::HandleAllocate(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(Capability cap, in.GetCapability());
  uint64_t account;
  RETURN_IF_ERROR(VerifyAccount(cap, Rights::kCreate, &account));
  ASSIGN_OR_RETURN(BlockNo bno, PickFreeBlock());
  // Stamp ownership so Recover() finds it even if never written by the client.
  Status st = StableWrite(bno, account, {}, /*is_alloc=*/true);
  if (!st.ok()) {
    return st;
  }
  WireEncoder out;
  out.PutU32(bno);
  return OkReply(m.opcode, std::move(out));
}

Result<Message> BlockServer::HandleAllocWrite(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(Capability cap, in.GetCapability());
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, in.GetBytes());
  uint64_t account;
  RETURN_IF_ERROR(VerifyAccount(cap, Rights::kCreate | Rights::kWrite, &account));
  ASSIGN_OR_RETURN(BlockNo bno, PickFreeBlock());
  Status st = StableWrite(bno, account, payload, /*is_alloc=*/true);
  if (!st.ok()) {
    return st;
  }
  WireEncoder out;
  out.PutU32(bno);
  return OkReply(m.opcode, std::move(out));
}

Result<Message> BlockServer::HandleWrite(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(Capability cap, in.GetCapability());
  ASSIGN_OR_RETURN(BlockNo bno, in.GetU32());
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, in.GetBytes());
  uint64_t account;
  RETURN_IF_ERROR(VerifyAccount(cap, Rights::kWrite, &account));
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (bno >= blocks_.size()) {
      return InvalidArgumentError("block number out of range");
    }
    if (!blocks_[bno].in_use) {
      return NotFoundError("write to unallocated block");
    }
    if (blocks_[bno].account != 0 && blocks_[bno].account != account) {
      return BadCapabilityError("block owned by a different account");
    }
  }
  RETURN_IF_ERROR(StableWrite(bno, account, payload, /*is_alloc=*/false));
  return OkReply(m.opcode);
}

Result<Message> BlockServer::HandleRead(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(Capability cap, in.GetCapability());
  ASSIGN_OR_RETURN(BlockNo bno, in.GetU32());
  uint64_t account;
  RETURN_IF_ERROR(VerifyAccount(cap, Rights::kRead, &account));
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                   ReadPayload(bno, account, /*check_account=*/true));
  WireEncoder out;
  out.PutBytes(payload);
  return OkReply(m.opcode, std::move(out));
}

Result<Message> BlockServer::HandleFree(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(Capability cap, in.GetCapability());
  ASSIGN_OR_RETURN(BlockNo bno, in.GetU32());
  uint64_t account;
  RETURN_IF_ERROR(VerifyAccount(cap, Rights::kDestroy, &account));
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (bno >= blocks_.size()) {
      return InvalidArgumentError("block number out of range");
    }
    if (!blocks_[bno].in_use) {
      return OkReply(m.opcode);  // freeing a free block is idempotent
    }
    if (blocks_[bno].account != 0 && blocks_[bno].account != account) {
      return BadCapabilityError("block owned by a different account");
    }
  }
  // A free is a stable write of a tombstone (account 0), mirrored on the companion.
  RETURN_IF_ERROR(StableWrite(bno, 0, {}, /*is_alloc=*/false));
  return OkReply(m.opcode);
}

Result<Message> BlockServer::HandleLock(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(Capability cap, in.GetCapability());
  ASSIGN_OR_RETURN(BlockNo bno, in.GetU32());
  ASSIGN_OR_RETURN(Port owner, in.GetU64());
  uint64_t account;
  RETURN_IF_ERROR(VerifyAccount(cap, Rights::kWrite, &account));
  std::lock_guard<std::mutex> lock(state_mu_);
  auto it = locks_.find(bno);
  if (it != locks_.end() && it->second != owner) {
    if (network()->IsPortAlive(it->second)) {
      return LockedError("block locked by another live transaction");
    }
    // The holder's port is dead — its process crashed; steal the lock (locks made of ports).
    it->second = owner;
    return OkReply(m.opcode);
  }
  locks_[bno] = owner;
  return OkReply(m.opcode);
}

Result<Message> BlockServer::HandleUnlock(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(Capability cap, in.GetCapability());
  ASSIGN_OR_RETURN(BlockNo bno, in.GetU32());
  ASSIGN_OR_RETURN(Port owner, in.GetU64());
  uint64_t account;
  RETURN_IF_ERROR(VerifyAccount(cap, Rights::kWrite, &account));
  std::lock_guard<std::mutex> lock(state_mu_);
  auto it = locks_.find(bno);
  if (it == locks_.end() || it->second != owner) {
    return InvalidArgumentError("unlock by non-holder");
  }
  locks_.erase(it);
  return OkReply(m.opcode);
}

Result<Message> BlockServer::HandleRecover(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(Capability cap, in.GetCapability());
  uint64_t account;
  RETURN_IF_ERROR(VerifyAccount(cap, Rights::kAdmin, &account));
  std::vector<BlockNo> owned;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    for (BlockNo bno = 0; bno < blocks_.size(); ++bno) {
      if (blocks_[bno].in_use && blocks_[bno].account == account) {
        owned.push_back(bno);
      }
    }
  }
  WireEncoder out;
  out.PutU32(static_cast<uint32_t>(owned.size()));
  for (BlockNo bno : owned) {
    out.PutU32(bno);
  }
  return OkReply(m.opcode, std::move(out));
}

Result<Message> BlockServer::HandleStat(const Message& m) {
  uint32_t free_blocks = 0;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    for (const auto& b : blocks_) {
      if (!b.in_use) {
        ++free_blocks;
      }
    }
  }
  WireEncoder out;
  out.PutU32(free_blocks);
  out.PutU32(device_->geometry().num_blocks);
  out.PutU64(device_->reads());
  out.PutU64(device_->writes());
  return OkReply(m.opcode, std::move(out));
}

Result<Message> BlockServer::HandleCompanionWrite(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(BlockNo bno, in.GetU32());
  ASSIGN_OR_RETURN(uint64_t account, in.GetU64());
  ASSIGN_OR_RETURN(uint64_t seq, in.GetU64());
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, in.GetBytes());
  ASSIGN_OR_RETURN(uint8_t is_alloc, in.GetU8());
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (bno >= blocks_.size()) {
      return InvalidArgumentError("block number out of range");
    }
    if (in_flight_primary_.find(bno) != in_flight_primary_.end()) {
      // Collision: this server is itself the primary for a concurrent operation on the same
      // block. Detected "before any damage is done" because companion writes happen first.
      ++collisions_;
      return ConflictError("concurrent primary operation on this block");
    }
    if (is_alloc != 0 && blocks_[bno].in_use) {
      // Allocate collision: the peer picked a number this server already handed out.
      ++collisions_;
      return ConflictError("allocate collision");
    }
  }
  RETURN_IF_ERROR(WriteLocal(bno, account, seq, payload));
  return OkReply(m.opcode);
}

Result<Message> BlockServer::HandleCompanionFree(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(BlockNo bno, in.GetU32());
  RETURN_IF_ERROR(WriteLocal(bno, 0, 0, {}));
  return OkReply(m.opcode);
}

Result<Message> BlockServer::HandleFetchIntentions(const Message& m) {
  std::set<BlockNo> intentions;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    intentions.swap(intentions_for_companion_);
  }
  WireEncoder out;
  out.PutU32(static_cast<uint32_t>(intentions.size()));
  for (BlockNo bno : intentions) {
    out.PutU32(bno);
  }
  return OkReply(m.opcode, std::move(out));
}

Result<Message> BlockServer::HandleCompanionRead(const Message& m) {
  WireDecoder in(m.payload);
  ASSIGN_OR_RETURN(BlockNo bno, in.GetU32());
  if (bno >= blocks_.size()) {
    return InvalidArgumentError("block number out of range");
  }
  const uint32_t block_size = device_->geometry().block_size;
  std::vector<uint8_t> raw(block_size);
  RETURN_IF_ERROR(device_->Read(bno, raw));
  ASSIGN_OR_RETURN(BlockHeader header, DecodeBlock(raw));
  WireEncoder out;
  out.PutU64(header.account);
  out.PutU8(header.magic != 0 && header.account != 0 ? 1 : 0);
  out.PutBytes(std::span<const uint8_t>(raw.data() + kBlockHeaderBytes, header.len));
  return OkReply(m.opcode, std::move(out));
}

// ---------------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------------

void BlockServer::RebuildAllocationFromDisk() {
  const DiskGeometry geo = device_->geometry();
  std::vector<uint8_t> raw(geo.block_size);
  uint64_t max_seq = 0;
  std::lock_guard<std::mutex> lock(state_mu_);
  for (BlockNo bno = 0; bno < geo.num_blocks; ++bno) {
    blocks_[bno] = BlockMeta{};
    if (!device_->Read(bno, raw).ok()) {
      continue;
    }
    auto header = DecodeBlock(raw);
    if (!header.ok() || header->magic == 0) {
      continue;
    }
    blocks_[bno].account = header->account;
    blocks_[bno].seq = header->seq;
    blocks_[bno].in_use = header->account != 0;
    max_seq = std::max(max_seq, header->seq);
  }
  next_seq_ = std::max(next_seq_, max_seq + 1);
  locks_.clear();  // locks died with the crashed process
  in_flight_primary_.clear();
}

void BlockServer::ReplayIntentionsFromCompanion() {
  Port companion;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    companion = companion_;
  }
  if (companion == kNullPort) {
    return;
  }
  auto reply = CallAndCheck(network(), companion,
                            static_cast<uint32_t>(BlockOp::kFetchIntentions), WireEncoder());
  if (!reply.ok()) {
    return;  // companion also down; it will push state when it recovers
  }
  auto count = reply->GetU32();
  if (!count.ok()) {
    return;
  }
  for (uint32_t i = 0; i < *count; ++i) {
    auto bno = reply->GetU32();
    if (!bno.ok()) {
      return;
    }
    WireEncoder req;
    req.PutU32(*bno);
    auto data = CallAndCheck(network(), companion,
                             static_cast<uint32_t>(BlockOp::kCompanionRead), std::move(req));
    if (!data.ok()) {
      continue;
    }
    auto account = data->GetU64();
    auto in_use = data->GetU8();
    auto payload = data->GetBytes();
    if (!account.ok() || !in_use.ok() || !payload.ok()) {
      continue;
    }
    uint64_t seq;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      seq = next_seq_++;
    }
    (void)WriteLocal(*bno, *in_use != 0 ? *account : 0, seq, *payload);
  }
}

void BlockServer::OnRestart() {
  // "After a crash, the block server compares notes with its companion, and restores its
  // disk before accepting any requests."
  RebuildAllocationFromDisk();
  ReplayIntentionsFromCompanion();
}

void BlockServer::RecoverFromDisk() {
  RebuildAllocationFromDisk();
  ReplayIntentionsFromCompanion();
}

}  // namespace afs
