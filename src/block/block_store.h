// BlockStore: the client-side view of block storage that the file service is written
// against. Three implementations:
//   * BlockClient      — RPC stub talking to one BlockServer.
//   * StableStore      — a pair of BlockClients with automatic fail-over: "clients send
//                        requests to the alternative block server if the primary fails to
//                        respond" (§4).
//   * InMemoryBlockStore — direct in-process store, for unit tests and CPU-cost benchmarks
//                        that must not be dominated by RPC machinery.
//
// The file service's commit critical section (test-and-set of the commit reference, §5.2)
// is expressed through Lock/Read/Write/Unlock: "lock and read a block, examine and modify
// it, then write and unlock the block again" (§4).

#ifndef SRC_BLOCK_BLOCK_STORE_H_
#define SRC_BLOCK_BLOCK_STORE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/base/capability.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/disk/block_device.h"
#include "src/obs/metrics.h"
#include "src/rpc/network.h"

namespace afs {

class BlockStore {
 public:
  virtual ~BlockStore() = default;

  // Allocate a fresh block and write `payload` into it atomically.
  virtual Result<BlockNo> AllocWrite(std::span<const uint8_t> payload) = 0;
  // Overwrite an existing block atomically.
  virtual Status Write(BlockNo bno, std::span<const uint8_t> payload) = 0;
  virtual Result<std::vector<uint8_t>> Read(BlockNo bno) = 0;
  virtual Status Free(BlockNo bno) = 0;

  // Advisory block lock keyed by a port. A lock whose port has died is stealable.
  virtual Status Lock(BlockNo bno, Port owner) = 0;
  virtual Status Unlock(BlockNo bno, Port owner) = 0;

  // All blocks owned by this store's account (the §4 recovery operation).
  virtual Result<std::vector<BlockNo>> ListBlocks() = 0;

  // Usable payload bytes per block.
  virtual uint32_t payload_capacity() const = 0;
};

// RPC stub bound to (server port, account capability).
class BlockClient : public BlockStore {
 public:
  BlockClient(Network* network, Port server, Capability account, uint32_t payload_capacity);

  Result<BlockNo> AllocWrite(std::span<const uint8_t> payload) override;
  Status Write(BlockNo bno, std::span<const uint8_t> payload) override;
  Result<std::vector<uint8_t>> Read(BlockNo bno) override;
  Status Free(BlockNo bno) override;
  Status Lock(BlockNo bno, Port owner) override;
  Status Unlock(BlockNo bno, Port owner) override;
  Result<std::vector<BlockNo>> ListBlocks() override;
  uint32_t payload_capacity() const override { return payload_capacity_; }

  Port server_port() const { return server_; }

 private:
  Network* network_;
  Port server_;
  Capability account_;
  uint32_t payload_capacity_;
};

// Fail-over wrapper over the two members of a stable pair. Requests go to the preferred
// member; on kCrashed/kTimeout/kUnavailable the other member is tried and becomes preferred.
// Write collisions (kConflict) are retried with random backoff, per §4.
class StableStore : public BlockStore {
 public:
  StableStore(std::unique_ptr<BlockClient> a, std::unique_ptr<BlockClient> b,
              uint64_t retry_seed);

  Result<BlockNo> AllocWrite(std::span<const uint8_t> payload) override;
  Status Write(BlockNo bno, std::span<const uint8_t> payload) override;
  Result<std::vector<uint8_t>> Read(BlockNo bno) override;
  Status Free(BlockNo bno) override;
  Status Lock(BlockNo bno, Port owner) override;
  Status Unlock(BlockNo bno, Port owner) override;
  Result<std::vector<BlockNo>> ListBlocks() override;
  uint32_t payload_capacity() const override;

 private:
  // Runs `op` against the preferred member, failing over once on connectivity errors and
  // retrying a bounded number of times on collision.
  template <typename T>
  Result<T> WithFailover(const std::function<Result<T>(BlockClient*)>& op);

  std::unique_ptr<BlockClient> members_[2];
  std::mutex mu_;
  int preferred_ = 0;
  Rng rng_;
};

// Direct in-process store (no RPC, no server). Thread-safe.
class InMemoryBlockStore : public BlockStore {
 public:
  explicit InMemoryBlockStore(uint32_t payload_capacity = 4068, uint32_t num_blocks = 1 << 20);

  Result<BlockNo> AllocWrite(std::span<const uint8_t> payload) override;
  Status Write(BlockNo bno, std::span<const uint8_t> payload) override;
  Result<std::vector<uint8_t>> Read(BlockNo bno) override;
  Status Free(BlockNo bno) override;
  Status Lock(BlockNo bno, Port owner) override;
  Status Unlock(BlockNo bno, Port owner) override;
  Result<std::vector<BlockNo>> ListBlocks() override;
  uint32_t payload_capacity() const override { return payload_capacity_; }

  // Number of blocks currently allocated (GC tests assert exact reclamation).
  size_t allocated_blocks() const;
  uint64_t total_writes() const { return writes_->value(); }
  uint64_t total_reads() const { return reads_->value(); }

  // Simulated per-operation I/O latency, slept OUTSIDE the internal mutex so that
  // concurrent operations overlap — this is how benchmarks model the disk-bound servers
  // of the paper's era (DESIGN.md substitution table). Zero (the default) disables it.
  // A thin wrapper over the unified SimulatedLatency knob in src/disk/block_device.h.
  void set_op_latency(std::chrono::microseconds latency) { latency_.set_sleep(latency); }
  SimulatedLatency& latency() { return latency_; }

 private:
  const uint32_t payload_capacity_;
  const uint32_t num_blocks_;
  SimulatedLatency latency_;
  mutable std::mutex mu_;
  std::unordered_map<BlockNo, std::vector<uint8_t>> blocks_;
  std::unordered_map<BlockNo, Port> locks_;
  BlockNo next_ = 0;
  obs::MetricRegistry metrics_{"blockstore"};
  obs::Counter* reads_ = metrics_.counter("store.read");
  obs::Counter* writes_ = metrics_.counter("store.write");
  obs::Counter* frees_ = metrics_.counter("store.free");
  obs::Counter* lock_contended_ = metrics_.counter("store.lock_contended");
};

}  // namespace afs

#endif  // SRC_BLOCK_BLOCK_STORE_H_
