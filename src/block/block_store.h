// BlockStore: the client-side view of block storage that the file service is written
// against. Three implementations:
//   * BlockClient      — RPC stub talking to one BlockServer.
//   * StableStore      — a pair of BlockClients with automatic fail-over: "clients send
//                        requests to the alternative block server if the primary fails to
//                        respond" (§4).
//   * InMemoryBlockStore — direct in-process store, for unit tests and CPU-cost benchmarks
//                        that must not be dominated by RPC machinery.
//
// The file service's commit critical section (test-and-set of the commit reference, §5.2)
// is expressed through Lock/Read/Write/Unlock: "lock and read a block, examine and modify
// it, then write and unlock the block again" (§4).

#ifndef SRC_BLOCK_BLOCK_STORE_H_
#define SRC_BLOCK_BLOCK_STORE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/base/capability.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/disk/block_device.h"
#include "src/obs/metrics.h"
#include "src/rpc/transport.h"

namespace afs {

// Global batching kill-switch (default on). When off, the vectored BlockStore entry points
// fall back to one-block-per-RPC loops — the `--no_batch` baseline of bench_batch, and a
// safety hatch. Reads are relaxed; flipping it mid-flight only affects new calls.
void SetBatchingEnabled(bool enabled);
bool BatchingEnabled();

// One element of a vectored write: overwrite block `bno` with `payload`.
struct BlockWrite {
  BlockNo bno = 0;
  std::vector<uint8_t> payload;
};

// One element of a vectored read reply: per-block status so a recovery scan can tolerate
// holes without failing the whole batch.
struct BlockReadResult {
  Status status;
  std::vector<uint8_t> data;  // valid iff status.ok()
};

class BlockStore {
 public:
  virtual ~BlockStore() = default;

  // Allocate a fresh block and write `payload` into it atomically.
  virtual Result<BlockNo> AllocWrite(std::span<const uint8_t> payload) = 0;
  // Overwrite an existing block atomically.
  virtual Status Write(BlockNo bno, std::span<const uint8_t> payload) = 0;
  virtual Result<std::vector<uint8_t>> Read(BlockNo bno) = 0;
  virtual Status Free(BlockNo bno) = 0;

  // --- Vectored I/O ---------------------------------------------------------
  // Defaults degrade to per-block loops, so every BlockStore supports the vectored API;
  // BlockClient, StableStore and InMemoryBlockStore override with native batch paths.
  //
  // Read many blocks; result[i] corresponds to bnos[i]. The top-level Result fails only on
  // transport-level errors; per-block failures (missing block, bad account) are reported
  // per entry.
  virtual Result<std::vector<BlockReadResult>> ReadMulti(std::span<const BlockNo> bnos);
  // Overwrite many existing blocks. Chunked under kMaxMessageBytes by RPC-backed stores;
  // each chunk is applied atomically with respect to collision detection (per-chunk
  // atomicity — see docs/PERF.md). A single payload too large for any message fails with
  // kInvalidArgument before anything is written.
  virtual Status WriteBatch(std::span<const BlockWrite> writes);
  // Free many blocks (idempotent per block, like Free).
  virtual Status FreeMulti(std::span<const BlockNo> bnos);
  // Reserve-and-stamp n fresh blocks in one round trip. Callers fill them with WriteBatch.
  virtual Result<std::vector<BlockNo>> AllocMulti(uint32_t n);

  // Advisory block lock keyed by a port. A lock whose port has died is stealable.
  virtual Status Lock(BlockNo bno, Port owner) = 0;
  virtual Status Unlock(BlockNo bno, Port owner) = 0;

  // All blocks owned by this store's account (the §4 recovery operation).
  virtual Result<std::vector<BlockNo>> ListBlocks() = 0;

  // Usable payload bytes per block.
  virtual uint32_t payload_capacity() const = 0;
};

// RPC stub bound to (server port, account capability). The vectored entry points chunk
// batches so that no request or reply message ever exceeds kMaxMessageBytes.
class BlockClient : public BlockStore {
 public:
  BlockClient(Transport* transport, Port server, Capability account, uint32_t payload_capacity);

  Result<BlockNo> AllocWrite(std::span<const uint8_t> payload) override;
  Status Write(BlockNo bno, std::span<const uint8_t> payload) override;
  Result<std::vector<uint8_t>> Read(BlockNo bno) override;
  Status Free(BlockNo bno) override;
  Result<std::vector<BlockReadResult>> ReadMulti(std::span<const BlockNo> bnos) override;
  Status WriteBatch(std::span<const BlockWrite> writes) override;
  Status FreeMulti(std::span<const BlockNo> bnos) override;
  Result<std::vector<BlockNo>> AllocMulti(uint32_t n) override;
  Status Lock(BlockNo bno, Port owner) override;
  Status Unlock(BlockNo bno, Port owner) override;
  Result<std::vector<BlockNo>> ListBlocks() override;
  uint32_t payload_capacity() const override { return payload_capacity_; }

  Port server_port() const { return server_; }

  // Test-only fault-injection hook: invoked between successive chunk RPCs of one vectored
  // call (after chunk `completed_chunks` was acked, before the next chunk is sent). Used
  // to crash the server mid-batch and assert per-chunk atomicity.
  void set_between_chunks_hook_for_test(std::function<void(size_t completed_chunks)> hook) {
    between_chunks_hook_ = std::move(hook);
  }

 private:
  // Largest number of blocks one ReadMulti chunk may request, bounded by the reply size.
  size_t ReadChunkBlocks() const;

  Transport* transport_;
  Port server_;
  Capability account_;
  uint32_t payload_capacity_;
  std::function<void(size_t)> between_chunks_hook_;
};

// Fail-over wrapper over the two members of a stable pair. Requests go to the preferred
// member; on kCrashed/kTimeout/kUnavailable the other member is tried and becomes preferred.
// Write collisions (kConflict) are retried with random backoff, per §4.
class StableStore : public BlockStore {
 public:
  StableStore(std::unique_ptr<BlockClient> a, std::unique_ptr<BlockClient> b,
              uint64_t retry_seed);

  Result<BlockNo> AllocWrite(std::span<const uint8_t> payload) override;
  Status Write(BlockNo bno, std::span<const uint8_t> payload) override;
  Result<std::vector<uint8_t>> Read(BlockNo bno) override;
  Status Free(BlockNo bno) override;
  Result<std::vector<BlockReadResult>> ReadMulti(std::span<const BlockNo> bnos) override;
  Status WriteBatch(std::span<const BlockWrite> writes) override;
  Status FreeMulti(std::span<const BlockNo> bnos) override;
  Result<std::vector<BlockNo>> AllocMulti(uint32_t n) override;
  Status Lock(BlockNo bno, Port owner) override;
  Status Unlock(BlockNo bno, Port owner) override;
  Result<std::vector<BlockNo>> ListBlocks() override;
  uint32_t payload_capacity() const override;

  // Failover observability: times the preferred member was abandoned on a connectivity
  // error (kCrashed/kTimeout/kUnavailable), and whether the pair is currently degraded to
  // single-member operation (gauge; its max() watermark records "ever failed over").
  uint64_t failovers() const { return failovers_->value(); }
  bool degraded() const { return degraded_->value() != 0; }
  obs::MetricRegistry* metrics() { return &metrics_; }

 private:
  // Runs `op` against the preferred member, failing over once on connectivity errors and
  // retrying a bounded number of times on collision.
  template <typename T>
  Result<T> WithFailover(const std::function<Result<T>(BlockClient*)>& op);

  std::unique_ptr<BlockClient> members_[2];
  std::mutex mu_;
  int preferred_ = 0;
  Rng rng_;

  obs::MetricRegistry metrics_{"stablestore"};
  obs::Counter* failovers_ = metrics_.counter("stable.failover");
  obs::Gauge* degraded_ = metrics_.gauge("stable.degraded");
};

// Direct in-process store (no RPC, no server). Thread-safe; internal state (block map and
// lock table alike) is striped into `num_shards` mutex shards keyed by block number, so
// concurrent operations on different blocks proceed in parallel.
class InMemoryBlockStore : public BlockStore {
 public:
  explicit InMemoryBlockStore(uint32_t payload_capacity = 4068, uint32_t num_blocks = 1 << 20,
                              uint32_t num_shards = 16);

  Result<BlockNo> AllocWrite(std::span<const uint8_t> payload) override;
  Status Write(BlockNo bno, std::span<const uint8_t> payload) override;
  Result<std::vector<uint8_t>> Read(BlockNo bno) override;
  Status Free(BlockNo bno) override;
  Result<std::vector<BlockReadResult>> ReadMulti(std::span<const BlockNo> bnos) override;
  Status WriteBatch(std::span<const BlockWrite> writes) override;
  Status FreeMulti(std::span<const BlockNo> bnos) override;
  Result<std::vector<BlockNo>> AllocMulti(uint32_t n) override;
  Status Lock(BlockNo bno, Port owner) override;
  Status Unlock(BlockNo bno, Port owner) override;
  Result<std::vector<BlockNo>> ListBlocks() override;
  uint32_t payload_capacity() const override { return payload_capacity_; }

  // Number of blocks currently allocated (GC tests assert exact reclamation).
  size_t allocated_blocks() const;
  uint64_t total_writes() const { return writes_->value(); }
  uint64_t total_reads() const { return reads_->value(); }
  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }

  // Simulated per-operation I/O latency, slept OUTSIDE the internal mutex so that
  // concurrent operations overlap — this is how benchmarks model the disk-bound servers
  // of the paper's era (DESIGN.md substitution table). Zero (the default) disables it.
  // A thin wrapper over the unified SimulatedLatency knob in src/disk/block_device.h.
  void set_op_latency(std::chrono::microseconds latency) { latency_.set_sleep(latency); }
  SimulatedLatency& latency() { return latency_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<BlockNo, std::vector<uint8_t>> blocks;
    std::unordered_map<BlockNo, Port> locks;
  };
  Shard& ShardFor(BlockNo bno) { return shards_[bno & shard_mask_]; }
  const Shard& ShardFor(BlockNo bno) const { return shards_[bno & shard_mask_]; }
  // Claim one fresh block number and install `payload` under its shard lock.
  Result<BlockNo> AllocOne(std::span<const uint8_t> payload);

  const uint32_t payload_capacity_;
  const uint32_t num_blocks_;
  SimulatedLatency latency_;
  std::vector<Shard> shards_;
  uint32_t shard_mask_ = 0;
  std::atomic<BlockNo> next_{0};
  std::atomic<size_t> allocated_{0};
  obs::MetricRegistry metrics_{"blockstore"};
  obs::Counter* reads_ = metrics_.counter("store.read");
  obs::Counter* writes_ = metrics_.counter("store.write");
  obs::Counter* frees_ = metrics_.counter("store.free");
  obs::Counter* lock_contended_ = metrics_.counter("store.lock_contended");
  obs::Counter* batch_reads_ = metrics_.counter("store.batch_read");
  obs::Counter* batch_writes_ = metrics_.counter("store.batch_write");
};

}  // namespace afs

#endif  // SRC_BLOCK_BLOCK_STORE_H_
