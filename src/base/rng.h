// Deterministic pseudo-random source. Tests and benchmarks seed it explicitly so every run is
// reproducible; services use it for capability secrets, port numbers, and retry jitter
// (the paper's collision handling: "redo the operation after a random wait interval").

#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cstdint>

namespace afs {

// xoshiro256** — fast, high-quality, and trivially seedable. Not thread-safe; each thread or
// service owns its own instance.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

 private:
  uint64_t s_[4];
};

}  // namespace afs

#endif  // SRC_BASE_RNG_H_
