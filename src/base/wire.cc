#include "src/base/wire.h"

namespace afs {

void WireEncoder::PutLittleEndian(uint64_t v, int nbytes) {
  for (int i = 0; i < nbytes; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void WireEncoder::PutBytes(std::span<const uint8_t> bytes) {
  PutU32(static_cast<uint32_t>(bytes.size()));
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void WireEncoder::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireEncoder::PutRaw(std::span<const uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void WireEncoder::PutCapability(const Capability& cap) {
  PutU64(cap.port);
  PutU64(cap.object);
  PutU32(cap.rights);
  PutU64(cap.check);
}

Result<uint64_t> WireDecoder::GetLittleEndian(int nbytes) {
  if (remaining() < static_cast<size_t>(nbytes)) {
    return CorruptError("wire decode past end of buffer");
  }
  uint64_t v = 0;
  for (int i = 0; i < nbytes; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += nbytes;
  return v;
}

Result<uint8_t> WireDecoder::GetU8() {
  ASSIGN_OR_RETURN(uint64_t v, GetLittleEndian(1));
  return static_cast<uint8_t>(v);
}

Result<uint16_t> WireDecoder::GetU16() {
  ASSIGN_OR_RETURN(uint64_t v, GetLittleEndian(2));
  return static_cast<uint16_t>(v);
}

Result<uint32_t> WireDecoder::GetU32() {
  ASSIGN_OR_RETURN(uint64_t v, GetLittleEndian(4));
  return static_cast<uint32_t>(v);
}

Result<uint64_t> WireDecoder::GetU64() { return GetLittleEndian(8); }

Result<std::vector<uint8_t>> WireDecoder::GetBytes() {
  ASSIGN_OR_RETURN(uint32_t n, GetU32());
  return GetRaw(n);
}

Result<std::string> WireDecoder::GetString() {
  ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, GetBytes());
  return std::string(bytes.begin(), bytes.end());
}

Result<std::vector<uint8_t>> WireDecoder::GetRaw(size_t n) {
  if (remaining() < n) {
    return CorruptError("wire decode past end of buffer");
  }
  std::vector<uint8_t> out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

Result<Capability> WireDecoder::GetCapability() {
  Capability cap;
  ASSIGN_OR_RETURN(cap.port, GetU64());
  ASSIGN_OR_RETURN(cap.object, GetU64());
  ASSIGN_OR_RETURN(cap.rights, GetU32());
  ASSIGN_OR_RETURN(cap.check, GetU64());
  return cap;
}

}  // namespace afs
