#include "src/base/status.h"

namespace afs {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kBadCapability:
      return "BAD_CAPABILITY";
    case ErrorCode::kConflict:
      return "CONFLICT";
    case ErrorCode::kLocked:
      return "LOCKED";
    case ErrorCode::kNoSpace:
      return "NO_SPACE";
    case ErrorCode::kCorrupt:
      return "CORRUPT";
    case ErrorCode::kCrashed:
      return "CRASHED";
    case ErrorCode::kTimeout:
      return "TIMEOUT";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kReadOnly:
      return "READ_ONLY";
    case ErrorCode::kAborted:
      return "ABORTED";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status OkStatus() { return Status(); }
Status InvalidArgumentError(std::string m) {
  return Status(ErrorCode::kInvalidArgument, std::move(m));
}
Status NotFoundError(std::string m) { return Status(ErrorCode::kNotFound, std::move(m)); }
Status AlreadyExistsError(std::string m) {
  return Status(ErrorCode::kAlreadyExists, std::move(m));
}
Status BadCapabilityError(std::string m) {
  return Status(ErrorCode::kBadCapability, std::move(m));
}
Status ConflictError(std::string m) { return Status(ErrorCode::kConflict, std::move(m)); }
Status LockedError(std::string m) { return Status(ErrorCode::kLocked, std::move(m)); }
Status NoSpaceError(std::string m) { return Status(ErrorCode::kNoSpace, std::move(m)); }
Status CorruptError(std::string m) { return Status(ErrorCode::kCorrupt, std::move(m)); }
Status CrashedError(std::string m) { return Status(ErrorCode::kCrashed, std::move(m)); }
Status TimeoutError(std::string m) { return Status(ErrorCode::kTimeout, std::move(m)); }
Status UnavailableError(std::string m) { return Status(ErrorCode::kUnavailable, std::move(m)); }
Status ReadOnlyError(std::string m) { return Status(ErrorCode::kReadOnly, std::move(m)); }
Status AbortedError(std::string m) { return Status(ErrorCode::kAborted, std::move(m)); }
Status InternalError(std::string m) { return Status(ErrorCode::kInternal, std::move(m)); }

}  // namespace afs
