// Wire format for AFS messages and on-disk structures.
//
// Everything that crosses a port (requests, replies) or is stored in a block (page headers,
// reference tables) is encoded with these helpers. The format is little-endian, explicitly
// sized, and self-delimiting for variable-length fields (u32 length prefix), matching the
// Amoeba convention of fixed request/reply headers plus a data buffer.

#ifndef SRC_BASE_WIRE_H_
#define SRC_BASE_WIRE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/capability.h"
#include "src/base/status.h"

namespace afs {

// Append-only encoder.
class WireEncoder {
 public:
  WireEncoder() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutLittleEndian(v, 2); }
  void PutU32(uint32_t v) { PutLittleEndian(v, 4); }
  void PutU64(uint64_t v) { PutLittleEndian(v, 8); }

  // Length-prefixed byte string.
  void PutBytes(std::span<const uint8_t> bytes);
  void PutString(std::string_view s);

  // Fixed-size raw bytes (no length prefix); reader must know the size.
  void PutRaw(std::span<const uint8_t> bytes);

  void PutCapability(const Capability& cap);

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Take() && { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void PutLittleEndian(uint64_t v, int nbytes);

  std::vector<uint8_t> buf_;
};

// Bounds-checked decoder. Every getter fails cleanly (never reads out of bounds) so a
// corrupt block or malicious message cannot crash a server. The decoder either borrows the
// buffer (span constructor — caller keeps it alive) or owns it (vector constructor — used
// for RPC replies). Move-only when owning; the span stays valid across moves because vector
// move transfers the heap buffer.
class WireDecoder {
 public:
  explicit WireDecoder(std::span<const uint8_t> data) : data_(data) {}
  explicit WireDecoder(std::vector<uint8_t> owned)
      : owned_(std::move(owned)), data_(owned_) {}

  WireDecoder(WireDecoder&&) = default;
  WireDecoder& operator=(WireDecoder&&) = default;
  WireDecoder(const WireDecoder&) = delete;
  WireDecoder& operator=(const WireDecoder&) = delete;

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<std::vector<uint8_t>> GetBytes();
  Result<std::string> GetString();
  Result<std::vector<uint8_t>> GetRaw(size_t n);
  Result<Capability> GetCapability();

  // All input consumed?
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Result<uint64_t> GetLittleEndian(int nbytes);

  std::vector<uint8_t> owned_;
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace afs

#endif  // SRC_BASE_WIRE_H_
