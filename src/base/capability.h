// Amoeba-style ports and capabilities (paper §2, [Mullender85b]).
//
// Every service in Amoeba listens on a *port*; every object a service manages is named by a
// *capability*: {port, object number, rights, check}. The check field is a keyed one-way
// function of (object, rights) under a secret known only to the managing service, so clients
// cannot forge capabilities or amplify rights. The AFS uses capabilities to name files and
// versions ("Files are accessed by their file capability, versions by their version
// capability"), and block-server accounts.

#ifndef SRC_BASE_CAPABILITY_H_
#define SRC_BASE_CAPABILITY_H_

#include <cstdint>
#include <string>

#include "src/base/status.h"

namespace afs {

// A port names a service (or a transaction, for the lock-of-ports mechanism in §5.3).
// Port 0 is the distinguished null port.
using Port = uint64_t;
inline constexpr Port kNullPort = 0;

// Rights bits. A capability grants the union of the bits set in `rights`.
struct Rights {
  static constexpr uint32_t kRead = 1u << 0;
  static constexpr uint32_t kWrite = 1u << 1;
  static constexpr uint32_t kCreate = 1u << 2;   // create versions / allocate blocks
  static constexpr uint32_t kDestroy = 1u << 3;  // delete file / free blocks
  static constexpr uint32_t kAdmin = 1u << 4;    // recovery operations
  static constexpr uint32_t kAll = kRead | kWrite | kCreate | kDestroy | kAdmin;
};

// A capability is a plain value: it travels in messages and can be stored in directories and
// page headers. Equality is field-wise.
struct Capability {
  Port port = kNullPort;     // the managing service
  uint64_t object = 0;       // object number within the service
  uint32_t rights = 0;       // rights mask
  uint64_t check = 0;        // keyed check field

  bool IsNull() const { return port == kNullPort && object == 0 && check == 0; }

  bool operator==(const Capability& other) const {
    return port == other.port && object == other.object && rights == other.rights &&
           check == other.check;
  }
  bool operator!=(const Capability& other) const { return !(*this == other); }

  // "port:object:rights" for logs.
  std::string ToString() const;
};

// Issues and verifies capabilities for one service. The signer's secret never leaves the
// service; restrictions (rights subsets) are re-signed by the service on request.
class CapabilitySigner {
 public:
  // The secret should come from Rng::NextU64() at service start; deterministic tests may pass
  // a fixed value.
  explicit CapabilitySigner(Port service_port, uint64_t secret)
      : service_port_(service_port), secret_(secret) {}

  // Mint a capability for `object` granting `rights`.
  Capability Sign(uint64_t object, uint32_t rights) const;

  // Verify integrity and that every bit of `required_rights` is granted.
  Status Verify(const Capability& cap, uint32_t required_rights) const;

  // Like Verify but ignores the capability's port field. Used by service *groups* (several
  // file servers sharing one secret): the port field is then a routing hint naming the
  // managing server, not part of the signature.
  Status VerifyObject(const Capability& cap, uint32_t required_rights) const;

  // Produce a capability for the same object with a subset of the rights. Fails if
  // `new_rights` is not a subset or `cap` does not verify.
  Result<Capability> Restrict(const Capability& cap, uint32_t new_rights) const;

  Port service_port() const { return service_port_; }

 private:
  uint64_t Check(uint64_t object, uint32_t rights) const;

  Port service_port_;
  uint64_t secret_;
};

// 64-bit mix used for capability checks and content hashes (SplitMix64 finalizer).
uint64_t Mix64(uint64_t x);

}  // namespace afs

#endif  // SRC_BASE_CAPABILITY_H_
