#include "src/base/rng.h"

#include "src/base/capability.h"

namespace afs {
namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // SplitMix64 expansion of the seed into the four lanes, as recommended by the xoshiro
  // authors: guarantees a non-zero state for every seed.
  uint64_t x = seed;
  for (auto& lane : s_) {
    x += 0x9e3779b97f4a7c15ull;
    lane = Mix64(x);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) { return lo + NextBelow(hi - lo + 1); }

double Rng::NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

}  // namespace afs
