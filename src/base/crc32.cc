#include "src/base/crc32.h"

#include <array>

namespace afs {
namespace {

// Table-driven CRC-32C, reflected polynomial 0x82f63b78.
constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc & 1) ? (crc >> 1) ^ 0x82f63b78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xff];
  }
  return ~crc;
}

}  // namespace afs
