#include "src/base/capability.h"

#include <sstream>

namespace afs {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string Capability::ToString() const {
  std::ostringstream os;
  os << port << ":" << object << ":" << std::hex << rights;
  return os.str();
}

uint64_t CapabilitySigner::Check(uint64_t object, uint32_t rights) const {
  uint64_t h = secret_;
  h = Mix64(h ^ service_port_);
  h = Mix64(h ^ object);
  h = Mix64(h ^ rights);
  return h;
}

Capability CapabilitySigner::Sign(uint64_t object, uint32_t rights) const {
  Capability cap;
  cap.port = service_port_;
  cap.object = object;
  cap.rights = rights;
  cap.check = Check(object, rights);
  return cap;
}

Status CapabilitySigner::Verify(const Capability& cap, uint32_t required_rights) const {
  if (cap.port != service_port_) {
    return BadCapabilityError("capability for wrong service port");
  }
  return VerifyObject(cap, required_rights);
}

Status CapabilitySigner::VerifyObject(const Capability& cap, uint32_t required_rights) const {
  if (cap.check != Check(cap.object, cap.rights)) {
    return BadCapabilityError("capability check field does not verify");
  }
  if ((cap.rights & required_rights) != required_rights) {
    return BadCapabilityError("capability lacks required rights");
  }
  return OkStatus();
}

Result<Capability> CapabilitySigner::Restrict(const Capability& cap, uint32_t new_rights) const {
  RETURN_IF_ERROR(Verify(cap, 0));
  if ((new_rights & cap.rights) != new_rights) {
    return BadCapabilityError("restriction would amplify rights");
  }
  return Sign(cap.object, new_rights);
}

}  // namespace afs
