// CRC-32C (Castagnoli) used by the disk layer to detect block corruption (paper §4: a block
// server consults its companion "when the block on its disk is corrupted" — something must
// detect the corruption first).

#ifndef SRC_BASE_CRC32_H_
#define SRC_BASE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace afs {

// CRC-32C of `data[0..len)`. `seed` allows incremental computation: pass a previous result.
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

}  // namespace afs

#endif  // SRC_BASE_CRC32_H_
