// Status and Result<T>: error handling used across every AFS module.
//
// AFS never throws across API boundaries. Every fallible operation returns either a
// `Status` (no payload) or a `Result<T>` (payload or error), in the style of
// absl::Status/StatusOr. Error codes mirror the failure classes the paper's protocols
// distinguish: serialisability conflicts, locks, crashed servers, corrupt blocks, etc.

#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace afs {

// Failure classes. Values are part of the wire format (replies carry them), so they are
// explicitly numbered and must not be reordered.
enum class ErrorCode : uint32_t {
  kOk = 0,
  kInvalidArgument = 1,   // malformed request, bad path name, oversized page
  kNotFound = 2,          // no such file / version / block / directory entry
  kAlreadyExists = 3,     // duplicate create
  kBadCapability = 4,     // capability check field does not verify, or rights missing
  kConflict = 5,          // serialisability conflict: client must redo the update
  kLocked = 6,            // top/inner lock or block lock held by another transaction
  kNoSpace = 7,           // disk or account out of blocks
  kCorrupt = 8,           // CRC mismatch on a block, or unparsable page
  kCrashed = 9,           // the server (or its port) died while the request was outstanding
  kTimeout = 10,          // transaction timed out
  kUnavailable = 11,      // server administratively offline / partitioned
  kReadOnly = 12,         // write to write-once (optical) medium, or to a committed version
  kAborted = 13,          // version was aborted / removed under the caller
  kInternal = 14,         // invariant violation; always a bug
};

// Human-readable name of an error code, e.g. "CONFLICT".
std::string_view ErrorCodeName(ErrorCode code);

// A Status is an ErrorCode plus an optional human-readable message. Ok statuses carry no
// message and are cheap to copy.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}
  explicit Status(ErrorCode code) : code_(code) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "CONFLICT: version superseded" or "OK".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.ToString(); }

// Convenience constructors, one per error class.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status BadCapabilityError(std::string message);
Status ConflictError(std::string message);
Status LockedError(std::string message);
Status NoSpaceError(std::string message);
Status CorruptError(std::string message);
Status CrashedError(std::string message);
Status TimeoutError(std::string message);
Status UnavailableError(std::string message);
Status ReadOnlyError(std::string message);
Status AbortedError(std::string message);
Status InternalError(std::string message);

// Result<T>: either a value or a non-ok Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from values and from error statuses keeps call sites terse:
  //   Result<int> F() { if (bad) return InvalidArgumentError("..."); return 7; }
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (std::get<Status>(rep_).ok()) {
      // A Result constructed from a status must carry an error; an ok status here is a bug.
      rep_ = Status(ErrorCode::kInternal, "Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  T& value() & { return std::get<T>(rep_); }
  const T& value() const& { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

// RETURN_IF_ERROR(expr): propagate a non-ok Status.
#define RETURN_IF_ERROR(expr)             \
  do {                                    \
    ::afs::Status _st = (expr);           \
    if (!_st.ok()) {                      \
      return _st;                         \
    }                                     \
  } while (0)

// ASSIGN_OR_RETURN(lhs, expr): evaluate a Result-returning expression, propagate errors,
// otherwise bind the value. `lhs` may declare a new variable.
#define AFS_CONCAT_INNER(a, b) a##b
#define AFS_CONCAT(a, b) AFS_CONCAT_INNER(a, b)
#define ASSIGN_OR_RETURN(lhs, expr)                   \
  auto AFS_CONCAT(_res_, __LINE__) = (expr);          \
  if (!AFS_CONCAT(_res_, __LINE__).ok()) {            \
    return AFS_CONCAT(_res_, __LINE__).status();      \
  }                                                   \
  lhs = std::move(AFS_CONCAT(_res_, __LINE__)).value()

}  // namespace afs

#endif  // SRC_BASE_STATUS_H_
