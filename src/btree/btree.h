// BTreeClient: an ordered key-value map stored in an AFS page tree — the paper's claim
// made executable: "Using the file structure provided by the Amoeba File Service, objects
// ranging from linear files to B-trees can easily be represented" (§5).
//
// Layout: every page is one B+-tree node. Leaf pages hold sorted (key, value) pairs in
// their data and no references; internal pages hold the separator keys in their data and
// their children in the reference table (children = separators + 1). The root node is the
// file's root page, so the tree grows by *pushing the root's contents down* into two new
// children. Every mutation is one atomic AFS transaction: structural node splits are
// ordinary InsertRef/WritePage calls, and concurrent updates of *different* leaves commit
// concurrently under the optimistic machinery, while updates that split the same node
// conflict and redo — the database-workload story of §2 in miniature.

#ifndef SRC_BTREE_BTREE_H_
#define SRC_BTREE_BTREE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/client/file_client.h"

namespace afs {

class BTreeClient {
 public:
  // Maximum (key, value) pairs per leaf and separators per internal node before a split.
  static constexpr size_t kMaxLeafEntries = 16;
  static constexpr size_t kMaxSeparators = 16;

  explicit BTreeClient(FileClient* files) : files_(files) {}

  // Create an empty tree (one empty leaf as the root).
  Result<Capability> Create();

  // Insert or overwrite.
  Status Put(const Capability& tree, const std::string& key, const std::string& value);

  // Point lookup against the current committed state.
  Result<std::optional<std::string>> Get(const Capability& tree, const std::string& key);

  // Remove a key (no rebalancing: underfull nodes are tolerated, as in many production
  // B-trees; space comes back when a later split rewrites the region).
  Status Delete(const Capability& tree, const std::string& key);

  // All pairs with first <= key <= last, in order.
  Result<std::vector<std::pair<std::string, std::string>>> Scan(const Capability& tree,
                                                                const std::string& first,
                                                                const std::string& last);

  // Number of keys (full walk).
  Result<size_t> Size(const Capability& tree);

  // Structural self-check of the committed tree: sorted nodes, separator sanity,
  // children counts. Returns the tree depth.
  Result<int> Validate(const Capability& tree);

 private:
  struct Node {
    bool leaf = true;
    std::vector<std::string> keys;    // leaf: keys; internal: separators
    std::vector<std::string> values;  // leaf only, parallel to keys
    uint32_t nchildren = 0;           // internal only (from the page's reference table)
  };

  static std::vector<uint8_t> EncodeNode(const Node& node);
  static Result<Node> DecodeNode(std::span<const uint8_t> data);

  // Read + decode the node at `path` in `version`.
  Result<Node> Load(FileClient& c, const Capability& version, const PagePath& path);
  // Encode + write the node at `path`.
  Status Store(FileClient& c, const Capability& version, const PagePath& path,
               const Node& node);

  // Split the (full) child at `parent_path`/`child_index`: a new right sibling is inserted
  // at child_index + 1, the separator is hoisted into *parent, and for internal children
  // the tail grandchildren are moved across with MoveSubtree. Preemptive top-down
  // splitting keeps insertion a single downward pass.
  Status SplitChild(FileClient& c, const Capability& v, const PagePath& parent_path,
                    Node* parent, size_t child_index);

  Status ScanRec(FileClient& c, const Capability& version, const PagePath& path,
                 const std::string& first, const std::string& last,
                 std::vector<std::pair<std::string, std::string>>* out);

  Result<int> ValidateRec(FileClient& c, const Capability& version, const PagePath& path,
                          const std::string* lower, const std::string* upper);

  FileClient* files_;
};

}  // namespace afs

#endif  // SRC_BTREE_BTREE_H_
