#include "src/btree/btree.h"

#include <algorithm>

#include "src/base/wire.h"
#include "src/client/transaction.h"

namespace afs {
namespace {

constexpr uint8_t kLeafTag = 1;
constexpr uint8_t kInternalTag = 2;

// Child index for `key` among separators: child i covers keys < separators[i]; the last
// child covers the rest.
size_t ChildIndexFor(const std::vector<std::string>& separators, const std::string& key) {
  return static_cast<size_t>(
      std::upper_bound(separators.begin(), separators.end(), key) - separators.begin());
}

}  // namespace

std::vector<uint8_t> BTreeClient::EncodeNode(const Node& node) {
  WireEncoder enc;
  enc.PutU8(node.leaf ? kLeafTag : kInternalTag);
  enc.PutU16(static_cast<uint16_t>(node.keys.size()));
  for (size_t i = 0; i < node.keys.size(); ++i) {
    enc.PutString(node.keys[i]);
    if (node.leaf) {
      enc.PutString(node.values[i]);
    }
  }
  return std::move(enc).Take();
}

Result<BTreeClient::Node> BTreeClient::DecodeNode(std::span<const uint8_t> data) {
  WireDecoder dec(data);
  Node node;
  ASSIGN_OR_RETURN(uint8_t tag, dec.GetU8());
  if (tag != kLeafTag && tag != kInternalTag) {
    return CorruptError("not a B-tree node");
  }
  node.leaf = tag == kLeafTag;
  ASSIGN_OR_RETURN(uint16_t n, dec.GetU16());
  for (uint16_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(std::string key, dec.GetString());
    node.keys.push_back(std::move(key));
    if (node.leaf) {
      ASSIGN_OR_RETURN(std::string value, dec.GetString());
      node.values.push_back(std::move(value));
    }
  }
  return node;
}

Result<BTreeClient::Node> BTreeClient::Load(FileClient& c, const Capability& version,
                                            const PagePath& path) {
  ASSIGN_OR_RETURN(FileClient::ReadResult page, c.ReadPage(version, path, /*want_refs=*/true));
  ASSIGN_OR_RETURN(Node node, DecodeNode(page.data));
  node.nchildren = page.nrefs;
  return node;
}

Status BTreeClient::Store(FileClient& c, const Capability& version, const PagePath& path,
                          const Node& node) {
  return c.WritePage(version, path, EncodeNode(node));
}

Result<Capability> BTreeClient::Create() {
  ASSIGN_OR_RETURN(Capability tree, files_->CreateFile());
  auto stats = RunTransaction(files_, tree, [](FileClient& c, const Capability& v) {
    Node empty;
    return c.WritePage(v, PagePath::Root(), EncodeNode(empty));
  });
  RETURN_IF_ERROR(stats.status());
  return tree;
}

Status BTreeClient::Put(const Capability& tree, const std::string& key,
                        const std::string& value) {
  auto stats = RunTransaction(
      files_, tree, [&](FileClient& c, const Capability& v) -> Status {
        // Preemptive top-down splitting: every full node on the way down is split before
        // it is entered, so insertion never overflows upward.
        ASSIGN_OR_RETURN(Node root, Load(c, v, PagePath::Root()));
        const bool root_full = root.leaf ? root.keys.size() >= kMaxLeafEntries
                                         : root.keys.size() >= kMaxSeparators;
        if (root_full) {
          // Push the root's contents down into a single child, then split that child.
          RETURN_IF_ERROR(c.InsertRef(v, PagePath::Root(), 0));
          RETURN_IF_ERROR(Store(c, v, PagePath({0}), root));
          // The root's former children (if any) now sit at indices 1..n; move them under
          // the new child, preserving order.
          for (uint32_t moved = 0; moved < root.nchildren; ++moved) {
            RETURN_IF_ERROR(c.MoveSubtree(v, PagePath({1}), PagePath({0}), moved));
          }
          Node new_root;
          new_root.leaf = false;
          RETURN_IF_ERROR(Store(c, v, PagePath::Root(), new_root));
          Node hoisted = new_root;
          hoisted.nchildren = 1;
          RETURN_IF_ERROR(SplitChild(c, v, PagePath::Root(), &hoisted, 0));
        }

        PagePath path = PagePath::Root();
        for (int depth = 0; depth < 64; ++depth) {
          ASSIGN_OR_RETURN(Node node, Load(c, v, path));
          if (node.leaf) {
            auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
            size_t index = static_cast<size_t>(it - node.keys.begin());
            if (it != node.keys.end() && *it == key) {
              node.values[index] = value;
            } else {
              node.keys.insert(it, key);
              node.values.insert(node.values.begin() + index, value);
            }
            return Store(c, v, path, node);
          }
          size_t child = ChildIndexFor(node.keys, key);
          PagePath child_path = path.Child(static_cast<uint32_t>(child));
          ASSIGN_OR_RETURN(Node child_node, Load(c, v, child_path));
          const bool child_full = child_node.leaf
                                      ? child_node.keys.size() >= kMaxLeafEntries
                                      : child_node.keys.size() >= kMaxSeparators;
          if (child_full) {
            RETURN_IF_ERROR(SplitChild(c, v, path, &node, child));
            if (key >= node.keys[child]) {
              ++child;
            }
            child_path = path.Child(static_cast<uint32_t>(child));
          }
          path = child_path;
        }
        return InternalError("B-tree deeper than 64 levels");
      });
  return stats.status();
}

Status BTreeClient::SplitChild(FileClient& c, const Capability& v, const PagePath& parent_path,
                               Node* parent, size_t child_index) {
  PagePath child_path = parent_path.Child(static_cast<uint32_t>(child_index));
  ASSIGN_OR_RETURN(Node child, Load(c, v, child_path));
  size_t mid = child.keys.size() / 2;

  Node left;
  Node right;
  std::string separator;
  left.leaf = right.leaf = child.leaf;
  if (child.leaf) {
    // B+-style leaf split: the separator is copied up, both halves keep their pairs.
    separator = child.keys[mid];
    left.keys.assign(child.keys.begin(), child.keys.begin() + mid);
    left.values.assign(child.values.begin(), child.values.begin() + mid);
    right.keys.assign(child.keys.begin() + mid, child.keys.end());
    right.values.assign(child.values.begin() + mid, child.values.end());
  } else {
    // Internal split: the middle separator moves up.
    separator = child.keys[mid];
    left.keys.assign(child.keys.begin(), child.keys.begin() + mid);
    right.keys.assign(child.keys.begin() + mid + 1, child.keys.end());
  }

  // Make room for the right sibling and write both halves.
  RETURN_IF_ERROR(c.InsertRef(v, parent_path, static_cast<uint32_t>(child_index) + 1));
  PagePath right_path = parent_path.Child(static_cast<uint32_t>(child_index) + 1);
  RETURN_IF_ERROR(Store(c, v, right_path, right));
  if (!child.leaf) {
    // Move the tail children (mid+1 .. n-1) under the right sibling, preserving order.
    uint32_t to_move = child.nchildren - static_cast<uint32_t>(mid) - 1;
    for (uint32_t moved = 0; moved < to_move; ++moved) {
      RETURN_IF_ERROR(c.MoveSubtree(v, child_path.Child(static_cast<uint32_t>(mid) + 1),
                                    right_path, moved));
    }
  }
  RETURN_IF_ERROR(Store(c, v, child_path, left));

  parent->keys.insert(parent->keys.begin() + child_index, separator);
  parent->nchildren += 1;
  return Store(c, v, parent_path, *parent);
}

Result<std::optional<std::string>> BTreeClient::Get(const Capability& tree,
                                                    const std::string& key) {
  ASSIGN_OR_RETURN(Capability current, files_->GetCurrentVersion(tree));
  PagePath path = PagePath::Root();
  for (int depth = 0; depth < 64; ++depth) {
    ASSIGN_OR_RETURN(Node node, Load(*files_, current, path));
    if (node.leaf) {
      auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
      if (it != node.keys.end() && *it == key) {
        return std::optional<std::string>(
            node.values[static_cast<size_t>(it - node.keys.begin())]);
      }
      return std::optional<std::string>();
    }
    path = path.Child(static_cast<uint32_t>(ChildIndexFor(node.keys, key)));
  }
  return InternalError("B-tree deeper than 64 levels");
}

Status BTreeClient::Delete(const Capability& tree, const std::string& key) {
  auto stats = RunTransaction(
      files_, tree, [&](FileClient& c, const Capability& v) -> Status {
        PagePath path = PagePath::Root();
        for (int depth = 0; depth < 64; ++depth) {
          ASSIGN_OR_RETURN(Node node, Load(c, v, path));
          if (node.leaf) {
            auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
            if (it == node.keys.end() || *it != key) {
              return NotFoundError("no such key: " + key);
            }
            size_t index = static_cast<size_t>(it - node.keys.begin());
            node.keys.erase(it);
            node.values.erase(node.values.begin() + index);
            return Store(c, v, path, node);
          }
          path = path.Child(static_cast<uint32_t>(ChildIndexFor(node.keys, key)));
        }
        return InternalError("B-tree deeper than 64 levels");
      });
  return stats.status();
}

Status BTreeClient::ScanRec(FileClient& c, const Capability& version, const PagePath& path,
                            const std::string& first, const std::string& last,
                            std::vector<std::pair<std::string, std::string>>* out) {
  ASSIGN_OR_RETURN(Node node, Load(c, version, path));
  if (node.leaf) {
    for (size_t i = 0; i < node.keys.size(); ++i) {
      if (node.keys[i] >= first && node.keys[i] <= last) {
        out->emplace_back(node.keys[i], node.values[i]);
      }
    }
    return OkStatus();
  }
  // Visit only children whose range intersects [first, last].
  size_t from = ChildIndexFor(node.keys, first);
  size_t to = ChildIndexFor(node.keys, last);
  for (size_t child = from; child <= to && child < node.nchildren; ++child) {
    RETURN_IF_ERROR(ScanRec(c, version, path.Child(static_cast<uint32_t>(child)), first, last,
                            out));
  }
  return OkStatus();
}

Result<std::vector<std::pair<std::string, std::string>>> BTreeClient::Scan(
    const Capability& tree, const std::string& first, const std::string& last) {
  ASSIGN_OR_RETURN(Capability current, files_->GetCurrentVersion(tree));
  std::vector<std::pair<std::string, std::string>> out;
  RETURN_IF_ERROR(ScanRec(*files_, current, PagePath::Root(), first, last, &out));
  return out;
}

Result<size_t> BTreeClient::Size(const Capability& tree) {
  ASSIGN_OR_RETURN(auto all, Scan(tree, std::string(1, '\0'), std::string(64, '\x7f')));
  return all.size();
}

Result<int> BTreeClient::ValidateRec(FileClient& c, const Capability& version,
                                     const PagePath& path, const std::string* lower,
                                     const std::string* upper) {
  ASSIGN_OR_RETURN(Node node, Load(c, version, path));
  if (!std::is_sorted(node.keys.begin(), node.keys.end())) {
    return CorruptError("unsorted node at " + path.ToString());
  }
  for (const std::string& key : node.keys) {
    if ((lower != nullptr && key < *lower) || (upper != nullptr && key > *upper)) {
      return CorruptError("key outside separator range at " + path.ToString());
    }
  }
  if (node.leaf) {
    if (node.nchildren != 0) {
      return CorruptError("leaf with children at " + path.ToString());
    }
    return 1;
  }
  if (node.nchildren != node.keys.size() + 1) {
    return CorruptError("internal node child/separator mismatch at " + path.ToString());
  }
  int depth = -1;
  for (size_t child = 0; child < node.nchildren; ++child) {
    const std::string* child_lower = child == 0 ? lower : &node.keys[child - 1];
    const std::string* child_upper = child == node.keys.size() ? upper : &node.keys[child];
    ASSIGN_OR_RETURN(int child_depth,
                     ValidateRec(c, version, path.Child(static_cast<uint32_t>(child)),
                                 child_lower, child_upper));
    if (depth == -1) {
      depth = child_depth;
    } else if (depth != child_depth) {
      return CorruptError("uneven leaf depth under " + path.ToString());
    }
  }
  return depth + 1;
}

Result<int> BTreeClient::Validate(const Capability& tree) {
  ASSIGN_OR_RETURN(Capability current, files_->GetCurrentVersion(tree));
  return ValidateRec(*files_, current, PagePath::Root(), nullptr, nullptr);
}

}  // namespace afs
