#include "src/disk/mem_disk.h"

#include <cstring>

#include "src/obs/trace.h"

namespace afs {

MemDisk::MemDisk(uint32_t block_size, uint32_t num_blocks)
    : block_size_(block_size),
      num_blocks_(num_blocks),
      data_(static_cast<size_t>(block_size) * num_blocks, 0),
      written_(num_blocks, false) {
  latency_.BindMetrics(metrics_.counter("disk.charged_ops"),
                       metrics_.histogram("disk.charged_ns"));
}

DiskGeometry MemDisk::geometry() const { return {block_size_, num_blocks_}; }

Status MemDisk::CheckAccess(BlockNo bno, size_t len, size_t expected_len) const {
  if (offline_) {
    return UnavailableError("disk offline");
  }
  if (bno >= num_blocks_) {
    return InvalidArgumentError("block number out of range");
  }
  if (len != expected_len) {
    return InvalidArgumentError("buffer size != block size");
  }
  return OkStatus();
}

Status MemDisk::Read(BlockNo bno, std::span<uint8_t> out) {
  std::lock_guard<std::mutex> lock(mu_);
  RETURN_IF_ERROR(CheckAccess(bno, out.size(), block_size_));
  latency_.Charge();
  std::memcpy(out.data(), data_.data() + static_cast<size_t>(bno) * block_size_, block_size_);
  reads_->Inc();
  obs::Trace(obs::TraceEvent::kDiskRead, bno);
  return OkStatus();
}

Status MemDisk::Write(BlockNo bno, std::span<const uint8_t> data) {
  std::lock_guard<std::mutex> lock(mu_);
  RETURN_IF_ERROR(CheckAccess(bno, data.size(), block_size_));
  latency_.Charge();
  std::memcpy(data_.data() + static_cast<size_t>(bno) * block_size_, data.data(), block_size_);
  written_[bno] = true;
  writes_->Inc();
  obs::Trace(obs::TraceEvent::kDiskWrite, bno);
  return OkStatus();
}

void MemDisk::CorruptBlock(BlockNo bno) {
  std::lock_guard<std::mutex> lock(mu_);
  if (bno < num_blocks_) {
    data_[static_cast<size_t>(bno) * block_size_] ^= 0xff;
  }
}

void MemDisk::SetOffline(bool offline) {
  std::lock_guard<std::mutex> lock(mu_);
  offline_ = offline;
}

void MemDisk::WipeClean() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(data_.begin(), data_.end(), 0);
  std::fill(written_.begin(), written_.end(), false);
}

}  // namespace afs
