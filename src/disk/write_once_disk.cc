#include "src/disk/write_once_disk.h"

namespace afs {

WriteOnceDisk::WriteOnceDisk(uint32_t block_size, uint32_t num_blocks)
    : inner_(block_size, num_blocks), burned_(num_blocks, false) {}

DiskGeometry WriteOnceDisk::geometry() const { return inner_.geometry(); }

Status WriteOnceDisk::Read(BlockNo bno, std::span<uint8_t> out) { return inner_.Read(bno, out); }

Status WriteOnceDisk::Write(BlockNo bno, std::span<const uint8_t> data) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (bno < burned_.size() && burned_[bno]) {
      burn_rejected_->Inc();
      return ReadOnlyError("write-once block already burned");
    }
  }
  RETURN_IF_ERROR(inner_.Write(bno, data));
  std::lock_guard<std::mutex> lock(mu_);
  burned_[bno] = true;
  return OkStatus();
}

bool WriteOnceDisk::IsBurned(BlockNo bno) const {
  std::lock_guard<std::mutex> lock(mu_);
  return bno < burned_.size() && burned_[bno];
}

}  // namespace afs
