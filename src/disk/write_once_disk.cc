#include "src/disk/write_once_disk.h"

#include <algorithm>
#include <cstring>

#include "src/base/crc32.h"

namespace afs {

namespace {

// Bitmap directory block layout: u32 magic | u32 index | u32 crc | u32 nbytes | bytes.
// crc covers the payload bytes. A block whose header does not parse (fresh medium, or a
// crash before the first persist) loads as all-unburned for its bit range.
constexpr uint32_t kBitmapMagic = 0x414f4e43;  // "AONC": AFS Optical Nonvolatile Chart
constexpr uint32_t kBitmapHeaderBytes = 16;

void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

uint32_t WriteOnceDisk::BitmapBlocksFor(uint32_t block_size, uint64_t usable) {
  const uint64_t capacity = block_size > kBitmapHeaderBytes ? block_size - kBitmapHeaderBytes : 1;
  const uint64_t bytes = (usable + 7) / 8;
  const uint64_t blocks = (bytes + capacity - 1) / capacity;
  return static_cast<uint32_t>(blocks < 1 ? 1 : blocks);
}

WriteOnceDisk::WriteOnceDisk(uint32_t block_size, uint32_t num_blocks)
    : owned_(std::make_unique<MemDisk>(block_size,
                                       num_blocks + BitmapBlocksFor(block_size, num_blocks))),
      inner_(owned_.get()),
      block_size_(block_size),
      usable_(num_blocks),
      reserved_(BitmapBlocksFor(block_size, num_blocks)),
      burned_(num_blocks, false) {
  // A fresh MemDisk is all zeros; LoadBitmap would find no directory. Skip it.
}

WriteOnceDisk::WriteOnceDisk(BlockDevice* inner) : inner_(inner) {
  const DiskGeometry g = inner_->geometry();
  block_size_ = g.block_size;
  // Solve for the smallest directory that covers the rest of the device: with R reserved
  // blocks the usable region is num_blocks - R, and R must hold its bits.
  uint32_t reserved = 1;
  while (reserved < g.num_blocks &&
         BitmapBlocksFor(block_size_, g.num_blocks - reserved) > reserved) {
    ++reserved;
  }
  reserved_ = reserved;
  usable_ = g.num_blocks > reserved_ ? g.num_blocks - reserved_ : 0;
  burned_.assign(usable_, false);
  LoadBitmap();
}

void WriteOnceDisk::LoadBitmap() {
  std::vector<uint8_t> buf(block_size_);
  const uint32_t capacity = block_size_ - kBitmapHeaderBytes;
  for (uint32_t index = 0; index < reserved_; ++index) {
    if (!inner_->Read(index, buf).ok()) {
      continue;  // never written (durable devices report this as corrupt) — all unburned
    }
    if (GetU32(buf.data()) != kBitmapMagic || GetU32(buf.data() + 4) != index) {
      continue;
    }
    const uint32_t nbytes = GetU32(buf.data() + 12);
    if (nbytes > capacity ||
        GetU32(buf.data() + 8) != Crc32c(buf.data() + kBitmapHeaderBytes, nbytes)) {
      continue;
    }
    const uint64_t first_bit = static_cast<uint64_t>(index) * capacity * 8;
    for (uint32_t byte = 0; byte < nbytes; ++byte) {
      const uint8_t bits = buf[kBitmapHeaderBytes + byte];
      if (bits == 0) {
        continue;
      }
      for (uint32_t bit = 0; bit < 8; ++bit) {
        const uint64_t bno = first_bit + byte * 8 + bit;
        if ((bits & (1u << bit)) != 0 && bno < usable_) {
          burned_[bno] = true;
          ++burned_count_;
        }
      }
    }
  }
}

Status WriteOnceDisk::PersistBitmapBlockFor(BlockNo bno) {
  const uint32_t capacity = block_size_ - kBitmapHeaderBytes;
  const uint32_t index = bno / (capacity * 8);
  const uint64_t first_bit = static_cast<uint64_t>(index) * capacity * 8;
  const uint32_t nbytes = static_cast<uint32_t>(
      std::min<uint64_t>(capacity, (static_cast<uint64_t>(usable_) - first_bit + 7) / 8));
  std::vector<uint8_t> buf(block_size_, 0);
  for (uint32_t byte = 0; byte < nbytes; ++byte) {
    uint8_t bits = 0;
    for (uint32_t bit = 0; bit < 8; ++bit) {
      const uint64_t b = first_bit + byte * 8 + bit;
      if (b < usable_ && burned_[b]) {
        bits |= static_cast<uint8_t>(1u << bit);
      }
    }
    buf[kBitmapHeaderBytes + byte] = bits;
  }
  PutU32(buf.data(), kBitmapMagic);
  PutU32(buf.data() + 4, index);
  PutU32(buf.data() + 8, Crc32c(buf.data() + kBitmapHeaderBytes, nbytes));
  PutU32(buf.data() + 12, nbytes);
  return inner_->Write(index, buf);
}

DiskGeometry WriteOnceDisk::geometry() const { return DiskGeometry{block_size_, usable_}; }

Status WriteOnceDisk::Read(BlockNo bno, std::span<uint8_t> out) {
  if (bno >= usable_) {
    return InvalidArgumentError("write-once block out of range");
  }
  return inner_->Read(bno + reserved_, out);
}

Status WriteOnceDisk::Write(BlockNo bno, std::span<const uint8_t> data) {
  if (bno >= usable_) {
    return InvalidArgumentError("write-once block out of range");
  }
  latency_.Charge();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (burned_[bno]) {
      burn_rejected_->Inc();
      return ReadOnlyError("write-once block already burned");
    }
    // Mark-then-burn: persist the bit BEFORE the data so a crash can never leave written
    // data behind a clear bit (which would let a later write violate write-once). A crash
    // between the two leaves a dead block: bit set, data never written.
    burned_[bno] = true;
    Status st = PersistBitmapBlockFor(bno);
    if (!st.ok()) {
      // Clean failure (device offline/full): nothing durable changed, so un-mark.
      burned_[bno] = false;
      return st;
    }
    ++burned_count_;
  }
  Status st = inner_->Write(bno + reserved_, data);
  if (st.ok()) {
    burns_->Inc();
  }
  // On data-write failure the bit stays set: the medium's state is unknown, and write-once
  // safety requires never re-burning a block that may hold data. The block is dead.
  return st;
}

bool WriteOnceDisk::IsBurned(BlockNo bno) const {
  std::lock_guard<std::mutex> lock(mu_);
  return bno < burned_.size() && burned_[bno];
}

uint64_t WriteOnceDisk::burned_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return burned_count_;
}

}  // namespace afs
