// MemDisk: RAM-backed block device with fault injection.
//
// Stands in for the paper's physical disks (DESIGN.md substitution table). Writes are
// atomic per block (an internal mutex orders them and a write is either entirely stored or,
// if the device is taken offline first, not at all — there is no torn-write state, matching
// the §4 contract). Fault hooks drive every recovery path in the paper:
//   * CorruptBlock(): flips bytes so the next read returns kCorrupt via the block server's
//     checksum, exercising "consult the companion when the block is corrupted".
//   * SetOffline(): the disk becomes inaccessible, exercising crash / fail-over paths.
//   * set_latency_ops(): charges a busy-loop per operation so benchmarks can model slow
//     magnetic vs fast electronic disks without wall-clock sleeps.

#ifndef SRC_DISK_MEM_DISK_H_
#define SRC_DISK_MEM_DISK_H_

#include <mutex>
#include <vector>

#include "src/disk/block_device.h"
#include "src/obs/metrics.h"

namespace afs {

class MemDisk : public BlockDevice {
 public:
  MemDisk(uint32_t block_size, uint32_t num_blocks);

  DiskGeometry geometry() const override;
  Status Read(BlockNo bno, std::span<uint8_t> out) override;
  Status Write(BlockNo bno, std::span<const uint8_t> data) override;

  uint64_t reads() const override { return reads_->value(); }
  uint64_t writes() const override { return writes_->value(); }

  // -- Fault injection ------------------------------------------------------

  // Damage the stored copy of `bno` (XORs a byte). Reads will still "succeed" at this layer;
  // integrity is the block server's job (its per-block checksum catches it).
  void CorruptBlock(BlockNo bno);

  // Take the device off line (media crash); all ops fail with kUnavailable until restored.
  void SetOffline(bool offline);

  // Erase everything, as if the medium were destroyed and replaced. Used by companion
  // recovery tests: the replacement disk is rebuilt from the companion server.
  void WipeClean();

  // Simulated per-operation cost in relative "ticks" (spun, not slept) — a thin wrapper
  // over the unified SimulatedLatency knob.
  void set_latency_ticks(uint32_t ticks) { latency_.set_spin_ticks(ticks); }
  SimulatedLatency& latency() { return latency_; }

 private:
  Status CheckAccess(BlockNo bno, size_t len, size_t expected_len) const;

  const uint32_t block_size_;
  const uint32_t num_blocks_;
  mutable std::mutex mu_;
  std::vector<uint8_t> data_;
  std::vector<bool> written_;
  bool offline_ = false;
  SimulatedLatency latency_;
  obs::MetricRegistry metrics_{"disk"};
  obs::Counter* reads_ = metrics_.counter("disk.read");
  obs::Counter* writes_ = metrics_.counter("disk.write");
};

}  // namespace afs

#endif  // SRC_DISK_MEM_DISK_H_
