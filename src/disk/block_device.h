// BlockDevice: the storage abstraction under the block server (paper §4).
//
// The paper assumes exactly this contract: fixed-size blocks; "writing a block must be an
// atomic action, with an acknowledgement that is returned after the block has been stored";
// media occasionally corrupt a block or become (temporarily) inaccessible. Devices model
// the three media of Figure 2: fast "electronic" disks, magnetic disks, and write-once
// optical disks.

#ifndef SRC_DISK_BLOCK_DEVICE_H_
#define SRC_DISK_BLOCK_DEVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "src/base/status.h"
#include "src/obs/metrics.h"

namespace afs {

// Block numbers are 28-bit on the wire (page references pack them with 4 flag bits, §5.1).
using BlockNo = uint32_t;
inline constexpr BlockNo kMaxBlockNo = (1u << 28) - 1;

struct DiskGeometry {
  uint32_t block_size = 0;
  uint32_t num_blocks = 0;
};

// The one simulated-latency knob shared by every storage layer (MemDisk, WriteOnceDisk,
// InMemoryBlockStore). Two cost models, combinable:
//   * spin ticks — a busy loop charged per operation; models CPU-attached "electronic"
//     disks and is safe to charge under a device mutex (it serialises like a disk arm).
//   * sleep — a real sleep charged per operation; models magnetic-disk I/O and must be
//     charged OUTSIDE caller locks so concurrent operations overlap.
// Charged latency is reported through the metrics layer when BindMetrics() was called.
class SimulatedLatency {
 public:
  void set_spin_ticks(uint32_t ticks) {
    spin_ticks_.store(ticks, std::memory_order_relaxed);
  }
  void set_sleep(std::chrono::microseconds us) {
    sleep_us_.store(static_cast<uint32_t>(us.count()), std::memory_order_relaxed);
  }

  // Route charged operations into a registry: a counter of charged ops and a histogram of
  // charged wall time. Either pointer may be null.
  void BindMetrics(obs::Counter* charged_ops, obs::Histogram* charged_ns) {
    charged_ops_ = charged_ops;
    charged_ns_ = charged_ns;
  }

  // Charge one operation's simulated cost. No-op (one relaxed load each) when both knobs
  // are zero.
  void Charge() const {
    const uint32_t ticks = spin_ticks_.load(std::memory_order_relaxed);
    const uint32_t us = sleep_us_.load(std::memory_order_relaxed);
    if (ticks == 0 && us == 0) {
      return;
    }
    const auto start = std::chrono::steady_clock::now();
    if (ticks > 0) {
      volatile uint32_t sink = 0;
      for (uint32_t i = 0; i < ticks; ++i) {
        sink = sink + 1;
      }
    }
    if (us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
    if (charged_ops_ != nullptr) {
      charged_ops_->Inc();
    }
    if (charged_ns_ != nullptr) {
      charged_ns_->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                               start)
              .count()));
    }
  }

 private:
  std::atomic<uint32_t> spin_ticks_{0};
  std::atomic<uint32_t> sleep_us_{0};
  obs::Counter* charged_ops_ = nullptr;
  obs::Histogram* charged_ns_ = nullptr;
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual DiskGeometry geometry() const = 0;

  // Read one block into `out` (must be exactly block_size long).
  // kCorrupt if the stored data was damaged; kUnavailable if the device is offline.
  virtual Status Read(BlockNo bno, std::span<uint8_t> out) = 0;

  // Atomically persist one block; returns only after the block is durable.
  // kReadOnly on write-once media whose block was already written.
  virtual Status Write(BlockNo bno, std::span<const uint8_t> data) = 0;

  // Operation counters, used by benchmarks to count disk I/O independently of wall time.
  virtual uint64_t reads() const = 0;
  virtual uint64_t writes() const = 0;
};

}  // namespace afs

#endif  // SRC_DISK_BLOCK_DEVICE_H_
