// BlockDevice: the storage abstraction under the block server (paper §4).
//
// The paper assumes exactly this contract: fixed-size blocks; "writing a block must be an
// atomic action, with an acknowledgement that is returned after the block has been stored";
// media occasionally corrupt a block or become (temporarily) inaccessible. Devices model
// the three media of Figure 2: fast "electronic" disks, magnetic disks, and write-once
// optical disks.

#ifndef SRC_DISK_BLOCK_DEVICE_H_
#define SRC_DISK_BLOCK_DEVICE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/status.h"

namespace afs {

// Block numbers are 28-bit on the wire (page references pack them with 4 flag bits, §5.1).
using BlockNo = uint32_t;
inline constexpr BlockNo kMaxBlockNo = (1u << 28) - 1;

struct DiskGeometry {
  uint32_t block_size = 0;
  uint32_t num_blocks = 0;
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual DiskGeometry geometry() const = 0;

  // Read one block into `out` (must be exactly block_size long).
  // kCorrupt if the stored data was damaged; kUnavailable if the device is offline.
  virtual Status Read(BlockNo bno, std::span<uint8_t> out) = 0;

  // Atomically persist one block; returns only after the block is durable.
  // kReadOnly on write-once media whose block was already written.
  virtual Status Write(BlockNo bno, std::span<const uint8_t> data) = 0;

  // Operation counters, used by benchmarks to count disk I/O independently of wall time.
  virtual uint64_t reads() const = 0;
  virtual uint64_t writes() const = 0;
};

}  // namespace afs

#endif  // SRC_DISK_BLOCK_DEVICE_H_
