// WriteOnceDisk: optical write-once medium (paper §6: "files cannot be overwritten on a
// write-once device. The version mechanism ... seems an ideal file store for optical
// disks."). Each block may be written exactly once; rewriting fails with kReadOnly. The
// version mechanism never rewrites committed pages except the version page itself, which the
// file server places on rewritable media — src/tier builds the archival tier on top of this
// device, and the optical_archive example demonstrates the split.
//
// The disk is a veneer over any BlockDevice. The burned-block bitmap — the one piece of
// mutable state a write-once medium needs — is persisted into a directory of reserved blocks
// at the front of the inner device, so that wrapping a durable device (store::FileDisk)
// yields an archive whose burned state survives restarts. Burn ordering is mark-then-burn:
// the bitmap bit is set and persisted BEFORE the data lands, so no crash can leave a block
// whose data is written but whose bit is clear (which would permit a rewrite, violating the
// write-once contract). The worst a crash can leave is a "dead" block — bit set, data never
// written — which readers of the raw medium must tolerate (src/tier's archive scan skips
// records with an invalid header).

#ifndef SRC_DISK_WRITE_ONCE_DISK_H_
#define SRC_DISK_WRITE_ONCE_DISK_H_

#include <memory>
#include <mutex>
#include <vector>

#include "src/disk/mem_disk.h"

namespace afs {

class WriteOnceDisk : public BlockDevice {
 public:
  // Self-contained medium: owns a fresh MemDisk sized for `num_blocks` usable blocks plus
  // the bitmap directory. Burned state is volatile (the medium dies with the process).
  WriteOnceDisk(uint32_t block_size, uint32_t num_blocks);

  // Wrap an existing device. The first reserved_blocks() blocks of `inner` hold the burned
  // bitmap; the constructor reloads it, so a durable inner device (store::FileDisk) gives a
  // durable archive. A device never touched by a WriteOnceDisk loads as fully unburned.
  // `inner` must outlive this object.
  explicit WriteOnceDisk(BlockDevice* inner);

  // Geometry of the usable region (the bitmap directory is not addressable).
  DiskGeometry geometry() const override;
  Status Read(BlockNo bno, std::span<uint8_t> out) override;

  // First write to a block burns it; any subsequent write returns kReadOnly.
  Status Write(BlockNo bno, std::span<const uint8_t> data) override;

  uint64_t reads() const override { return inner_->reads(); }
  uint64_t writes() const override { return inner_->writes(); }

  // Unified simulated-latency knob, charged once per user-visible op (bitmap maintenance
  // I/O is not double-charged).
  SimulatedLatency& latency() { return latency_; }

  bool IsBurned(BlockNo bno) const;
  uint64_t burned_count() const;

  // Blocks at the front of the inner device reserved for the bitmap directory.
  uint32_t reserved_blocks() const { return reserved_; }
  // Inner-device block holding usable block `bno` (tests corrupt the medium through this).
  BlockNo RawBlockFor(BlockNo bno) const { return bno + reserved_; }

 private:
  // Bitmap directory blocks needed to cover `usable` blocks' bits.
  static uint32_t BitmapBlocksFor(uint32_t block_size, uint64_t usable);
  // Reload burned_ from the directory; absent/unreadable directory blocks load as zeros.
  void LoadBitmap();
  // Persist the directory block containing `bno`'s bit. Caller holds mu_.
  Status PersistBitmapBlockFor(BlockNo bno);

  std::unique_ptr<MemDisk> owned_;  // set only by the self-contained constructor
  BlockDevice* inner_;
  uint32_t block_size_ = 0;
  uint32_t usable_ = 0;
  uint32_t reserved_ = 0;
  mutable std::mutex mu_;
  std::vector<bool> burned_;
  uint64_t burned_count_ = 0;
  SimulatedLatency latency_;
  obs::MetricRegistry metrics_{"disk.once"};
  obs::Counter* burn_rejected_ = metrics_.counter("disk.burn_rejected");
  obs::Counter* burns_ = metrics_.counter("disk.burn");
};

}  // namespace afs

#endif  // SRC_DISK_WRITE_ONCE_DISK_H_
