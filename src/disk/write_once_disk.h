// WriteOnceDisk: optical write-once medium (paper §6: "files cannot be overwritten on a
// write-once device. The version mechanism ... seems an ideal file store for optical
// disks."). Each block may be written exactly once; rewriting fails with kReadOnly. The
// version mechanism never rewrites committed pages except the version page itself, which the
// file server places on rewritable media — the optical_archive example demonstrates the
// split.

#ifndef SRC_DISK_WRITE_ONCE_DISK_H_
#define SRC_DISK_WRITE_ONCE_DISK_H_

#include <mutex>
#include <vector>

#include "src/disk/mem_disk.h"

namespace afs {

class WriteOnceDisk : public BlockDevice {
 public:
  WriteOnceDisk(uint32_t block_size, uint32_t num_blocks);

  DiskGeometry geometry() const override;
  Status Read(BlockNo bno, std::span<uint8_t> out) override;

  // First write to a block burns it; any subsequent write returns kReadOnly.
  Status Write(BlockNo bno, std::span<const uint8_t> data) override;

  uint64_t reads() const override { return inner_.reads(); }
  uint64_t writes() const override { return inner_.writes(); }

  // Unified simulated-latency knob, charged by the inner device on every op.
  SimulatedLatency& latency() { return inner_.latency(); }

  bool IsBurned(BlockNo bno) const;

 private:
  MemDisk inner_;
  mutable std::mutex mu_;
  std::vector<bool> burned_;
  obs::MetricRegistry metrics_{"disk.once"};
  obs::Counter* burn_rejected_ = metrics_.counter("disk.burn_rejected");
};

}  // namespace afs

#endif  // SRC_DISK_WRITE_ONCE_DISK_H_
