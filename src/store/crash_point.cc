#include "src/store/crash_point.h"

namespace afs {

const char* CrashPointName(CrashPoint point) {
  switch (point) {
    case CrashPoint::kMidJournalAppend:
      return "mid_journal_append";
    case CrashPoint::kAfterJournalAppend:
      return "after_journal_append";
    case CrashPoint::kBeforeJournalFsync:
      return "before_journal_fsync";
    case CrashPoint::kAfterJournalFsync:
      return "after_journal_fsync";
    case CrashPoint::kBeforeCheckpointApply:
      return "before_checkpoint_apply";
    case CrashPoint::kMidCheckpointApply:
      return "mid_checkpoint_apply";
    case CrashPoint::kAfterCheckpointApply:
      return "after_checkpoint_apply";
    case CrashPoint::kAfterSuperblockWrite:
      return "after_superblock_write";
    case CrashPoint::kBeforeJournalTruncate:
      return "before_journal_truncate";
  }
  return "unknown";
}

}  // namespace afs
