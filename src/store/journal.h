// Write-ahead journal with batched group commit (the durability hot path under FileDisk).
//
// Append() stages one self-describing record and blocks until a single flusher thread has
// fsynced it; the flusher gathers every record staged within a tunable window into one
// fsync, so N concurrent writers pay ~one fsync between them instead of N ("group commit").
// The acknowledgement discipline is the paper's §4 contract verbatim: "an acknowledgement
// ... is returned after the block has been stored" — Append returns only once the record
// is across the durability boundary.
//
// Record layout (little-endian), designed so a mount-time scan can distinguish a complete
// record from a torn tail without any external index:
//   u32 magic | u32 bno | u64 lsn | u32 payload_len | u32 payload_crc | u32 header_crc
//   | payload_len bytes of payload
// header_crc covers the five preceding fields; payload_crc covers the payload. Recover()
// replays records until the first short, unmagical, or CRC-failing one, then truncates the
// torn tail so it can never be replayed twice.

#ifndef SRC_STORE_JOURNAL_H_
#define SRC_STORE_JOURNAL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "src/base/status.h"
#include "src/disk/block_device.h"
#include "src/obs/metrics.h"
#include "src/store/crash_point.h"
#include "src/store/stable_file.h"

namespace afs {

inline constexpr uint32_t kJournalMagic = 0xaf10ab1e;
inline constexpr uint32_t kJournalRecordHeaderBytes = 28;

struct JournalOptions {
  // How long the flusher lingers after waking to let more writers join the batch. Zero
  // fsyncs immediately (lowest latency, one fsync per record under light load).
  std::chrono::microseconds group_commit_window{0};
};

class Journal {
 public:
  // `file` must outlive the journal. `metrics` receives the append/fsync instruments
  // (may be shared with the owning FileDisk's registry). `injector` may be null.
  Journal(StableFile* file, JournalOptions options, obs::MetricRegistry* metrics,
          CrashPointInjector* injector);
  ~Journal();

  // Called once if a crash point fires inside the journal, so the owner can cut power to
  // its other backing files too (the whole device loses power, not just the journal).
  void set_on_power_cut(std::function<void()> hook) { on_power_cut_ = std::move(hook); }

  // One record found intact by the mount-time scan.
  struct ReplayedRecord {
    uint64_t lsn = 0;
    BlockNo bno = 0;
    uint64_t payload_offset = 0;  // byte offset of the payload within the journal file
    uint32_t payload_len = 0;
    uint32_t payload_crc = 0;
  };

  // Mount-time recovery: scan the file, return every complete CRC-valid record in LSN
  // order, truncate the torn tail (if any), and prime the LSN counter. Must be called
  // (once) before Start(). `torn_bytes_out` reports how much tail was discarded.
  Result<std::vector<ReplayedRecord>> Recover(uint32_t max_payload_len,
                                              uint64_t* torn_bytes_out);

  // Launch the flusher; Append() may be called from any thread afterwards.
  void Start();

  // Durable append: stages the record, joins the next group commit, and returns its
  // location once fsynced. kUnavailable after a (simulated) power failure.
  Result<ReplayedRecord> Append(BlockNo bno, std::span<const uint8_t> payload);

  // Truncate to empty after a checkpoint made the journal's contents redundant. The LSN
  // counter keeps counting — LSNs are unique for the lifetime of the store.
  Status Reset();

  // Stop the flusher (no implicit flush: Close paths must Reset/Sync explicitly first).
  void Stop();

  // Mark the journal dead after an external power cut (checkpoint crash points).
  void Kill();

  bool dead() const;
  uint64_t tail_bytes() const;  // staged end offset, i.e. current journal length
  uint64_t appends() const { return append_ctr_->value(); }
  uint64_t fsync_batches() const { return fsync_ctr_->value(); }

 private:
  void FlusherLoop();
  // Fires `point` if armed: simulates the power cut (keeping `keep_bytes` of the staged
  // journal tail) and marks the journal dead. Returns true if it fired. mu_ must be held.
  bool MaybeCrashLocked(CrashPoint point, uint64_t keep_bytes);

  StableFile* file_;
  const JournalOptions options_;
  CrashPointInjector* injector_;
  std::function<void()> on_power_cut_;

  mutable std::mutex mu_;
  std::condition_variable flusher_cv_;  // signals the flusher: work or shutdown
  std::condition_variable waiters_cv_;  // signals writers: durable_lsn_ advanced (or death)
  std::thread flusher_;
  bool started_ = false;
  bool stop_ = false;
  bool dead_ = false;
  uint64_t next_lsn_ = 1;
  uint64_t staged_lsn_ = 0;   // highest LSN staged into the file
  uint64_t durable_lsn_ = 0;  // highest LSN known fsynced
  uint64_t end_offset_ = 0;   // staged end of the journal file
  uint64_t durable_end_ = 0;  // end offset covered by the last fsync

  obs::Counter* append_ctr_;
  obs::Counter* fsync_ctr_;
  obs::Gauge* queue_depth_;           // records staged but not yet durable (max = worst)
  obs::Histogram* flush_batch_hist_;  // journal.flush.batch_size: records per fsync batch
  obs::Histogram* batch_bytes_hist_;  // bytes per fsync batch
  obs::Histogram* commit_ns_hist_;    // Append latency: stage -> durable
};

}  // namespace afs

#endif  // SRC_STORE_JOURNAL_H_
