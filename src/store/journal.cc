#include "src/store/journal.h"

#include <cstring>

#include "src/base/crc32.h"
#include "src/obs/span.h"

namespace afs {
namespace {

void StoreU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

void StoreU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

Journal::Journal(StableFile* file, JournalOptions options, obs::MetricRegistry* metrics,
                 CrashPointInjector* injector)
    : file_(file),
      options_(options),
      injector_(injector),
      append_ctr_(metrics->counter("journal.append")),
      fsync_ctr_(metrics->counter("journal.fsync")),
      queue_depth_(metrics->gauge("journal.queue_depth")),
      flush_batch_hist_(metrics->histogram("journal.flush.batch_size")),
      batch_bytes_hist_(metrics->histogram("journal.batch_bytes")),
      commit_ns_hist_(metrics->histogram("journal.commit_ns")) {}

Journal::~Journal() { Stop(); }

Result<std::vector<Journal::ReplayedRecord>> Journal::Recover(uint32_t max_payload_len,
                                                              uint64_t* torn_bytes_out) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t size = file_->size();
  std::vector<ReplayedRecord> records;
  uint64_t offset = 0;
  uint64_t last_lsn = 0;
  uint8_t header[kJournalRecordHeaderBytes];
  while (offset + kJournalRecordHeaderBytes <= size) {
    RETURN_IF_ERROR(file_->ReadAt(offset, header));
    const uint32_t magic = LoadU32(header);
    const uint32_t bno = LoadU32(header + 4);
    const uint64_t lsn = LoadU64(header + 8);
    const uint32_t len = LoadU32(header + 16);
    const uint32_t payload_crc = LoadU32(header + 20);
    const uint32_t header_crc = LoadU32(header + 24);
    if (magic != kJournalMagic || Crc32c(header, 24) != header_crc || len > max_payload_len ||
        lsn <= last_lsn || offset + kJournalRecordHeaderBytes + len > size) {
      break;  // torn or corrupt tail: nothing past this point is trustworthy
    }
    std::vector<uint8_t> payload(len);
    RETURN_IF_ERROR(file_->ReadAt(offset + kJournalRecordHeaderBytes, payload));
    if (Crc32c(payload.data(), payload.size()) != payload_crc) {
      break;
    }
    records.push_back(ReplayedRecord{lsn, bno, offset + kJournalRecordHeaderBytes, len,
                                     payload_crc});
    last_lsn = lsn;
    offset += kJournalRecordHeaderBytes + len;
  }
  const uint64_t torn = size - offset;
  if (torn > 0) {
    RETURN_IF_ERROR(file_->Truncate(offset));
  }
  if (torn_bytes_out != nullptr) {
    *torn_bytes_out = torn;
  }
  next_lsn_ = last_lsn + 1;
  staged_lsn_ = durable_lsn_ = last_lsn;
  end_offset_ = durable_end_ = offset;
  return records;
}

void Journal::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) {
    return;
  }
  started_ = true;
  stop_ = false;
  flusher_ = std::thread([this] { FlusherLoop(); });
}

bool Journal::MaybeCrashLocked(CrashPoint point, uint64_t keep_bytes) {
  if (injector_ == nullptr || !injector_->Fire(point)) {
    return false;
  }
  file_->PowerCut(keep_bytes);
  dead_ = true;
  flusher_cv_.notify_all();
  waiters_cv_.notify_all();
  if (on_power_cut_) {
    on_power_cut_();
  }
  return true;
}

Result<Journal::ReplayedRecord> Journal::Append(BlockNo bno,
                                                std::span<const uint8_t> payload) {
  const auto start = std::chrono::steady_clock::now();
  obs::ScopedSpan append_span("journal.append", obs::SpanKind::kStore, bno, payload.size());
  std::unique_lock<std::mutex> lk(mu_);
  if (dead_) {
    return UnavailableError("journal device lost power");
  }
  const uint64_t lsn = next_lsn_++;
  const uint64_t record_offset = end_offset_;
  std::vector<uint8_t> record(kJournalRecordHeaderBytes + payload.size());
  StoreU32(record.data(), kJournalMagic);
  StoreU32(record.data() + 4, bno);
  StoreU64(record.data() + 8, lsn);
  StoreU32(record.data() + 16, static_cast<uint32_t>(payload.size()));
  const uint32_t payload_crc = Crc32c(payload.data(), payload.size());
  StoreU32(record.data() + 20, payload_crc);
  StoreU32(record.data() + 24, Crc32c(record.data(), 24));
  std::memcpy(record.data() + kJournalRecordHeaderBytes, payload.data(), payload.size());
  RETURN_IF_ERROR(file_->WriteAt(record_offset, record));
  end_offset_ += record.size();
  staged_lsn_ = lsn;
  append_ctr_->Inc();
  // Published under mu_, like the LSNs it derives from: how many records are waiting for
  // the flusher right now (its max is the deepest group commit ever coalesced).
  queue_depth_->Set(static_cast<int64_t>(staged_lsn_ - durable_lsn_));

  // A power cut here tears the record in half...
  if (MaybeCrashLocked(CrashPoint::kMidJournalAppend,
                       file_->pending_bytes() - (record.size() + 1) / 2)) {
    return UnavailableError("simulated power failure mid-append");
  }
  // ...and here loses the whole un-fsynced tail.
  if (MaybeCrashLocked(CrashPoint::kAfterJournalAppend, 0)) {
    return UnavailableError("simulated power failure before fsync");
  }

  flusher_cv_.notify_one();
  waiters_cv_.wait(lk, [&] { return dead_ || stop_ || durable_lsn_ >= lsn; });
  if (durable_lsn_ < lsn) {
    return UnavailableError("power failed before the write was durable");
  }
  commit_ns_hist_->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start)
          .count()));
  return ReplayedRecord{lsn, bno, record_offset + kJournalRecordHeaderBytes,
                        static_cast<uint32_t>(payload.size()), payload_crc};
}

void Journal::FlusherLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    flusher_cv_.wait(lk, [&] { return stop_ || dead_ || staged_lsn_ > durable_lsn_; });
    if (stop_ || dead_) {
      return;
    }
    if (options_.group_commit_window.count() > 0) {
      // Linger so concurrent writers can join this batch; one fsync covers them all.
      lk.unlock();
      std::this_thread::sleep_for(options_.group_commit_window);
      lk.lock();
      if (stop_ || dead_) {
        return;
      }
    }
    const uint64_t target_lsn = staged_lsn_;
    const uint64_t target_end = end_offset_;
    const uint64_t batch_records = target_lsn - durable_lsn_;
    // The bytes had already left for the platter; only the acknowledgements are lost.
    if (MaybeCrashLocked(CrashPoint::kBeforeJournalFsync, file_->pending_bytes())) {
      return;
    }
    lk.unlock();
    Status st;
    {
      obs::ScopedSpan fsync_span("journal.fsync", obs::SpanKind::kStore, batch_records,
                                 target_end - durable_end_);
      st = file_->Sync();
    }
    lk.lock();
    if (!st.ok()) {
      dead_ = true;
      waiters_cv_.notify_all();
      return;
    }
    if (MaybeCrashLocked(CrashPoint::kAfterJournalFsync, 0)) {
      return;  // batch durable, but no writer ever hears the acknowledgement
    }
    fsync_ctr_->Inc();
    flush_batch_hist_->Record(batch_records);
    batch_bytes_hist_->Record(target_end - durable_end_);
    durable_lsn_ = target_lsn;
    durable_end_ = target_end;
    queue_depth_->Set(static_cast<int64_t>(staged_lsn_ - durable_lsn_));
    waiters_cv_.notify_all();
  }
}

Status Journal::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) {
    return UnavailableError("journal device lost power");
  }
  RETURN_IF_ERROR(file_->Truncate(0));
  end_offset_ = durable_end_ = 0;
  return OkStatus();
}

void Journal::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    flusher_cv_.notify_all();
    waiters_cv_.notify_all();
  }
  if (flusher_.joinable()) {
    flusher_.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = false;
  }
}

void Journal::Kill() {
  std::lock_guard<std::mutex> lock(mu_);
  dead_ = true;
  flusher_cv_.notify_all();
  waiters_cv_.notify_all();
}

bool Journal::dead() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

uint64_t Journal::tail_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return end_offset_;
}

}  // namespace afs
