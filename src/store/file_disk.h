// FileDisk: a durable, file-backed BlockDevice — the first backend whose contents survive
// process exit, giving the stable-pair machinery (paper §4) something genuinely stable to
// stand on.
//
// Layout: two host files per disk.
//   <path>            the block area: dual superblocks (written alternately, so a torn
//                     superblock write can never brick the disk) followed by one sector
//                     per block. Each sector carries a 32-byte header — magic, block
//                     number, mount epoch, LSN, and a CRC32C over payload + block number +
//                     epoch + LSN — so torn and misdirected writes are detected on read.
//   <path>.journal    a write-ahead journal of complete block images with batched group
//                     commit (journal.h). Every Write() is journal-append + fsync before
//                     the acknowledgement; the block area is only updated by checkpoints.
//
// Write path: append to the journal (group commit amortises the fsync across concurrent
// writers), remember "newest copy lives in the journal" in an in-memory index, ack. When
// the journal passes a size threshold a checkpoint folds the journaled blocks into their
// block-area sectors, syncs, bumps the superblock, and truncates the journal.
//
// Mount: pick the newer valid superblock, adopt its geometry, bump the epoch, then replay
// the journal — complete CRC-valid records rebuild the index; the first torn or corrupt
// record ends the scan and the tail is truncated so it can never be replayed. Acknowledged
// writes are therefore always recovered; an unacknowledged tail may survive (if it was
// already complete on the platter) or vanish — never anything in between.
//
// A CrashPointInjector (crash_point.h) can cut the power at every interesting instant of
// the write and checkpoint paths; the backing files are left exactly as a power failure
// would leave them, and tests remount to drive the real recovery code.

#ifndef SRC_STORE_FILE_DISK_H_
#define SRC_STORE_FILE_DISK_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "src/disk/block_device.h"
#include "src/obs/metrics.h"
#include "src/store/crash_point.h"
#include "src/store/journal.h"
#include "src/store/stable_file.h"

namespace afs {

inline constexpr uint32_t kSuperblockMagic = 0xaf5d15c0;
inline constexpr uint32_t kSectorMagic = 0xaf5ec706;
inline constexpr uint32_t kSuperblockSlotBytes = 512;
inline constexpr uint32_t kBlockAreaOffset = 2 * kSuperblockSlotBytes;
inline constexpr uint32_t kSectorHeaderBytes = 32;

struct FileDiskOptions {
  // Geometry, used only when creating a fresh disk; reopening adopts the superblock's.
  uint32_t block_size = 4096;
  uint32_t num_blocks = 1 << 14;
  // Group-commit window (see JournalOptions). Zero = fsync each record immediately.
  std::chrono::microseconds group_commit_window{0};
  // Journal length that triggers an automatic checkpoint.
  uint64_t checkpoint_threshold_bytes = 8ull << 20;
};

class FileDisk : public BlockDevice {
 public:
  // Opens (creating if absent) the disk at `path`, runs mount-time recovery, and starts
  // the group-commit flusher. `injector` (may be null) arms simulated power cuts.
  static Result<std::unique_ptr<FileDisk>> Open(const std::string& path,
                                                const FileDiskOptions& options = {},
                                                CrashPointInjector* injector = nullptr);
  ~FileDisk() override;

  DiskGeometry geometry() const override { return geometry_; }
  Status Read(BlockNo bno, std::span<uint8_t> out) override;
  Status Write(BlockNo bno, std::span<const uint8_t> data) override;
  uint64_t reads() const override { return reads_->value(); }
  uint64_t writes() const override { return writes_->value(); }

  // Fold every journaled block into the block area and truncate the journal. Runs
  // automatically when the journal passes the size threshold; callable any time.
  Status Checkpoint();

  // Orderly shutdown: checkpoint, stop the flusher. Idempotent; the destructor calls it.
  // After a (simulated) power cut this flushes nothing — the post-crash image stays put.
  Status Close();

  // Fault injection, same contract as MemDisk::CorruptBlock: damages the stored copy of
  // `bno` (whichever file currently holds it); the next Read() returns kCorrupt.
  void CorruptBlock(BlockNo bno);

  // Unified simulated-latency knob, charged once per Read/Write like the other devices.
  SimulatedLatency& latency() { return latency_; }

  // -- mount / recovery / journal introspection (tests, benches, the shell) ----
  uint64_t epoch() const { return epoch_; }
  uint64_t recovered_records() const { return recovered_records_; }
  uint64_t torn_bytes_discarded() const { return torn_bytes_; }
  uint64_t journal_bytes() const { return journal_->tail_bytes(); }
  uint64_t journal_appends() const { return journal_->appends(); }
  uint64_t fsync_batches() const { return journal_->fsync_batches(); }
  uint64_t checkpoints() const { return checkpoints_->value(); }
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  const std::string& path() const { return path_; }

 private:
  // Where the newest committed copy of a journaled block lives.
  struct JournalEntry {
    uint64_t lsn = 0;
    uint64_t payload_offset = 0;
    uint32_t payload_crc = 0;
  };

  FileDisk(std::string path, FileDiskOptions options, CrashPointInjector* injector);

  Status Mount();
  Status WriteSuperblock();
  Status CheckpointLocked();  // requires io_mu_ held exclusively
  uint64_t SectorOffset(BlockNo bno) const {
    return kBlockAreaOffset +
           static_cast<uint64_t>(bno) * (kSectorHeaderBytes + geometry_.block_size);
  }
  uint32_t SectorCrc(std::span<const uint8_t> payload, BlockNo bno, uint64_t epoch,
                     uint64_t lsn) const;
  Status ReadSector(BlockNo bno, std::span<uint8_t> out);
  // Fires `point` if armed: power-cuts both files (the block area keeping `block_keep`
  // staged bytes) and marks the device crashed. Returns true if it fired.
  bool MaybeCrash(CrashPoint point, uint64_t block_keep);
  Status CheckAccess(BlockNo bno, size_t len) const;

  const std::string path_;
  const FileDiskOptions options_;
  CrashPointInjector* const injector_;
  DiskGeometry geometry_;

  std::unique_ptr<StableFile> block_file_;
  std::unique_ptr<StableFile> journal_file_;
  std::unique_ptr<Journal> journal_;

  // Writers and readers share; a checkpoint is exclusive (it moves blocks between files).
  std::shared_mutex io_mu_;
  std::mutex index_mu_;
  std::unordered_map<BlockNo, JournalEntry> journal_index_;

  uint64_t epoch_ = 0;
  uint64_t superblock_seqno_ = 0;
  uint64_t checkpoint_lsn_ = 0;
  uint64_t recovered_records_ = 0;
  uint64_t torn_bytes_ = 0;
  std::atomic<bool> crashed_{false};
  bool closed_ = false;

  SimulatedLatency latency_;
  obs::MetricRegistry metrics_{"filedisk"};
  obs::Counter* reads_ = metrics_.counter("disk.read");
  obs::Counter* writes_ = metrics_.counter("disk.write");
  obs::Counter* checkpoints_ = metrics_.counter("journal.checkpoint");
  obs::Counter* checkpoint_blocks_ = metrics_.counter("journal.checkpoint_blocks");
  obs::Counter* recovery_replayed_ = metrics_.counter("recovery.replayed_records");
  obs::Counter* recovery_torn_ = metrics_.counter("recovery.torn_bytes");
};

}  // namespace afs

#endif  // SRC_STORE_FILE_DISK_H_
