// CrashPoint: fault-injection sites inside FileDisk's write and checkpoint paths.
//
// Each point names one instant at which a power cut would leave the backing files in a
// distinct intermediate state. Tests arm an injector at one point, drive the write path
// until it fires, then remount and assert the recovery invariant: every acknowledged write
// is readable with a valid checksum, and no torn journal tail is replayed. The catalogue
// (with the file-level state each point produces) is documented in docs/STORAGE.md.

#ifndef SRC_STORE_CRASH_POINT_H_
#define SRC_STORE_CRASH_POINT_H_

#include <mutex>
#include <optional>

namespace afs {

enum class CrashPoint : int {
  // -- journal (group-commit) write path --------------------------------------
  kMidJournalAppend = 0,   // power cut halfway through writing a journal record: torn tail
  kAfterJournalAppend,     // record handed to the OS, fsync not yet requested: tail lost
  kBeforeJournalFsync,     // flusher about to fsync; bytes reached the platter, ack did not
  kAfterJournalFsync,      // batch durable, but acknowledgements never delivered
  // -- checkpoint path --------------------------------------------------------
  kBeforeCheckpointApply,  // checkpoint chosen, block area still untouched
  kMidCheckpointApply,     // half the checkpoint's sectors written: one torn sector
  kAfterCheckpointApply,   // block area synced, superblock not yet rewritten
  kAfterSuperblockWrite,   // superblock update staged but not synced: update lost
  kBeforeJournalTruncate,  // superblock durable, journal not yet reset: replay idempotent
};

inline constexpr CrashPoint kAllCrashPoints[] = {
    CrashPoint::kMidJournalAppend,    CrashPoint::kAfterJournalAppend,
    CrashPoint::kBeforeJournalFsync,  CrashPoint::kAfterJournalFsync,
    CrashPoint::kBeforeCheckpointApply, CrashPoint::kMidCheckpointApply,
    CrashPoint::kAfterCheckpointApply,  CrashPoint::kAfterSuperblockWrite,
    CrashPoint::kBeforeJournalTruncate,
};

// "mid_journal_append" etc., for parameterised test names and logs.
const char* CrashPointName(CrashPoint point);

// Arms at most one crash point; the first write-path visit to that site fires it (exactly
// once) and the owning FileDisk simulates the power cut. Thread-safe: the firing site may
// be a writer thread or the journal flusher.
class CrashPointInjector {
 public:
  void Arm(CrashPoint point) {
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = point;
    fired_ = false;
  }

  // True exactly once, when `point` is the armed site. Consumes the arming.
  bool Fire(CrashPoint point) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!armed_.has_value() || *armed_ != point) {
      return false;
    }
    armed_.reset();
    fired_ = true;
    return true;
  }

  bool fired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fired_;
  }

 private:
  mutable std::mutex mu_;
  std::optional<CrashPoint> armed_;
  bool fired_ = false;
};

}  // namespace afs

#endif  // SRC_STORE_CRASH_POINT_H_
