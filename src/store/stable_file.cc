#include "src/store/stable_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace afs {
namespace {

Status IoError(const char* what, const std::string& path) {
  return UnavailableError(std::string(what) + " failed for " + path + ": " +
                          std::strerror(errno));
}

// Full pwrite loop (pwrite may write short on signals).
bool PwriteAll(int fd, const uint8_t* data, size_t len, uint64_t offset) {
  while (len > 0) {
    ssize_t n = ::pwrite(fd, data, len, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
    offset += static_cast<uint64_t>(n);
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<StableFile>> StableFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return IoError("open", path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return IoError("fstat", path);
  }
  return std::unique_ptr<StableFile>(
      new StableFile(path, fd, static_cast<uint64_t>(st.st_size)));
}

StableFile::StableFile(std::string path, int fd, uint64_t durable_size)
    : path_(std::move(path)), fd_(fd), logical_size_(durable_size) {}

StableFile::~StableFile() { ::close(fd_); }

Status StableFile::WriteAt(uint64_t offset, std::span<const uint8_t> data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) {
    return UnavailableError("file lost power");
  }
  pending_.push_back(Extent{offset, std::vector<uint8_t>(data.begin(), data.end())});
  pending_bytes_ += data.size();
  logical_size_ = std::max(logical_size_, offset + data.size());
  return OkStatus();
}

Status StableFile::ReadAt(uint64_t offset, std::span<uint8_t> out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) {
    return UnavailableError("file lost power");
  }
  std::memset(out.data(), 0, out.size());
  size_t want = out.size();
  uint8_t* dst = out.data();
  uint64_t off = offset;
  while (want > 0) {
    ssize_t n = ::pread(fd_, dst, want, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return IoError("pread", path_);
    }
    if (n == 0) {
      break;  // beyond durable end: stays zero-filled
    }
    dst += n;
    want -= static_cast<size_t>(n);
    off += static_cast<uint64_t>(n);
  }
  // Overlay staged extents, oldest first, so the newest staged write wins.
  for (const Extent& e : pending_) {
    uint64_t lo = std::max(offset, e.offset);
    uint64_t hi = std::min(offset + out.size(), e.offset + e.data.size());
    if (lo < hi) {
      std::memcpy(out.data() + (lo - offset), e.data.data() + (lo - e.offset), hi - lo);
    }
  }
  return OkStatus();
}

Status StableFile::FlushExtentLocked(uint64_t offset, std::span<const uint8_t> data) {
  if (!PwriteAll(fd_, data.data(), data.size(), offset)) {
    return IoError("pwrite", path_);
  }
  return OkStatus();
}

Status StableFile::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) {
    return UnavailableError("file lost power");
  }
  for (const Extent& e : pending_) {
    RETURN_IF_ERROR(FlushExtentLocked(e.offset, e.data));
  }
  if (::fdatasync(fd_) != 0) {
    return IoError("fdatasync", path_);
  }
  pending_.clear();
  pending_bytes_ = 0;
  return OkStatus();
}

Status StableFile::Truncate(uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) {
    return UnavailableError("file lost power");
  }
  // Drop (or clip) staged writes past the new end.
  std::vector<Extent> kept;
  uint64_t kept_bytes = 0;
  for (Extent& e : pending_) {
    if (e.offset >= size) {
      continue;
    }
    if (e.offset + e.data.size() > size) {
      e.data.resize(size - e.offset);
    }
    kept_bytes += e.data.size();
    kept.push_back(std::move(e));
  }
  pending_ = std::move(kept);
  pending_bytes_ = kept_bytes;
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return IoError("ftruncate", path_);
  }
  if (::fdatasync(fd_) != 0) {
    return IoError("fdatasync", path_);
  }
  logical_size_ = size;
  for (const Extent& e : pending_) {
    logical_size_ = std::max(logical_size_, e.offset + e.data.size());
  }
  return OkStatus();
}

Status StableFile::RawWriteAt(uint64_t offset, std::span<const uint8_t> data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) {
    return UnavailableError("file lost power");
  }
  RETURN_IF_ERROR(FlushExtentLocked(offset, data));
  if (::fdatasync(fd_) != 0) {
    return IoError("fdatasync", path_);
  }
  return OkStatus();
}

void StableFile::PowerCut(uint64_t keep_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) {
    return;
  }
  for (const Extent& e : pending_) {
    if (keep_bytes == 0) {
      break;
    }
    size_t n = std::min<uint64_t>(keep_bytes, e.data.size());
    // Best-effort: a failing platter write during a power cut loses data anyway.
    (void)FlushExtentLocked(e.offset, std::span<const uint8_t>(e.data.data(), n));
    keep_bytes -= n;
  }
  (void)::fdatasync(fd_);
  pending_.clear();
  pending_bytes_ = 0;
  dead_ = true;
}

uint64_t StableFile::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return logical_size_;
}

uint64_t StableFile::pending_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_bytes_;
}

}  // namespace afs
