// StableFile: a host file with an explicit durability boundary, the primitive under
// FileDisk and its journal.
//
// WriteAt() only *stages* bytes: they are visible to subsequent ReadAt() calls but are not
// on the platter until Sync() (pwrite + fdatasync) moves the whole staged set across the
// durability boundary. This mirrors what a real OS page cache does to an application that
// forgets to fsync — and it is what makes crash-point testing honest: PowerCut() discards
// the staged set (optionally keeping a prefix, modelling a torn write) and freezes the
// file, so the bytes on the host filesystem are exactly the image a power failure at that
// instant would have left. A test then reopens the path and exercises real recovery code
// against a real post-crash image.

#ifndef SRC_STORE_STABLE_FILE_H_
#define SRC_STORE_STABLE_FILE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace afs {

class StableFile {
 public:
  // Opens (or creates) `path` read-write. Fails with kUnavailable on host I/O errors.
  static Result<std::unique_ptr<StableFile>> Open(const std::string& path);

  // Closes the descriptor. Staged-but-unsynced bytes are deliberately NOT flushed — an
  // orderly shutdown must Sync() explicitly, exactly like a real application.
  ~StableFile();

  StableFile(const StableFile&) = delete;
  StableFile& operator=(const StableFile&) = delete;

  // Stage `data` at `offset`. Durable only after the next Sync().
  Status WriteAt(uint64_t offset, std::span<const uint8_t> data);

  // Read `out.size()` bytes at `offset`: the durable image overlaid with staged writes.
  // Reads beyond the logical end are zero-filled (sparse-file semantics).
  Status ReadAt(uint64_t offset, std::span<uint8_t> out);

  // Push every staged write to the host file and fdatasync it.
  Status Sync();

  // Immediately truncate the file (and drop staged writes beyond `size`), then sync.
  Status Truncate(uint64_t size);

  // Bypass staging: pwrite directly into the durable image. Fault injection only
  // (CorruptBlock flips stored bytes the way a decaying medium would).
  Status RawWriteAt(uint64_t offset, std::span<const uint8_t> data);

  // Simulate a power cut: of the staged bytes, only the first `keep_bytes` (in staging
  // order, possibly cutting the last write in half) reach the platter; the rest vanish.
  // The file then refuses all further I/O with kUnavailable.
  void PowerCut(uint64_t keep_bytes);

  // Logical size including staged writes.
  uint64_t size() const;
  // Total staged-but-unsynced bytes.
  uint64_t pending_bytes() const;

  const std::string& path() const { return path_; }

 private:
  StableFile(std::string path, int fd, uint64_t durable_size);

  struct Extent {
    uint64_t offset = 0;
    std::vector<uint8_t> data;
  };

  Status FlushExtentLocked(uint64_t offset, std::span<const uint8_t> data);

  const std::string path_;
  const int fd_;
  mutable std::mutex mu_;
  std::vector<Extent> pending_;  // staging order = append order, replayed by PowerCut
  uint64_t pending_bytes_ = 0;
  uint64_t logical_size_ = 0;
  bool dead_ = false;
};

}  // namespace afs

#endif  // SRC_STORE_STABLE_FILE_H_
