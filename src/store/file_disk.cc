#include "src/store/file_disk.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/base/crc32.h"
#include "src/obs/trace.h"

namespace afs {
namespace {

constexpr uint32_t kSuperblockVersion = 1;
constexpr uint32_t kSuperblockPayloadBytes = 40;  // fields covered by the superblock CRC

void StoreU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

void StoreU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

struct Superblock {
  uint32_t block_size = 0;
  uint32_t num_blocks = 0;
  uint64_t epoch = 0;
  uint64_t seqno = 0;
  uint64_t checkpoint_lsn = 0;
};

void EncodeSuperblock(std::span<uint8_t> slot, const Superblock& sb) {
  std::memset(slot.data(), 0, slot.size());
  StoreU32(slot.data(), kSuperblockMagic);
  StoreU32(slot.data() + 4, kSuperblockVersion);
  StoreU32(slot.data() + 8, sb.block_size);
  StoreU32(slot.data() + 12, sb.num_blocks);
  StoreU64(slot.data() + 16, sb.epoch);
  StoreU64(slot.data() + 24, sb.seqno);
  StoreU64(slot.data() + 32, sb.checkpoint_lsn);
  StoreU32(slot.data() + kSuperblockPayloadBytes,
           Crc32c(slot.data(), kSuperblockPayloadBytes));
}

bool DecodeSuperblock(std::span<const uint8_t> slot, Superblock* out) {
  if (LoadU32(slot.data()) != kSuperblockMagic ||
      LoadU32(slot.data() + 4) != kSuperblockVersion ||
      LoadU32(slot.data() + kSuperblockPayloadBytes) !=
          Crc32c(slot.data(), kSuperblockPayloadBytes)) {
    return false;
  }
  out->block_size = LoadU32(slot.data() + 8);
  out->num_blocks = LoadU32(slot.data() + 12);
  out->epoch = LoadU64(slot.data() + 16);
  out->seqno = LoadU64(slot.data() + 24);
  out->checkpoint_lsn = LoadU64(slot.data() + 32);
  return out->block_size > 0 && out->num_blocks > 0;
}

}  // namespace

FileDisk::FileDisk(std::string path, FileDiskOptions options, CrashPointInjector* injector)
    : path_(std::move(path)), options_(options), injector_(injector) {
  latency_.BindMetrics(metrics_.counter("disk.charged_ops"),
                       metrics_.histogram("disk.charged_ns"));
}

Result<std::unique_ptr<FileDisk>> FileDisk::Open(const std::string& path,
                                                 const FileDiskOptions& options,
                                                 CrashPointInjector* injector) {
  std::unique_ptr<FileDisk> disk(new FileDisk(path, options, injector));
  RETURN_IF_ERROR(disk->Mount());
  return disk;
}

FileDisk::~FileDisk() { (void)Close(); }

Status FileDisk::Mount() {
  ASSIGN_OR_RETURN(block_file_, StableFile::Open(path_));
  ASSIGN_OR_RETURN(journal_file_, StableFile::Open(path_ + ".journal"));

  if (block_file_->size() == 0) {
    // Fresh disk: geometry from the options, epoch 1.
    geometry_ = {options_.block_size, options_.num_blocks};
    epoch_ = 1;
    superblock_seqno_ = 1;
    checkpoint_lsn_ = 0;
    RETURN_IF_ERROR(WriteSuperblock());
    RETURN_IF_ERROR(block_file_->Sync());
  } else {
    // Existing disk: the newer valid superblock copy wins; a torn superblock write left
    // the other copy intact.
    std::vector<uint8_t> slot(kSuperblockSlotBytes);
    Superblock best;
    bool found = false;
    for (int i = 0; i < 2; ++i) {
      RETURN_IF_ERROR(block_file_->ReadAt(static_cast<uint64_t>(i) * kSuperblockSlotBytes,
                                          slot));
      Superblock sb;
      if (DecodeSuperblock(slot, &sb) && (!found || sb.seqno > best.seqno)) {
        best = sb;
        found = true;
      }
    }
    if (!found) {
      return CorruptError("no valid superblock in " + path_);
    }
    geometry_ = {best.block_size, best.num_blocks};
    checkpoint_lsn_ = best.checkpoint_lsn;
    epoch_ = best.epoch + 1;
    superblock_seqno_ = best.seqno + 1;
    RETURN_IF_ERROR(WriteSuperblock());
    RETURN_IF_ERROR(block_file_->Sync());
  }

  journal_ = std::make_unique<Journal>(
      journal_file_.get(), JournalOptions{options_.group_commit_window}, &metrics_,
      injector_);
  // A power cut fired inside the journal takes the whole device with it.
  journal_->set_on_power_cut([this] {
    block_file_->PowerCut(0);
    crashed_.store(true, std::memory_order_release);
  });

  // Replay: complete records rebuild the newest-copy index; the torn tail is truncated.
  uint64_t torn = 0;
  ASSIGN_OR_RETURN(std::vector<Journal::ReplayedRecord> records,
                   journal_->Recover(geometry_.block_size, &torn));
  for (const Journal::ReplayedRecord& rec : records) {
    if (rec.bno < geometry_.num_blocks && rec.payload_len == geometry_.block_size) {
      journal_index_[rec.bno] = JournalEntry{rec.lsn, rec.payload_offset, rec.payload_crc};
      ++recovered_records_;
    }
  }
  torn_bytes_ = torn;
  recovery_replayed_->Inc(recovered_records_);
  recovery_torn_->Inc(torn_bytes_);

  journal_->Start();
  return OkStatus();
}

Status FileDisk::WriteSuperblock() {
  std::vector<uint8_t> slot(kSuperblockSlotBytes);
  EncodeSuperblock(slot, Superblock{geometry_.block_size, geometry_.num_blocks, epoch_,
                                    superblock_seqno_, checkpoint_lsn_});
  return block_file_->WriteAt((superblock_seqno_ % 2) * kSuperblockSlotBytes, slot);
}

Status FileDisk::CheckAccess(BlockNo bno, size_t len) const {
  if (crashed_.load(std::memory_order_acquire)) {
    return UnavailableError("disk lost power");
  }
  if (bno >= geometry_.num_blocks) {
    return InvalidArgumentError("block number out of range");
  }
  if (len != geometry_.block_size) {
    return InvalidArgumentError("buffer size != block size");
  }
  return OkStatus();
}

uint32_t FileDisk::SectorCrc(std::span<const uint8_t> payload, BlockNo bno, uint64_t epoch,
                             uint64_t lsn) const {
  uint32_t crc = Crc32c(payload.data(), payload.size());
  uint8_t trailer[20];
  StoreU32(trailer, bno);
  StoreU64(trailer + 4, epoch);
  StoreU64(trailer + 12, lsn);
  return Crc32c(trailer, sizeof(trailer), crc);
}

Status FileDisk::ReadSector(BlockNo bno, std::span<uint8_t> out) {
  std::vector<uint8_t> sector(kSectorHeaderBytes + geometry_.block_size);
  RETURN_IF_ERROR(block_file_->ReadAt(SectorOffset(bno), sector));
  const uint32_t magic = LoadU32(sector.data());
  const uint32_t stored_bno = LoadU32(sector.data() + 4);
  const uint64_t epoch = LoadU64(sector.data() + 8);
  const uint64_t lsn = LoadU64(sector.data() + 16);
  const uint32_t crc = LoadU32(sector.data() + 24);
  if (magic == 0 && stored_bno == 0 && lsn == 0 && crc == 0) {
    // Never written: zero-fill, matching MemDisk's virgin-block semantics.
    std::memset(out.data(), 0, out.size());
    return OkStatus();
  }
  if (magic != kSectorMagic) {
    return CorruptError("bad sector magic");
  }
  std::span<const uint8_t> payload(sector.data() + kSectorHeaderBytes,
                                   geometry_.block_size);
  if (SectorCrc(payload, stored_bno, epoch, lsn) != crc) {
    return CorruptError("sector CRC mismatch (torn write?)");
  }
  if (stored_bno != bno) {
    return CorruptError("misdirected write: sector carries another block's data");
  }
  std::memcpy(out.data(), payload.data(), payload.size());
  return OkStatus();
}

Status FileDisk::Read(BlockNo bno, std::span<uint8_t> out) {
  RETURN_IF_ERROR(CheckAccess(bno, out.size()));
  latency_.Charge();
  std::shared_lock<std::shared_mutex> lk(io_mu_);
  if (crashed_.load(std::memory_order_acquire)) {
    return UnavailableError("disk lost power");
  }
  JournalEntry entry;
  bool in_journal = false;
  {
    std::lock_guard<std::mutex> ilock(index_mu_);
    auto it = journal_index_.find(bno);
    if (it != journal_index_.end()) {
      entry = it->second;
      in_journal = true;
    }
  }
  if (in_journal) {
    RETURN_IF_ERROR(journal_file_->ReadAt(entry.payload_offset, out));
    if (Crc32c(out.data(), out.size()) != entry.payload_crc) {
      return CorruptError("journal copy CRC mismatch");
    }
  } else {
    RETURN_IF_ERROR(ReadSector(bno, out));
  }
  reads_->Inc();
  obs::Trace(obs::TraceEvent::kDiskRead, bno);
  return OkStatus();
}

Status FileDisk::Write(BlockNo bno, std::span<const uint8_t> data) {
  RETURN_IF_ERROR(CheckAccess(bno, data.size()));
  latency_.Charge();
  {
    std::shared_lock<std::shared_mutex> lk(io_mu_);
    if (crashed_.load(std::memory_order_acquire)) {
      return UnavailableError("disk lost power");
    }
    ASSIGN_OR_RETURN(Journal::ReplayedRecord rec, journal_->Append(bno, data));
    std::lock_guard<std::mutex> ilock(index_mu_);
    journal_index_[bno] = JournalEntry{rec.lsn, rec.payload_offset, rec.payload_crc};
  }
  writes_->Inc();
  obs::Trace(obs::TraceEvent::kDiskWrite, bno);
  // The write is durable and acknowledged; fold the journal down if it has grown large.
  // try_to_lock: if a checkpoint is already running, this journal growth is its problem.
  if (journal_->tail_bytes() > options_.checkpoint_threshold_bytes) {
    std::unique_lock<std::shared_mutex> lk(io_mu_, std::try_to_lock);
    if (lk.owns_lock()) {
      (void)CheckpointLocked();
    }
  }
  return OkStatus();
}

bool FileDisk::MaybeCrash(CrashPoint point, uint64_t block_keep) {
  if (injector_ == nullptr || !injector_->Fire(point)) {
    return false;
  }
  block_file_->PowerCut(block_keep);
  journal_file_->PowerCut(0);
  journal_->Kill();
  crashed_.store(true, std::memory_order_release);
  return true;
}

Status FileDisk::Checkpoint() {
  std::unique_lock<std::shared_mutex> lk(io_mu_);
  return CheckpointLocked();
}

Status FileDisk::CheckpointLocked() {
  if (crashed_.load(std::memory_order_acquire)) {
    return UnavailableError("disk lost power");
  }
  std::vector<std::pair<BlockNo, JournalEntry>> items;
  {
    std::lock_guard<std::mutex> ilock(index_mu_);
    items.assign(journal_index_.begin(), journal_index_.end());
  }
  if (items.empty()) {
    return OkStatus();
  }
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  if (MaybeCrash(CrashPoint::kBeforeCheckpointApply, 0)) {
    return UnavailableError("simulated power failure before checkpoint apply");
  }

  const uint64_t sector_size = kSectorHeaderBytes + geometry_.block_size;
  std::vector<uint8_t> sector(sector_size);
  uint64_t max_lsn = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    const auto& [bno, entry] = items[i];
    std::span<uint8_t> payload(sector.data() + kSectorHeaderBytes, geometry_.block_size);
    RETURN_IF_ERROR(journal_file_->ReadAt(entry.payload_offset, payload));
    if (Crc32c(payload.data(), payload.size()) != entry.payload_crc) {
      return CorruptError("journal copy CRC mismatch during checkpoint");
    }
    StoreU32(sector.data(), kSectorMagic);
    StoreU32(sector.data() + 4, bno);
    StoreU64(sector.data() + 8, epoch_);
    StoreU64(sector.data() + 16, entry.lsn);
    StoreU32(sector.data() + 24, SectorCrc(payload, bno, epoch_, entry.lsn));
    StoreU32(sector.data() + 28, 0);
    RETURN_IF_ERROR(block_file_->WriteAt(SectorOffset(bno), sector));
    max_lsn = std::max(max_lsn, entry.lsn);
    // Tear the most recent sector in half: the classic mid-checkpoint power cut.
    if (i + 1 == (items.size() + 1) / 2 &&
        MaybeCrash(CrashPoint::kMidCheckpointApply,
                   block_file_->pending_bytes() - sector_size / 2)) {
      return UnavailableError("simulated power failure mid-checkpoint");
    }
  }
  RETURN_IF_ERROR(block_file_->Sync());
  if (MaybeCrash(CrashPoint::kAfterCheckpointApply, 0)) {
    return UnavailableError("simulated power failure before superblock update");
  }

  checkpoint_lsn_ = max_lsn;
  ++superblock_seqno_;
  RETURN_IF_ERROR(WriteSuperblock());
  if (MaybeCrash(CrashPoint::kAfterSuperblockWrite, 0)) {
    return UnavailableError("simulated power failure before superblock sync");
  }
  RETURN_IF_ERROR(block_file_->Sync());
  if (MaybeCrash(CrashPoint::kBeforeJournalTruncate, 0)) {
    return UnavailableError("simulated power failure before journal truncate");
  }
  RETURN_IF_ERROR(journal_->Reset());
  {
    std::lock_guard<std::mutex> ilock(index_mu_);
    for (const auto& [bno, entry] : items) {
      auto it = journal_index_.find(bno);
      if (it != journal_index_.end() && it->second.lsn == entry.lsn) {
        journal_index_.erase(it);
      }
    }
  }
  checkpoints_->Inc();
  checkpoint_blocks_->Inc(items.size());
  return OkStatus();
}

Status FileDisk::Close() {
  if (closed_) {
    return OkStatus();
  }
  closed_ = true;
  Status st = OkStatus();
  if (!crashed_.load(std::memory_order_acquire)) {
    st = Checkpoint();
  }
  if (journal_ != nullptr) {
    journal_->Stop();
  }
  return st;
}

void FileDisk::CorruptBlock(BlockNo bno) {
  std::unique_lock<std::shared_mutex> lk(io_mu_);
  if (crashed_.load(std::memory_order_acquire) || bno >= geometry_.num_blocks) {
    return;
  }
  uint64_t offset = 0;
  StableFile* file = nullptr;
  {
    std::lock_guard<std::mutex> ilock(index_mu_);
    auto it = journal_index_.find(bno);
    if (it != journal_index_.end()) {
      file = journal_file_.get();
      offset = it->second.payload_offset;
    } else {
      file = block_file_.get();
      offset = SectorOffset(bno) + kSectorHeaderBytes;
    }
  }
  uint8_t byte = 0;
  if (!file->ReadAt(offset, std::span<uint8_t>(&byte, 1)).ok()) {
    return;
  }
  byte ^= 0xff;
  (void)file->RawWriteAt(offset, std::span<const uint8_t>(&byte, 1));
}

}  // namespace afs
