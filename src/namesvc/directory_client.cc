#include "src/namesvc/directory_client.h"

#include "src/base/wire.h"
#include "src/namesvc/directory_server.h"
#include "src/rpc/client.h"

namespace afs {

Status DirectoryClient::Enter(const std::string& name, const Capability& target) {
  WireEncoder req;
  req.PutString(name);
  req.PutCapability(target);
  return CallAndCheck(transport_, directory_, static_cast<uint32_t>(DirOp::kEnter),
                      std::move(req))
      .status();
}

Result<Capability> DirectoryClient::Lookup(const std::string& name) {
  WireEncoder req;
  req.PutString(name);
  ASSIGN_OR_RETURN(WireDecoder reply,
                   CallAndCheck(transport_, directory_,
                                static_cast<uint32_t>(DirOp::kLookup), std::move(req)));
  return reply.GetCapability();
}

Status DirectoryClient::Remove(const std::string& name) {
  WireEncoder req;
  req.PutString(name);
  return CallAndCheck(transport_, directory_, static_cast<uint32_t>(DirOp::kRemove),
                      std::move(req))
      .status();
}

Result<std::vector<std::string>> DirectoryClient::List() {
  ASSIGN_OR_RETURN(WireDecoder reply,
                   CallAndCheck(transport_, directory_,
                                static_cast<uint32_t>(DirOp::kList), WireEncoder()));
  ASSIGN_OR_RETURN(uint32_t n, reply.GetU32());
  std::vector<std::string> names;
  names.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(std::string name, reply.GetString());
    names.push_back(std::move(name));
  }
  return names;
}

Result<std::vector<uint8_t>> DirectoryClient::GetShardMap() {
  ASSIGN_OR_RETURN(WireDecoder reply,
                   CallAndCheck(transport_, directory_,
                                static_cast<uint32_t>(DirOp::kGetShardMap), WireEncoder()));
  return reply.GetBytes();
}

Status DirectoryClient::Rename(const std::string& old_name, const std::string& new_name) {
  WireEncoder req;
  req.PutString(old_name);
  req.PutString(new_name);
  return CallAndCheck(transport_, directory_, static_cast<uint32_t>(DirOp::kRename),
                      std::move(req))
      .status();
}

}  // namespace afs
