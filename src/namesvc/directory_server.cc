#include "src/namesvc/directory_server.h"

#include <chrono>

#include "src/base/wire.h"
#include "src/client/transaction.h"
#include "src/obs/span.h"
#include "src/rpc/client.h"

namespace afs {
namespace {

// Times one direct-API handler: a named span for the trace tree plus the per-op latency
// histogram, recorded whether the call arrived over RPC or in-process.
class ScopedOp {
 public:
  ScopedOp(const char* span_name, obs::Counter* count, obs::Histogram* handle_ns)
      : span_(span_name, obs::SpanKind::kServer),
        handle_ns_(handle_ns),
        start_(std::chrono::steady_clock::now()) {
    count->Inc();
  }
  ~ScopedOp() {
    handle_ns_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }
  void set_status(const Status& st) {
    if (!st.ok()) {
      span_.set_status(static_cast<uint8_t>(st.code()));
    }
  }

 private:
  obs::ScopedSpan span_;
  obs::Histogram* handle_ns_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

DirectoryServer::DirectoryServer(Network* network, std::string name,
                                 std::vector<Port> file_servers)
    : Service(network, std::move(name)), files_(network, std::move(file_servers)) {
  op_enter_ = MakeInstrument("enter");
  op_lookup_ = MakeInstrument("lookup");
  op_remove_ = MakeInstrument("remove");
  op_list_ = MakeInstrument("list");
  op_rename_ = MakeInstrument("rename");
  op_shard_map_ = MakeInstrument("shard_map");
}

DirectoryServer::OpInstrument DirectoryServer::MakeInstrument(const std::string& op) {
  OpInstrument instrument;
  instrument.count = metrics()->counter("ns." + op + ".count");
  instrument.handle_ns = metrics()->histogram("ns." + op + ".handle_ns");
  return instrument;
}

Status DirectoryServer::Init() {
  ASSIGN_OR_RETURN(dir_file_, files_.CreateFile());
  return Mutate([](Entries* entries) {
    entries->clear();
    return OkStatus();
  });
}

Status DirectoryServer::Adopt(const Capability& dir_file) {
  dir_file_ = dir_file;
  return OkStatus();
}

Result<DirectoryServer::Entries> DirectoryServer::Decode(std::span<const uint8_t> data) {
  Entries entries;
  if (data.empty()) {
    return entries;
  }
  WireDecoder dec(data);
  ASSIGN_OR_RETURN(uint32_t n, dec.GetU32());
  for (uint32_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(std::string name, dec.GetString());
    ASSIGN_OR_RETURN(Capability cap, dec.GetCapability());
    entries[name] = cap;
  }
  return entries;
}

std::vector<uint8_t> DirectoryServer::Encode(const Entries& entries) {
  WireEncoder enc;
  enc.PutU32(static_cast<uint32_t>(entries.size()));
  for (const auto& [name, cap] : entries) {
    enc.PutString(name);
    enc.PutCapability(cap);
  }
  return std::move(enc).Take();
}

Status DirectoryServer::Mutate(const std::function<Status(Entries*)>& mutate) {
  auto stats = RunTransaction(
      &files_, dir_file_,
      [&](FileClient& client, const Capability& version) -> Status {
        ASSIGN_OR_RETURN(FileClient::ReadResult page, client.ReadPage(version, PagePath::Root()));
        ASSIGN_OR_RETURN(Entries entries, Decode(page.data));
        RETURN_IF_ERROR(mutate(&entries));
        return client.WritePage(version, PagePath::Root(), Encode(entries));
      });
  return stats.status();
}

Result<DirectoryServer::Entries> DirectoryServer::Snapshot() {
  ASSIGN_OR_RETURN(Capability current, files_.GetCurrentVersion(dir_file_));
  ASSIGN_OR_RETURN(FileClient::ReadResult page, files_.ReadPage(current, PagePath::Root()));
  return Decode(page.data);
}

Status DirectoryServer::Enter(const std::string& name, const Capability& target) {
  ScopedOp op("ns.enter", op_enter_.count, op_enter_.handle_ns);
  Status st = Mutate([&](Entries* entries) -> Status {
    if (entries->count(name) > 0) {
      return AlreadyExistsError("directory entry exists: " + name);
    }
    (*entries)[name] = target;
    return OkStatus();
  });
  op.set_status(st);
  return st;
}

Result<Capability> DirectoryServer::Lookup(const std::string& name) {
  ScopedOp op("ns.lookup", op_lookup_.count, op_lookup_.handle_ns);
  ASSIGN_OR_RETURN(Entries entries, Snapshot());
  auto it = entries.find(name);
  if (it == entries.end()) {
    op.set_status(NotFoundError(""));
    return NotFoundError("no directory entry: " + name);
  }
  return it->second;
}

Status DirectoryServer::Remove(const std::string& name) {
  ScopedOp op("ns.remove", op_remove_.count, op_remove_.handle_ns);
  Status st = Mutate([&](Entries* entries) -> Status {
    if (entries->erase(name) == 0) {
      return NotFoundError("no directory entry: " + name);
    }
    return OkStatus();
  });
  op.set_status(st);
  return st;
}

Result<std::vector<std::string>> DirectoryServer::List() {
  ScopedOp op("ns.list", op_list_.count, op_list_.handle_ns);
  ASSIGN_OR_RETURN(Entries entries, Snapshot());
  std::vector<std::string> names;
  names.reserve(entries.size());
  for (const auto& [name, cap] : entries) {
    (void)cap;
    names.push_back(name);
  }
  return names;
}

Status DirectoryServer::Rename(const std::string& old_name, const std::string& new_name) {
  ScopedOp op("ns.rename", op_rename_.count, op_rename_.handle_ns);
  Status st = Mutate([&](Entries* entries) -> Status {
    auto it = entries->find(old_name);
    if (it == entries->end()) {
      return NotFoundError("no directory entry: " + old_name);
    }
    if (entries->count(new_name) > 0) {
      return AlreadyExistsError("directory entry exists: " + new_name);
    }
    (*entries)[new_name] = it->second;
    entries->erase(it);
    return OkStatus();
  });
  op.set_status(st);
  return st;
}

void DirectoryServer::SetShardMapBlob(std::vector<uint8_t> blob) {
  std::lock_guard<std::mutex> lock(shard_map_mu_);
  shard_map_blob_ = std::move(blob);
}

Result<std::vector<uint8_t>> DirectoryServer::ShardMapBlob() const {
  ScopedOp op("ns.shard_map", op_shard_map_.count, op_shard_map_.handle_ns);
  std::lock_guard<std::mutex> lock(shard_map_mu_);
  if (shard_map_blob_.empty()) {
    op.set_status(NotFoundError(""));
    return NotFoundError("this deployment publishes no shard map");
  }
  return shard_map_blob_;
}

Result<Message> DirectoryServer::Handle(const Message& m) {
  WireDecoder in(m.payload);
  switch (static_cast<DirOp>(m.opcode)) {
    case DirOp::kEnter: {
      ASSIGN_OR_RETURN(std::string name, in.GetString());
      ASSIGN_OR_RETURN(Capability cap, in.GetCapability());
      RETURN_IF_ERROR(Enter(name, cap));
      return OkReply(m.opcode);
    }
    case DirOp::kLookup: {
      ASSIGN_OR_RETURN(std::string name, in.GetString());
      ASSIGN_OR_RETURN(Capability cap, Lookup(name));
      WireEncoder out;
      out.PutCapability(cap);
      return OkReply(m.opcode, std::move(out));
    }
    case DirOp::kRemove: {
      ASSIGN_OR_RETURN(std::string name, in.GetString());
      RETURN_IF_ERROR(Remove(name));
      return OkReply(m.opcode);
    }
    case DirOp::kList: {
      ASSIGN_OR_RETURN(std::vector<std::string> names, List());
      WireEncoder out;
      out.PutU32(static_cast<uint32_t>(names.size()));
      for (const std::string& name : names) {
        out.PutString(name);
      }
      return OkReply(m.opcode, std::move(out));
    }
    case DirOp::kRename: {
      ASSIGN_OR_RETURN(std::string old_name, in.GetString());
      ASSIGN_OR_RETURN(std::string new_name, in.GetString());
      RETURN_IF_ERROR(Rename(old_name, new_name));
      return OkReply(m.opcode);
    }
    case DirOp::kGetShardMap: {
      ASSIGN_OR_RETURN(std::vector<uint8_t> blob, ShardMapBlob());
      WireEncoder out;
      out.PutBytes(blob);
      return OkReply(m.opcode, std::move(out));
    }
  }
  return InvalidArgumentError("unknown directory opcode");
}

}  // namespace afs
