// DirectoryServer: a name service built *on top of* the Amoeba File Service, demonstrating
// the storage-services hierarchy of Figure 1 (directory server -> file server -> block
// server). It maps human-readable names to capabilities, the Amoeba way of building a
// namespace out of an otherwise flat capability space.
//
// The whole directory lives in one AFS file: entries are serialized into the root page.
// Every mutation is an atomic AFS transaction (create version / modify / commit), so
// concurrent directory updates from several directory servers are serialised by the file
// service's optimistic concurrency control — this layer needs no locks of its own, and a
// directory-server crash mid-update never corrupts the directory.

#ifndef SRC_NAMESVC_DIRECTORY_SERVER_H_
#define SRC_NAMESVC_DIRECTORY_SERVER_H_

#include <map>
#include <mutex>
#include <string>

#include "src/client/file_client.h"
#include "src/obs/metrics.h"
#include "src/rpc/service.h"

namespace afs {

enum class DirOp : uint32_t {
  kEnter = 1,        // (string name, capability) -> ()        kAlreadyExists if taken
  kLookup = 2,       // (string name) -> (capability)
  kRemove = 3,       // (string name) -> ()
  kList = 4,         // () -> (u32 n, n * string)
  kRename = 5,       // (string old, string new) -> ()          atomic
  kGetShardMap = 6,  // () -> (bytes)   encoded ShardMap; kNotFound if none published
};

class DirectoryServer : public Service {
 public:
  // The directory file is created on Init (or adopted if `dir_file` is non-null, so
  // several directory servers can serve one directory).
  DirectoryServer(Network* network, std::string name, std::vector<Port> file_servers);

  Status Init();
  Status Adopt(const Capability& dir_file);
  Capability directory_file() const { return dir_file_; }

  // Direct API.
  Status Enter(const std::string& name, const Capability& target);
  Result<Capability> Lookup(const std::string& name);
  Status Remove(const std::string& name);
  Result<std::vector<std::string>> List();
  Status Rename(const std::string& old_name, const std::string& new_name);

  // Shard-map publication (src/shard): the deployment hands the encoded ShardMap to its
  // directory server; clients bootstrap their routers from it (DirOp::kGetShardMap).
  // The blob is opaque at this layer — namesvc does not depend on src/shard.
  void SetShardMapBlob(std::vector<uint8_t> blob);
  Result<std::vector<uint8_t>> ShardMapBlob() const;

 protected:
  Result<Message> Handle(const Message& request) override;

 private:
  using Entries = std::map<std::string, Capability>;
  static Result<Entries> Decode(std::span<const uint8_t> data);
  static std::vector<uint8_t> Encode(const Entries& entries);
  // Run one atomic read-modify-write of the directory contents. `mutate` returns the
  // status to commit with (non-ok aborts and is returned).
  Status Mutate(const std::function<Status(Entries*)>& mutate);
  Result<Entries> Snapshot();

  // Direct-API instrumentation, parity with the RPC path's per-op rpc.op.*.handle_ns:
  // every direct call records a named handler span (ns.enter, ns.lookup, ...) and a per-op
  // latency histogram — so in-process deployments (which never cross Handle()) and remote
  // ones measure the same handlers, including shard-map resolution.
  struct OpInstrument {
    obs::Counter* count = nullptr;
    obs::Histogram* handle_ns = nullptr;
  };
  OpInstrument MakeInstrument(const std::string& op);
  OpInstrument op_enter_;
  OpInstrument op_lookup_;
  OpInstrument op_remove_;
  OpInstrument op_list_;
  OpInstrument op_rename_;
  OpInstrument op_shard_map_;

  FileClient files_;
  Capability dir_file_;

  mutable std::mutex shard_map_mu_;
  std::vector<uint8_t> shard_map_blob_;
};

}  // namespace afs

#endif  // SRC_NAMESVC_DIRECTORY_SERVER_H_
