// DirectoryClient: client-side stub of the DirectoryServer RPC protocol (DirOp).
//
// The in-process deployments talk to DirectoryServer through its direct API; a remote
// client (afs_shell --connect) only has the directory's port, so it speaks the same DirOp
// wire protocol the server's Handle() serves. Works over any Transport backend.

#ifndef SRC_NAMESVC_DIRECTORY_CLIENT_H_
#define SRC_NAMESVC_DIRECTORY_CLIENT_H_

#include <string>
#include <vector>

#include "src/base/capability.h"
#include "src/base/status.h"
#include "src/rpc/transport.h"

namespace afs {

class DirectoryClient {
 public:
  DirectoryClient(Transport* transport, Port directory) : transport_(transport), directory_(directory) {}

  Status Enter(const std::string& name, const Capability& target);
  Result<Capability> Lookup(const std::string& name);
  Status Remove(const std::string& name);
  Result<std::vector<std::string>> List();
  Status Rename(const std::string& old_name, const std::string& new_name);
  // The deployment's encoded ShardMap (decode with ShardMap::Decode); kNotFound when the
  // deployment is unsharded.
  Result<std::vector<uint8_t>> GetShardMap();

  Port directory_port() const { return directory_; }

 private:
  Transport* transport_;
  Port directory_;
};

}  // namespace afs

#endif  // SRC_NAMESVC_DIRECTORY_CLIENT_H_
