// Thin POSIX TCP helpers shared by the server core and the client transport.
//
// Everything is non-blocking: sockets are put in O_NONBLOCK at creation and progress is
// driven either by the server's epoll loop or, on the client side, by the poll()-based
// deadline helpers below. Failures map onto AFS Status codes at the call site; these
// helpers only report errno-level facts (kUnavailable for dial/IO failure, kTimeout for an
// expired deadline) and never block past their deadline.

#ifndef SRC_NET_SOCKET_H_
#define SRC_NET_SOCKET_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

#include "src/base/status.h"

namespace afs {
namespace net {

// Create a non-blocking listening socket bound to host:port (port 0 = kernel-assigned;
// read it back with LocalPort). SO_REUSEADDR is set so test servers can rebind quickly.
Result<int> ListenTcp(const std::string& host, uint16_t port, int backlog = 128);

// The locally bound port of a socket (after ListenTcp with port 0).
Result<uint16_t> LocalPort(int fd);

// Non-blocking connect with a deadline. Returns a connected non-blocking fd.
// A refused connection (nobody listening — the TCP crash warning) fails with kCrashed;
// an expired deadline fails with kTimeout; anything else with kUnavailable.
Result<int> DialTcp(const std::string& host, uint16_t port, std::chrono::milliseconds timeout);

// Put an accepted fd in non-blocking mode and disable Nagle (frames are small and
// latency-sensitive).
Status PrepareConnection(int fd);

// Write all n bytes before the deadline, polling for writability as needed.
// kTimeout on deadline expiry; kCrashed on EPIPE/ECONNRESET (peer died mid-write);
// kUnavailable on any other socket error.
Status SendAll(int fd, const uint8_t* data, size_t n,
               std::chrono::steady_clock::time_point deadline);

// Read at least one byte (up to n) before the deadline. Returns the byte count; 0 means
// the peer closed the stream cleanly (EOF). kTimeout on deadline expiry; kUnavailable on
// socket error (ECONNRESET included — the caller maps close/reset to kCrashed itself,
// since EOF and RST both mean "the server went away").
Result<size_t> RecvSome(int fd, uint8_t* buf, size_t n,
                        std::chrono::steady_clock::time_point deadline);

// True if the peer already closed or reset the connection (a non-destructive peek used to
// discard stale pooled connections before reusing them). Buffered unread bytes do not
// count as dead.
bool PeerClosed(int fd);

// Split "host:port" (e.g. "127.0.0.1:7001"). The port must parse and be non-zero.
Result<std::pair<std::string, uint16_t>> SplitHostPort(const std::string& hostport);

}  // namespace net
}  // namespace afs

#endif  // SRC_NET_SOCKET_H_
