// Length-prefixed binary framing of the AFS Message codec for stream transports.
//
// A frame is one transaction message on a TCP byte stream (docs/NET.md §1):
//
//   u32 magic        0xAF534E31 ("AFS N1")
//   u32 body_len     bytes following, in [kMinFrameBody, kMaxFrameBody]
//   body:
//     u8  type       1=request, 2=reply-ok, 3=reply-error
//     u64 seq        connection-local correlation id (reply echoes its request's seq)
//     u64 target     AFS port the request addresses (kNullPort = transport control plane)
//     u32 opcode
//     u32 deadline_ms  request: the client's per-attempt timeout, so the server bounds its
//                      reply-cache wait the same way the in-process Submit() does; 0 in
//                      replies
//     u64 client_id, txn_id        at-most-once identity (PR 4) — rides the wire unchanged
//     u64 trace_id, span_id, parent_span_id   causal trace context — ditto
//     then: payload bytes (request / reply-ok), or u32 code + string message (reply-error)
//
// Reply-error frames carry transport- and service-level Status failures (kCrashed from a
// dead Service, kNotFound for an unexposed port, kTimeout from an overrun handler); the
// application-level status header INSIDE reply payloads (src/rpc/client.h) is untouched.
//
// FrameReader is an incremental parser over arbitrary read() chunk boundaries. Malformed
// input — bad magic (garbage prefix), zero-length or undersized body, body over
// kMaxFrameBody, truncated fields, unknown type — fails with a clean kInvalidArgument and
// never undefined behaviour; the connection must then be closed (the stream cannot be
// resynchronised). Torn frames (clean prefix of a valid frame) simply wait for more bytes.

#ifndef SRC_NET_FRAME_H_
#define SRC_NET_FRAME_H_

#include <cstdint>
#include <vector>

#include "src/base/capability.h"
#include "src/base/status.h"
#include "src/rpc/message.h"

namespace afs {
namespace net {

inline constexpr uint32_t kFrameMagic = 0xAF534E31;
inline constexpr size_t kFrameHeaderBytes = 8;  // magic + body_len

// Transport control plane: requests addressed to target == kNullPort are handled by the
// TcpServer itself, not forwarded to a Service. This is how a remote client reaches the
// server-side port table — transaction ports are allocated in the SERVER's Network, scoped
// to the client connection that allocated them, so a dead client's ports (and therefore its
// locks, §5.3) die with its connection. Control requests are exempt from the socket fault
// shim, matching the simulated backend where AllocatePort is a local table operation.
inline constexpr uint32_t kNetHello = 0xAF5E0001;      // -> service manifest + root cap
inline constexpr uint32_t kNetAllocPort = 0xAF5E0002;  // u64 parent -> u64 port
inline constexpr uint32_t kNetClosePort = 0xAF5E0003;  // u64 port -> ()
inline constexpr uint32_t kNetPortAlive = 0xAF5E0004;  // u64 port -> u8 alive
// () -> u64 client-id base. Every remote transport stamps its at-most-once identities
// from a server-allocated base so two client PROCESSES can never collide in a service's
// reply cache (each base is a disjoint 2^32-wide namespace; in-process stubs use small
// transport-local ids, below any base).
inline constexpr uint32_t kNetClientId = 0xAF5E0005;

enum class FrameType : uint8_t {
  kRequest = 1,
  kReplyOk = 2,
  kReplyError = 3,
};

// Fixed body fields: type(1) seq(8) target(8) opcode(4) deadline_ms(4) + 5 u64 ids.
inline constexpr size_t kMinFrameBody = 1 + 8 + 8 + 4 + 4 + 5 * 8;
// One transaction message plus framing slack (error strings, length prefixes).
inline constexpr size_t kMaxFrameBody = kMaxMessageBytes + 1024;

struct Frame {
  FrameType type = FrameType::kRequest;
  uint64_t seq = 0;
  Port target = kNullPort;
  uint32_t deadline_ms = 0;
  // opcode, at-most-once identity, trace context, and payload (unused for kReplyError).
  Message message;
  // kReplyError only (message.payload stays empty).
  Status error = OkStatus();
};

// Serialise a frame, header included.
std::vector<uint8_t> EncodeFrame(const Frame& frame);

// Convenience constructors.
Frame MakeRequestFrame(uint64_t seq, Port target, Message message, uint32_t deadline_ms);
Frame MakeReplyFrame(uint64_t seq, Message message);
Frame MakeErrorFrame(uint64_t seq, uint32_t opcode, const Status& status);

class FrameReader {
 public:
  // Append raw bytes read from the socket.
  void Feed(const uint8_t* data, size_t n);

  // Extract the next complete frame. Returns true and fills *out when one is available,
  // false when more bytes are needed (torn frame), or kInvalidArgument when the stream is
  // malformed — the caller must close the connection.
  Result<bool> Next(Frame* out);

  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;
};

}  // namespace net
}  // namespace afs

#endif  // SRC_NET_FRAME_H_
