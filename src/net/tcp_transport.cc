#include "src/net/tcp_transport.h"

#include <unistd.h>

#include <algorithm>
#include <random>
#include <thread>
#include <utility>

#include "src/base/wire.h"
#include "src/net/socket.h"
#include "src/obs/trace.h"

namespace afs {
namespace net {

TcpTransport::Conn::~Conn() {
  if (fd >= 0) {
    close(fd);
  }
}

TcpTransport::TcpTransport(std::string host, uint16_t port)
    : TcpTransport(std::move(host), port, Options()) {}

TcpTransport::TcpTransport(std::string host, uint16_t port, Options options)
    : Transport("net"),
      host_(std::move(host)),
      port_(port),
      options_(options),
      rng_(options.seed) {}

TcpTransport::~TcpTransport() = default;

void TcpTransport::set_fault_injection(const FaultInjection& faults) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_ = faults;
}

FaultInjection TcpTransport::fault_injection() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_;
}

void TcpTransport::SetPartitioned(Port port, bool partitioned) {
  std::lock_guard<std::mutex> lock(mu_);
  if (partitioned) {
    partitioned_.insert(port);
  } else {
    partitioned_.erase(port);
  }
}

bool TcpTransport::RollFault(double p) {
  if (p <= 0.0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.NextBool(p);
}

uint64_t TcpTransport::JitterBelow(uint64_t lo, uint64_t hi) {
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.NextInRange(lo, hi);
}

uint64_t TcpTransport::NewClientId() {
  uint64_t base = client_id_base_.load(std::memory_order_acquire);
  if (base == 0) {
    auto reply = ControlCall(kNetClientId, {});
    if (reply.ok()) {
      WireDecoder dec(std::span<const uint8_t>(reply->payload));
      if (auto fetched = dec.GetU64(); fetched.ok() && *fetched != 0) {
        base = *fetched;
      }
    }
    if (base == 0) {
      // Server unreachable (the stamped call will fail too, but the binding is cached per
      // thread, so it must still be collision-free): high bit set so it can never meet a
      // served base, entropy from the OS — NOT the seeded rng_, which two client processes
      // may share a seed for.
      std::random_device rd;
      base = ((static_cast<uint64_t>(rd()) << 32) | (1ull << 63)) & ~0xFFFFFFFFull;
    }
    uint64_t expected = 0;
    if (!client_id_base_.compare_exchange_strong(expected, base,
                                                 std::memory_order_acq_rel)) {
      base = expected;  // another thread fetched first; share its namespace
    }
  }
  return base | local_client_seq_.fetch_add(1, std::memory_order_relaxed);
}

// -- Connection pool ---------------------------------------------------------

Result<std::unique_ptr<TcpTransport::Conn>> TcpTransport::Checkout(
    std::chrono::steady_clock::time_point deadline) {
  while (true) {
    std::unique_ptr<Conn> conn;
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      if (!pool_.empty()) {
        conn = std::move(pool_.back());
        pool_.pop_back();
      }
    }
    if (!conn) {
      break;
    }
    // A pooled connection the server idle-closed would read as EOF mid-call and
    // masquerade as a crash; discard it here instead (its FIN is already queued).
    if (!PeerClosed(conn->fd)) {
      return conn;
    }
  }
  auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  auto dial_timeout = std::min(options_.dial_timeout, std::max(remaining, std::chrono::milliseconds(1)));
  ASSIGN_OR_RETURN(int fd, DialTcp(host_, port_, dial_timeout));
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  return conn;
}

void TcpTransport::Checkin(std::unique_ptr<Conn> conn) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_.size() < options_.max_pooled_connections) {
    pool_.push_back(std::move(conn));
  }
  // else: destructor closes the fd
}

// -- One attempt --------------------------------------------------------------

Result<Message> TcpTransport::RoundTrip(Conn* conn, const Frame& frame, bool duplicate,
                                        std::chrono::steady_clock::time_point deadline,
                                        bool* conn_broken) {
  *conn_broken = true;  // cleared only on the clean paths
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  RETURN_IF_ERROR(SendAll(conn->fd, bytes.data(), bytes.size(), deadline));
  if (duplicate) {
    // Duplicate delivery: the same stamped frame hits the server twice. The extra reply
    // is left in the stream and discarded by seq-matching (here or on the next call).
    RETURN_IF_ERROR(SendAll(conn->fd, bytes.data(), bytes.size(), deadline));
  }
  uint8_t buf[16 * 1024];
  while (true) {
    Frame reply;
    while (true) {
      ASSIGN_OR_RETURN(bool got, conn->reader.Next(&reply));
      if (got) {
        break;
      }
      ASSIGN_OR_RETURN(size_t n, RecvSome(conn->fd, buf, sizeof(buf), deadline));
      if (n == 0) {
        // Clean EOF: the server process went away under us — the crash warning (§5.3).
        return CrashedError("server closed connection");
      }
      conn->reader.Feed(buf, n);
    }
    if (reply.seq != frame.seq) {
      continue;  // stale reply from an earlier duplicate send on this connection
    }
    if (reply.type == FrameType::kReplyOk) {
      *conn_broken = false;
      return std::move(reply.message);
    }
    if (reply.type == FrameType::kReplyError) {
      *conn_broken = false;
      return reply.error;
    }
    return InvalidArgumentError("server sent a request frame");
  }
}

Result<Message> TcpTransport::CallOnce(Port target, const Message& request,
                                       const CallOptions& options) {
  sends_->Inc();
  obs::Trace(obs::TraceEvent::kRpcSend, target, request.opcode);
  const FaultInjection faults = fault_injection();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (partitioned_.count(target) > 0) {
      partition_drops_->Inc();
      return UnavailableError("port partitioned");
    }
  }
  if (RollFault(faults.reorder_delay)) {
    reorder_delays_->Inc();
    uint64_t max_us = static_cast<uint64_t>(faults.reorder_max.count());
    if (max_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(JitterBelow(0, max_us)));
    }
  }
  if (RollFault(faults.drop_request)) {
    // Lost before it reaches the wire, like a dropped datagram.
    timeouts_->Inc();
    obs::Trace(obs::TraceEvent::kRpcTimeout, target);
    return TimeoutError("request dropped");
  }
  auto deadline = std::chrono::steady_clock::now() + options.timeout;
  auto checkout = Checkout(deadline);
  if (!checkout.ok()) {
    if (checkout.status().code() == ErrorCode::kCrashed) {
      crashed_calls_->Inc();
    }
    return checkout.status();
  }
  std::unique_ptr<Conn> conn = std::move(checkout).value();
  const bool duplicate = request.client_id != 0 && RollFault(faults.duplicate_request);
  if (duplicate) {
    dup_deliveries_->Inc();
  }
  Frame frame = MakeRequestFrame(conn->next_seq++, target, Message(request),
                                 static_cast<uint32_t>(options.timeout.count()));
  bool conn_broken = false;
  Result<Message> reply = RoundTrip(conn.get(), frame, duplicate, deadline, &conn_broken);
  if (!conn_broken) {
    Checkin(std::move(conn));
  }
  // else: drop the connection; a retransmission dials a fresh one.
  if (reply.ok() && RollFault(faults.drop_reply)) {
    // The reply was consumed off the wire, then lost. The retransmission is answered from
    // the server's reply cache without re-execution.
    reply_drops_->Inc();
    obs::Trace(obs::TraceEvent::kRpcTimeout, target, request.opcode);
    return TimeoutError("reply dropped");
  }
  if (!reply.ok() && reply.status().code() == ErrorCode::kCrashed) {
    crashed_calls_->Inc();
  }
  return reply;
}

// -- Control plane ------------------------------------------------------------

Result<Message> TcpTransport::ControlCall(uint32_t opcode,
                                          std::vector<uint8_t> payload) const {
  std::lock_guard<std::mutex> lock(control_mu_);
  Status last = OkStatus();
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto deadline = std::chrono::steady_clock::now() + options_.control_timeout;
    if (!control_) {
      auto fd = DialTcp(host_, port_, options_.dial_timeout);
      if (!fd.ok()) {
        last = fd.status();
        continue;
      }
      control_ = std::make_unique<Conn>();
      control_->fd = *fd;
    }
    Frame frame = MakeRequestFrame(
        control_->next_seq++, kNullPort, Message(opcode, payload),
        static_cast<uint32_t>(options_.control_timeout.count()));
    bool conn_broken = false;
    // ControlCall is const so IsPortAlive (polled by lock waiters) can stay const across
    // the Transport interface; RoundTrip only touches the connection itself.
    Result<Message> reply = const_cast<TcpTransport*>(this)->RoundTrip(
        control_.get(), frame, /*duplicate=*/false, deadline, &conn_broken);
    if (conn_broken) {
      control_.reset();
    }
    if (reply.ok() || attempt == 1 || !conn_broken) {
      return reply;
    }
    last = reply.status();
  }
  return last;
}

Port TcpTransport::AllocatePort(Port parent) {
  WireEncoder enc;
  enc.PutU64(parent);
  Result<Message> reply = ControlCall(kNetAllocPort, std::move(enc).Take());
  if (!reply.ok()) {
    return kNullPort;  // server unreachable: every call will fail anyway
  }
  WireDecoder dec(std::span<const uint8_t>(reply->payload));
  auto port = dec.GetU64();
  return port.ok() ? *port : kNullPort;
}

void TcpTransport::ClosePort(Port port) {
  WireEncoder enc;
  enc.PutU64(port);
  (void)ControlCall(kNetClosePort, std::move(enc).Take());
}

bool TcpTransport::IsPortAlive(Port port) const {
  WireEncoder enc;
  enc.PutU64(port);
  Result<Message> reply = ControlCall(kNetPortAlive, std::move(enc).Take());
  if (!reply.ok()) {
    // Unreachable server: nobody is there to honour the port's locks, so report dead and
    // let waiters steal — the same conclusion a local waiter reaches when a server dies.
    return false;
  }
  WireDecoder dec(std::span<const uint8_t>(reply->payload));
  auto alive = dec.GetU8();
  return alive.ok() && *alive != 0;
}

Result<TcpTransport::HelloInfo> TcpTransport::SayHello() {
  ASSIGN_OR_RETURN(Message reply, ControlCall(kNetHello, {}));
  WireDecoder dec(std::span<const uint8_t>(reply.payload));
  HelloInfo info;
  ASSIGN_OR_RETURN(uint32_t count, dec.GetU32());
  for (uint32_t i = 0; i < count; ++i) {
    HelloEntry entry;
    ASSIGN_OR_RETURN(entry.name, dec.GetString());
    ASSIGN_OR_RETURN(entry.port, dec.GetU64());
    ASSIGN_OR_RETURN(entry.kind, dec.GetU8());
    info.services.push_back(std::move(entry));
  }
  ASSIGN_OR_RETURN(uint8_t has_root, dec.GetU8());
  info.has_root = has_root != 0;
  if (info.has_root) {
    ASSIGN_OR_RETURN(info.root, dec.GetCapability());
  }
  return info;
}

}  // namespace net
}  // namespace afs
