// TcpServer: the async server core that exposes an in-process AFS deployment over TCP.
//
// One epoll event-loop thread owns every socket: it accepts connections (rejecting past
// the connection limit), reads bytes into per-connection FrameReaders, flushes per-
// connection write buffers, and sweeps idle connections. Decoded request frames are handed
// to a small dispatcher pool which performs the blocking Service::Submit() — the SAME entry
// the simulated Network uses, so the at-most-once reply cache, duplicate coalescing, and
// kCrashed semantics are identical over sockets. Dispatchers never touch sockets: a
// finished reply is appended to the connection's write buffer and the loop is woken with an
// eventfd. Threading model details in docs/NET.md §3.
//
// Requests addressed to kNullPort form the control plane (port allocation, liveness,
// the hello manifest — opcodes in frame.h). Ports a connection allocates are closed when
// the connection dies, which is what makes a crashed REMOTE client's locks stealable: its
// transaction ports die with its TCP connection, and IsPortAlive turns false for every
// lock waiter polling them.

#ifndef SRC_NET_TCP_SERVER_H_
#define SRC_NET_TCP_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/base/capability.h"
#include "src/base/status.h"
#include "src/net/frame.h"
#include "src/obs/metrics.h"
#include "src/rpc/network.h"

namespace afs {

class Service;

namespace net {

// Manifest entry kinds, part of the hello reply wire format.
enum class ServiceKind : uint8_t {
  kOther = 0,
  kFileServer = 1,
  kBlockServer = 2,
  kDirectoryServer = 3,
};

class TcpServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;  // 0 = kernel-assigned; read back with port()
    int max_connections = 64;
    // Idle connections are closed after this long without traffic; 0 disables the sweep.
    std::chrono::milliseconds idle_timeout{0};
    int num_dispatchers = 4;
    // Upper bound on the per-request Submit() wait, whatever deadline the frame claims
    // (a hostile frame must not park a dispatcher for an hour).
    std::chrono::milliseconds max_request_timeout{10000};
  };

  // `network` is the server process's in-process Network; every Service reachable over this
  // TcpServer is bound there. The server resolves target ports through it, so inner
  // crash/partition state surfaces to remote callers exactly as it does in-process.
  explicit TcpServer(Network* network);
  TcpServer(Network* network, Options options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Add a service to the hello manifest (it must already be Start()ed on the inner
  // network). Exposure is advisory — any port bound in the inner network is reachable once
  // the server runs; the manifest just tells clients which port is which.
  void Expose(Service* service, const std::string& name, ServiceKind kind);
  // Root directory capability handed out in the hello reply (afs_server sets this so a
  // fresh shell can find the namespace).
  void set_root_capability(const Capability& root);

  Status Start();
  void Stop();

  bool running() const { return running_; }
  uint16_t port() const { return listen_port_; }
  const std::string& host() const { return options_.host; }

  obs::MetricRegistry* metrics() { return &metrics_; }

 private:
  struct Conn {
    uint64_t id = 0;
    int fd = -1;
    FrameReader reader;
    // steady_clock nanos of the last traffic; atomic because dispatchers refresh it when
    // they finish a reply while the loop thread reads it in the idle sweep.
    std::atomic<int64_t> last_active_ns{0};
    // Requests decoded but not yet replied to; an idle sweep never closes a connection
    // with work in flight.
    std::atomic<int> inflight{0};

    // out_mu guards everything below. Dispatchers append reply bytes under it; `closed`
    // stops late appends after the loop tears the connection down; `ports` holds the
    // transaction ports this connection allocated via kNetAllocPort, closed (and thus
    // observable as dead by lock waiters) when the connection goes away.
    std::mutex out_mu;
    std::vector<uint8_t> out;
    size_t out_pos = 0;
    bool closed = false;
    std::unordered_set<Port> ports;
    bool want_write = false;  // loop-thread only: EPOLLOUT currently armed
  };

  struct WorkItem {
    std::shared_ptr<Conn> conn;
    Frame frame;
  };

  void LoopThread();
  void DispatcherThread();

  void AcceptReady();
  void ReadReady(const std::shared_ptr<Conn>& conn);
  // Flush as much buffered output as the socket accepts; arms/disarms EPOLLOUT.
  void FlushConn(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  void SweepIdle();

  // Dispatcher side: run one request and append its reply.
  void Dispatch(const WorkItem& item);
  Frame HandleControl(const std::shared_ptr<Conn>& conn, const Frame& request);
  void AppendReply(const std::shared_ptr<Conn>& conn, const Frame& reply);

  std::shared_ptr<Conn> FindConn(uint64_t id);

  Network* network_;
  Options options_;

  obs::MetricRegistry metrics_{"net.tcp"};
  obs::Counter* accepts_ = metrics_.counter("net.tcp.accepts");
  obs::Counter* limit_rejects_ = metrics_.counter("net.tcp.conn_limit_rejects");
  obs::Counter* idle_closes_ = metrics_.counter("net.tcp.idle_closes");
  obs::Counter* frames_in_ = metrics_.counter("net.tcp.frames_in");
  obs::Counter* frames_out_ = metrics_.counter("net.tcp.frames_out");
  obs::Counter* frame_errors_ = metrics_.counter("net.tcp.frame_errors");
  obs::Counter* control_calls_ = metrics_.counter("net.tcp.control_calls");
  obs::Counter* error_replies_ = metrics_.counter("net.tcp.error_replies");
  obs::Gauge* conns_gauge_ = metrics_.gauge("net.tcp.connections");
  obs::Histogram* dispatch_ns_ = metrics_.histogram("net.tcp.dispatch_ns");

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: dispatchers wake the loop to flush replies
  uint16_t listen_port_ = 0;
  std::atomic<bool> running_{false};

  std::thread loop_;
  std::vector<std::thread> dispatchers_;

  std::mutex conns_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listen fd, 1 = wake fd in epoll user data
  // Client-id bases handed to remote transports (kNetClientId); base 0 is never issued,
  // keeping the low 2^32 ids for the server process's own in-process stubs.
  std::atomic<uint64_t> next_client_base_{1};

  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<WorkItem> work_;
  bool work_stop_ = false;

  std::mutex manifest_mu_;
  struct ManifestEntry {
    std::string name;
    Port port;
    ServiceKind kind;
  };
  std::vector<ManifestEntry> manifest_;
  bool has_root_ = false;
  Capability root_{};
};

}  // namespace net
}  // namespace afs

#endif  // SRC_NET_TCP_SERVER_H_
