#include "src/net/frame.h"

#include <cstring>

#include "src/base/wire.h"

namespace afs {
namespace net {

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  WireEncoder body;
  body.PutU8(static_cast<uint8_t>(frame.type));
  body.PutU64(frame.seq);
  body.PutU64(frame.target);
  body.PutU32(frame.message.opcode);
  body.PutU32(frame.deadline_ms);
  body.PutU64(frame.message.client_id);
  body.PutU64(frame.message.txn_id);
  body.PutU64(frame.message.trace_id);
  body.PutU64(frame.message.span_id);
  body.PutU64(frame.message.parent_span_id);
  if (frame.type == FrameType::kReplyError) {
    body.PutU32(static_cast<uint32_t>(frame.error.code()));
    body.PutString(frame.error.message());
  } else {
    body.PutRaw(frame.message.payload);
  }
  WireEncoder out;
  out.PutU32(kFrameMagic);
  out.PutU32(static_cast<uint32_t>(body.size()));
  out.PutRaw(body.buffer());
  return std::move(out).Take();
}

Frame MakeRequestFrame(uint64_t seq, Port target, Message message, uint32_t deadline_ms) {
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.seq = seq;
  frame.target = target;
  frame.deadline_ms = deadline_ms;
  frame.message = std::move(message);
  return frame;
}

Frame MakeReplyFrame(uint64_t seq, Message message) {
  Frame frame;
  frame.type = FrameType::kReplyOk;
  frame.seq = seq;
  frame.message = std::move(message);
  return frame;
}

Frame MakeErrorFrame(uint64_t seq, uint32_t opcode, const Status& status) {
  Frame frame;
  frame.type = FrameType::kReplyError;
  frame.seq = seq;
  frame.message.opcode = opcode;
  frame.error = status;
  return frame;
}

void FrameReader::Feed(const uint8_t* data, size_t n) {
  // Compact once the consumed prefix dominates, so the buffer cannot grow without bound
  // across a long-lived connection.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 64 * 1024)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

Result<bool> FrameReader::Next(Frame* out) {
  if (buffered() < kFrameHeaderBytes) {
    return false;  // torn header: wait for more bytes
  }
  const uint8_t* p = buf_.data() + pos_;
  uint32_t magic = 0;
  uint32_t body_len = 0;
  std::memcpy(&magic, p, 4);
  std::memcpy(&body_len, p + 4, 4);
  if (magic != kFrameMagic) {
    return InvalidArgumentError("bad frame magic (garbage on stream)");
  }
  if (body_len < kMinFrameBody) {
    return InvalidArgumentError(body_len == 0 ? "zero-length frame"
                                              : "frame body below minimum");
  }
  if (body_len > kMaxFrameBody) {
    return InvalidArgumentError("frame exceeds maximum message size");
  }
  if (buffered() < kFrameHeaderBytes + body_len) {
    return false;  // torn body: wait for more bytes
  }
  WireDecoder dec(std::span<const uint8_t>(p + kFrameHeaderBytes, body_len));
  ASSIGN_OR_RETURN(uint8_t type, dec.GetU8());
  if (type < static_cast<uint8_t>(FrameType::kRequest) ||
      type > static_cast<uint8_t>(FrameType::kReplyError)) {
    return InvalidArgumentError("unknown frame type");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  ASSIGN_OR_RETURN(frame.seq, dec.GetU64());
  ASSIGN_OR_RETURN(frame.target, dec.GetU64());
  ASSIGN_OR_RETURN(frame.message.opcode, dec.GetU32());
  ASSIGN_OR_RETURN(frame.deadline_ms, dec.GetU32());
  ASSIGN_OR_RETURN(frame.message.client_id, dec.GetU64());
  ASSIGN_OR_RETURN(frame.message.txn_id, dec.GetU64());
  ASSIGN_OR_RETURN(frame.message.trace_id, dec.GetU64());
  ASSIGN_OR_RETURN(frame.message.span_id, dec.GetU64());
  ASSIGN_OR_RETURN(frame.message.parent_span_id, dec.GetU64());
  if (frame.type == FrameType::kReplyError) {
    ASSIGN_OR_RETURN(uint32_t code, dec.GetU32());
    ASSIGN_OR_RETURN(std::string text, dec.GetString());
    if (code == static_cast<uint32_t>(ErrorCode::kOk) ||
        code > static_cast<uint32_t>(ErrorCode::kInternal)) {
      return InvalidArgumentError("error frame with invalid status code");
    }
    frame.error = Status(static_cast<ErrorCode>(code), std::move(text));
  } else {
    ASSIGN_OR_RETURN(frame.message.payload, dec.GetRaw(dec.remaining()));
    if (frame.message.payload.size() > kMaxMessageBytes) {
      return InvalidArgumentError("frame payload exceeds 32K transaction limit");
    }
  }
  pos_ += kFrameHeaderBytes + body_len;
  *out = std::move(frame);
  return true;
}

}  // namespace net
}  // namespace afs
