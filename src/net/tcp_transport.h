// TcpTransport: the real-socket Transport backend (client side of src/net).
//
// One TcpTransport speaks to one TcpServer (host:port). The at-most-once machinery —
// stamping, retransmission, backoff — lives in the Transport base class and is untouched;
// this backend supplies one network attempt: check out a pooled connection (dialling with a
// timeout if the pool is dry), send one request frame, await the matching reply by
// connection-local seq. Failure mapping is the paper's crash-warning analog over TCP:
// a refused dial, a clean EOF, or an RST all mean "the server process went away" and
// surface as kCrashed immediately (never retransmitted); an expired deadline surfaces as
// kTimeout, the connection is closed, and the base class's retransmission dials a fresh
// one (reconnect-on-retransmit).
//
// Port management goes over the wire: transaction ports are allocated in the SERVER's
// Network via control requests (frame.h), scoped to this transport's control connection.
// If this process dies, the server closes the control connection's ports, so remote lock
// waiters see the §5.3 liveness transition exactly as local ones do.
//
// Fault shim: the same FaultInjection knobs as the simulated Network, applied at the
// socket boundary per attempt (drop-before-send, reply consumed-then-dropped, duplicate
// frame send, bounded reorder sleep, per-target partitions), all drawn from one seeded
// Rng. Control requests are exempt, matching the simulated backend where port management
// is a local table operation. docs/NET.md §4 defines the exact roll order.

#ifndef SRC_NET_TCP_TRANSPORT_H_
#define SRC_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/base/capability.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/net/frame.h"
#include "src/rpc/transport.h"

namespace afs {
namespace net {

class TcpTransport : public Transport {
 public:
  struct Options {
    uint64_t seed = 1;
    std::chrono::milliseconds dial_timeout{1000};
    // Deadline for control-plane requests (port management, hello).
    std::chrono::milliseconds control_timeout{1000};
    size_t max_pooled_connections = 8;
  };

  TcpTransport(std::string host, uint16_t port);
  TcpTransport(std::string host, uint16_t port, Options options);
  ~TcpTransport() override;

  // -- Port management (remote; see header comment) -------------------------

  Port AllocatePort(Port parent = kNullPort) override;  // kNullPort if the server is gone
  void ClosePort(Port port) override;
  // False when the port is dead OR the server is unreachable — either way the holder is
  // not there to honour its locks, so waiters may steal.
  bool IsPortAlive(Port port) const override;

  // -- Fault shim -----------------------------------------------------------

  void set_fault_injection(const FaultInjection& faults) override;
  FaultInjection fault_injection() const override;
  void SetPartitioned(Port port, bool partitioned) override;

  // -- Discovery ------------------------------------------------------------

  struct HelloEntry {
    std::string name;
    Port port = kNullPort;
    uint8_t kind = 0;  // net::ServiceKind
  };
  struct HelloInfo {
    std::vector<HelloEntry> services;
    bool has_root = false;
    Capability root{};
  };
  // The server's manifest: which inner port is which service, plus the root directory
  // capability if the server published one.
  Result<HelloInfo> SayHello();

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

 protected:
  Result<Message> CallOnce(Port target, const Message& request,
                           const CallOptions& options) override;
  uint64_t JitterBelow(uint64_t lo, uint64_t hi) override;
  // At-most-once identities come from a server-allocated base (kNetClientId): many client
  // processes share one server's reply caches, so transport-local counters would collide
  // and one client could be answered with another's cached reply.
  uint64_t NewClientId() override;

 private:
  struct Conn {
    int fd = -1;
    uint64_t next_seq = 1;
    FrameReader reader;
    ~Conn();
  };

  // Pool checkout/checkin. Checkout discards pooled connections whose peer already closed
  // them (the server's idle sweep), so a stale connection never masquerades as a crash.
  Result<std::unique_ptr<Conn>> Checkout(std::chrono::steady_clock::time_point deadline);
  void Checkin(std::unique_ptr<Conn> conn);

  // Send one frame (optionally twice, for duplicate injection) and await the reply with a
  // matching seq, discarding stale replies left over from earlier duplicate sends. On a
  // non-frame failure the connection is dead and *conn_broken is set.
  Result<Message> RoundTrip(Conn* conn, const Frame& frame, bool duplicate,
                            std::chrono::steady_clock::time_point deadline,
                            bool* conn_broken);

  // One unstamped, fault-exempt request on the dedicated control connection, with a single
  // redial on a broken connection.
  Result<Message> ControlCall(uint32_t opcode, std::vector<uint8_t> payload) const;

  bool RollFault(double p);

  const std::string host_;
  const uint16_t port_;
  const Options options_;

  mutable std::mutex mu_;  // faults, partitions, rng
  FaultInjection faults_;
  std::unordered_set<Port> partitioned_;
  mutable Rng rng_;

  std::mutex pool_mu_;
  std::vector<std::unique_ptr<Conn>> pool_;

  // Control connection: serialised (port management is rare and cheap), lazily dialled,
  // redialled on failure. Const methods (IsPortAlive) use it, hence mutable.
  mutable std::mutex control_mu_;
  mutable std::unique_ptr<Conn> control_;

  // Server-allocated client-id namespace (0 = not yet fetched) and the local sequence
  // within it.
  std::atomic<uint64_t> client_id_base_{0};
  std::atomic<uint64_t> local_client_seq_{1};
};

}  // namespace net
}  // namespace afs

#endif  // SRC_NET_TCP_TRANSPORT_H_
