#include "src/net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace afs {
namespace net {
namespace {

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return UnavailableError("fcntl(O_NONBLOCK) failed");
  }
  return OkStatus();
}

Result<sockaddr_in> MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("unparsable IPv4 address: " + host);
  }
  return addr;
}

// Remaining time for poll(), clamped at zero.
int MillisUntil(std::chrono::steady_clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  if (left.count() <= 0) {
    return 0;
  }
  return static_cast<int>(left.count());
}

}  // namespace

Result<int> ListenTcp(const std::string& host, uint16_t port, int backlog) {
  ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return UnavailableError("socket() failed");
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = UnavailableError(std::string("bind failed: ") + std::strerror(errno));
    close(fd);
    return st;
  }
  if (listen(fd, backlog) < 0) {
    close(fd);
    return UnavailableError("listen failed");
  }
  Status st = SetNonBlocking(fd);
  if (!st.ok()) {
    close(fd);
    return st;
  }
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return UnavailableError("getsockname failed");
  }
  return ntohs(addr.sin_port);
}

Result<int> DialTcp(const std::string& host, uint16_t port,
                    std::chrono::milliseconds timeout) {
  ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return UnavailableError("socket() failed");
  }
  Status st = PrepareConnection(fd);
  if (!st.ok()) {
    close(fd);
    return st;
  }
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    int err = errno;
    close(fd);
    if (err == ECONNREFUSED) {
      return CrashedError("connection refused: no server at " + host);
    }
    return UnavailableError(std::string("connect failed: ") + std::strerror(err));
  }
  if (rc < 0) {
    // In progress: wait for writability, then read the final disposition.
    auto deadline = std::chrono::steady_clock::now() + timeout;
    pollfd pfd{fd, POLLOUT, 0};
    while (true) {
      int ready = poll(&pfd, 1, MillisUntil(deadline));
      if (ready > 0) {
        break;
      }
      if (ready == 0) {
        close(fd);
        return TimeoutError("dial timeout to " + host);
      }
      if (errno != EINTR) {
        close(fd);
        return UnavailableError("poll failed during connect");
      }
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      close(fd);
      if (err == ECONNREFUSED) {
        return CrashedError("connection refused: no server at " + host);
      }
      if (err == ETIMEDOUT) {
        return TimeoutError("dial timeout to " + host);
      }
      return UnavailableError(std::string("connect failed: ") + std::strerror(err));
    }
  }
  return fd;
}

Status PrepareConnection(int fd) {
  RETURN_IF_ERROR(SetNonBlocking(fd));
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return OkStatus();
}

Status SendAll(int fd, const uint8_t* data, size_t n,
               std::chrono::steady_clock::time_point deadline) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t rc = send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return CrashedError("peer closed connection mid-send");
    }
    if (rc < 0 && errno == EINTR) {
      continue;
    }
    if (rc < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      return UnavailableError(std::string("send failed: ") + std::strerror(errno));
    }
    int wait = MillisUntil(deadline);
    if (wait == 0) {
      return TimeoutError("send deadline expired");
    }
    pollfd pfd{fd, POLLOUT, 0};
    int ready = poll(&pfd, 1, wait);
    if (ready == 0) {
      return TimeoutError("send deadline expired");
    }
    if (ready < 0 && errno != EINTR) {
      return UnavailableError("poll failed during send");
    }
  }
  return OkStatus();
}

Result<size_t> RecvSome(int fd, uint8_t* buf, size_t n,
                        std::chrono::steady_clock::time_point deadline) {
  while (true) {
    ssize_t rc = recv(fd, buf, n, 0);
    if (rc > 0) {
      return static_cast<size_t>(rc);
    }
    if (rc == 0) {
      return static_cast<size_t>(0);  // clean EOF
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      return UnavailableError(std::string("recv failed: ") + std::strerror(errno));
    }
    int wait = MillisUntil(deadline);
    if (wait == 0) {
      return TimeoutError("recv deadline expired");
    }
    pollfd pfd{fd, POLLIN, 0};
    int ready = poll(&pfd, 1, wait);
    if (ready == 0) {
      return TimeoutError("recv deadline expired");
    }
    if (ready < 0 && errno != EINTR) {
      return UnavailableError("poll failed during recv");
    }
  }
}

bool PeerClosed(int fd) {
  uint8_t byte;
  ssize_t rc = recv(fd, &byte, 1, MSG_PEEK);
  if (rc == 0) {
    return true;  // FIN already received
  }
  if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
    return false;  // alive, nothing buffered
  }
  return rc < 0;  // reset or other hard error
}

Result<std::pair<std::string, uint16_t>> SplitHostPort(const std::string& hostport) {
  size_t colon = hostport.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == hostport.size()) {
    return InvalidArgumentError("expected host:port, got: " + hostport);
  }
  unsigned long port = 0;
  for (size_t i = colon + 1; i < hostport.size(); ++i) {
    char c = hostport[i];
    if (c < '0' || c > '9') {
      return InvalidArgumentError("non-numeric port in: " + hostport);
    }
    port = port * 10 + static_cast<unsigned long>(c - '0');
    if (port > 65535) {
      return InvalidArgumentError("port out of range in: " + hostport);
    }
  }
  if (port == 0) {
    return InvalidArgumentError("port 0 in: " + hostport);
  }
  return std::make_pair(hostport.substr(0, colon), static_cast<uint16_t>(port));
}

}  // namespace net
}  // namespace afs
