#include "src/net/tcp_server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/base/wire.h"
#include "src/net/socket.h"
#include "src/rpc/service.h"

namespace afs {
namespace net {
namespace {

// epoll user-data slots below the first connection id.
constexpr uint64_t kListenSlot = 0;
constexpr uint64_t kWakeSlot = 1;

int64_t NowNs() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace

TcpServer::TcpServer(Network* network) : TcpServer(network, Options()) {}

TcpServer::TcpServer(Network* network, Options options)
    : network_(network), options_(std::move(options)) {}

TcpServer::~TcpServer() { Stop(); }

void TcpServer::Expose(Service* service, const std::string& name, ServiceKind kind) {
  std::lock_guard<std::mutex> lock(manifest_mu_);
  manifest_.push_back(ManifestEntry{name, service->port(), kind});
}

void TcpServer::set_root_capability(const Capability& root) {
  std::lock_guard<std::mutex> lock(manifest_mu_);
  root_ = root;
  has_root_ = true;
}

Status TcpServer::Start() {
  if (running_) {
    return OkStatus();
  }
  ASSIGN_OR_RETURN(listen_fd_, ListenTcp(options_.host, options_.port));
  ASSIGN_OR_RETURN(listen_port_, LocalPort(listen_fd_));
  epoll_fd_ = epoll_create1(0);
  wake_fd_ = eventfd(0, EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return UnavailableError("epoll/eventfd creation failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenSlot;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeSlot;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  running_ = true;
  work_stop_ = false;
  loop_ = std::thread([this] { LoopThread(); });
  for (int i = 0; i < options_.num_dispatchers; ++i) {
    dispatchers_.emplace_back([this] { DispatcherThread(); });
  }
  return OkStatus();
}

void TcpServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  uint64_t one = 1;
  (void)!write(wake_fd_, &one, sizeof(one));
  loop_.join();
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    work_stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : dispatchers_) {
    t.join();
  }
  dispatchers_.clear();
  close(listen_fd_);
  close(epoll_fd_);
  close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

void TcpServer::LoopThread() {
  // Poll granularity: short enough to run idle sweeps on time, long enough to stay quiet.
  int wait_ms = 200;
  if (options_.idle_timeout.count() > 0) {
    wait_ms = std::min<int>(wait_ms, std::max<int>(
        1, static_cast<int>(options_.idle_timeout.count() / 2)));
  }
  epoll_event events[64];
  while (running_) {
    int n = epoll_wait(epoll_fd_, events, 64, wait_ms);
    if (n < 0 && errno != EINTR) {
      break;
    }
    bool wake = false;
    for (int i = 0; i < n; ++i) {
      uint64_t slot = events[i].data.u64;
      if (slot == kListenSlot) {
        AcceptReady();
      } else if (slot == kWakeSlot) {
        uint64_t drain;
        while (read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        wake = true;
      } else {
        std::shared_ptr<Conn> conn = FindConn(slot);
        if (!conn) {
          continue;
        }
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          CloseConn(conn);
          continue;
        }
        if (events[i].events & EPOLLOUT) {
          FlushConn(conn);
        }
        if (events[i].events & EPOLLIN) {
          ReadReady(conn);
        }
      }
    }
    if (wake) {
      // A dispatcher queued reply bytes on some connection(s); flush whatever is pending.
      std::vector<std::shared_ptr<Conn>> snapshot;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        snapshot.reserve(conns_.size());
        for (auto& [id, conn] : conns_) {
          snapshot.push_back(conn);
        }
      }
      for (auto& conn : snapshot) {
        FlushConn(conn);
      }
    }
    if (options_.idle_timeout.count() > 0) {
      SweepIdle();
    }
  }
  // Teardown: close every connection (freeing its transaction ports).
  std::vector<std::shared_ptr<Conn>> snapshot;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, conn] : conns_) {
      snapshot.push_back(conn);
    }
  }
  for (auto& conn : snapshot) {
    CloseConn(conn);
  }
}

void TcpServer::AcceptReady() {
  while (true) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      return;  // EAGAIN (or transient error): back to the loop
    }
    size_t live;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      live = conns_.size();
    }
    if (live >= static_cast<size_t>(options_.max_connections)) {
      limit_rejects_->Inc();
      close(fd);
      continue;
    }
    if (!PrepareConnection(fd).ok()) {
      close(fd);
      continue;
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->last_active_ns = NowNs();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn->id = next_conn_id_++;
      conns_[conn->id] = conn;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    accepts_->Inc();
    conns_gauge_->Add(1);
  }
}

void TcpServer::ReadReady(const std::shared_ptr<Conn>& conn) {
  uint8_t buf[64 * 1024];
  while (true) {
    ssize_t rc = recv(conn->fd, buf, sizeof(buf), 0);
    if (rc > 0) {
      conn->last_active_ns = NowNs();
      conn->reader.Feed(buf, static_cast<size_t>(rc));
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    if (rc < 0 && errno == EINTR) {
      continue;
    }
    CloseConn(conn);  // EOF or hard error
    return;
  }
  while (true) {
    Frame frame;
    Result<bool> got = conn->reader.Next(&frame);
    if (!got.ok()) {
      // Malformed stream (bad magic, oversized frame, truncated fields): the connection
      // cannot be resynchronised — drop it.
      frame_errors_->Inc();
      CloseConn(conn);
      return;
    }
    if (!*got) {
      return;  // torn frame: wait for more bytes
    }
    if (frame.type != FrameType::kRequest) {
      frame_errors_->Inc();
      CloseConn(conn);
      return;
    }
    frames_in_->Inc();
    conn->inflight.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(work_mu_);
      work_.push_back(WorkItem{conn, std::move(frame)});
    }
    work_cv_.notify_one();
  }
}

void TcpServer::FlushConn(const std::shared_ptr<Conn>& conn) {
  bool fail = false;
  bool need_write = false;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->closed) {
      return;
    }
    while (conn->out_pos < conn->out.size()) {
      ssize_t rc = send(conn->fd, conn->out.data() + conn->out_pos,
                        conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
      if (rc > 0) {
        conn->out_pos += static_cast<size_t>(rc);
        continue;
      }
      if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        need_write = true;
        break;
      }
      if (rc < 0 && errno == EINTR) {
        continue;
      }
      fail = true;
      break;
    }
    if (conn->out_pos == conn->out.size()) {
      conn->out.clear();
      conn->out_pos = 0;
    }
  }
  if (fail) {
    CloseConn(conn);
    return;
  }
  if (need_write != conn->want_write) {
    epoll_event ev{};
    ev.events = need_write ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
    ev.data.u64 = conn->id;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->want_write = need_write;
  }
}

void TcpServer::CloseConn(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (conns_.erase(conn->id) == 0) {
      return;  // already closed
    }
  }
  std::unordered_set<Port> ports;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    conn->closed = true;
    ports.swap(conn->ports);
  }
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  close(conn->fd);
  conns_gauge_->Add(-1);
  // The connection's transaction ports die with it: a remote client that crashed (or was
  // partitioned away long enough to be idle-closed) is now observably dead to every lock
  // waiter polling IsPortAlive — the TCP analog of the §5.3 machine-crash assumption.
  for (Port port : ports) {
    network_->ClosePort(port);
  }
}

void TcpServer::SweepIdle() {
  int64_t now = NowNs();
  int64_t limit =
      std::chrono::duration_cast<std::chrono::nanoseconds>(options_.idle_timeout).count();
  std::vector<std::shared_ptr<Conn>> idle;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, conn] : conns_) {
      if (conn->inflight.load() == 0 && now - conn->last_active_ns.load() > limit) {
        idle.push_back(conn);
      }
    }
  }
  for (auto& conn : idle) {
    bool pending;
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      pending = conn->out_pos < conn->out.size();
    }
    if (!pending) {
      idle_closes_->Inc();
      CloseConn(conn);
    }
  }
}

void TcpServer::DispatcherThread() {
  while (true) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [this] { return work_stop_ || !work_.empty(); });
      if (work_stop_ && work_.empty()) {
        return;
      }
      item = std::move(work_.front());
      work_.pop_front();
    }
    Dispatch(item);
  }
}

void TcpServer::Dispatch(const WorkItem& item) {
  auto start = std::chrono::steady_clock::now();
  Frame reply;
  if (item.frame.target == kNullPort) {
    reply = HandleControl(item.conn, item.frame);
  } else {
    // Same timeout the client used for this attempt, bounded so a hostile frame cannot
    // park a dispatcher indefinitely.
    int64_t ms = item.frame.deadline_ms == 0 ? 1000 : item.frame.deadline_ms;
    ms = std::min<int64_t>(ms, options_.max_request_timeout.count());
    Result<Service*> service = network_->LookupForCall(item.frame.target);
    if (!service.ok()) {
      reply = MakeErrorFrame(item.frame.seq, item.frame.message.opcode, service.status());
    } else {
      Result<Message> result =
          (*service)->Submit(Message(item.frame.message), std::chrono::milliseconds(ms));
      if (result.ok()) {
        reply = MakeReplyFrame(item.frame.seq, std::move(result).value());
      } else {
        reply = MakeErrorFrame(item.frame.seq, item.frame.message.opcode, result.status());
      }
    }
  }
  if (reply.type == FrameType::kReplyError) {
    error_replies_->Inc();
  }
  AppendReply(item.conn, reply);
  item.conn->inflight.fetch_sub(1);
  dispatch_ns_->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start)
          .count()));
}

Frame TcpServer::HandleControl(const std::shared_ptr<Conn>& conn, const Frame& request) {
  control_calls_->Inc();
  const uint64_t seq = request.seq;
  const uint32_t opcode = request.message.opcode;
  switch (opcode) {
    case kNetHello: {
      WireEncoder enc;
      std::lock_guard<std::mutex> lock(manifest_mu_);
      enc.PutU32(static_cast<uint32_t>(manifest_.size()));
      for (const ManifestEntry& entry : manifest_) {
        enc.PutString(entry.name);
        enc.PutU64(entry.port);
        enc.PutU8(static_cast<uint8_t>(entry.kind));
      }
      enc.PutU8(has_root_ ? 1 : 0);
      if (has_root_) {
        enc.PutCapability(root_);
      }
      return MakeReplyFrame(seq, Message(opcode, std::move(enc).Take()));
    }
    case kNetAllocPort: {
      WireDecoder dec(std::span<const uint8_t>(request.message.payload));
      auto parent = dec.GetU64();
      if (!parent.ok()) {
        return MakeErrorFrame(seq, opcode, parent.status());
      }
      Port port = network_->AllocatePort(*parent);
      {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        if (conn->closed) {
          // Lost the race with teardown: the allocating client is already gone.
          network_->ClosePort(port);
          return MakeErrorFrame(seq, opcode, UnavailableError("connection closing"));
        }
        conn->ports.insert(port);
      }
      WireEncoder enc;
      enc.PutU64(port);
      return MakeReplyFrame(seq, Message(opcode, std::move(enc).Take()));
    }
    case kNetClosePort: {
      WireDecoder dec(std::span<const uint8_t>(request.message.payload));
      auto port = dec.GetU64();
      if (!port.ok()) {
        return MakeErrorFrame(seq, opcode, port.status());
      }
      {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        conn->ports.erase(*port);
      }
      network_->ClosePort(*port);
      return MakeReplyFrame(seq, Message(opcode, {}));
    }
    case kNetClientId: {
      // Disjoint 2^32-wide namespaces, starting above anything an in-process transport
      // hands out, so remote and server-internal client ids can never meet.
      uint64_t base = next_client_base_.fetch_add(1, std::memory_order_relaxed) << 32;
      WireEncoder enc;
      enc.PutU64(base);
      return MakeReplyFrame(seq, Message(opcode, std::move(enc).Take()));
    }
    case kNetPortAlive: {
      WireDecoder dec(std::span<const uint8_t>(request.message.payload));
      auto port = dec.GetU64();
      if (!port.ok()) {
        return MakeErrorFrame(seq, opcode, port.status());
      }
      WireEncoder enc;
      enc.PutU8(network_->IsPortAlive(*port) ? 1 : 0);
      return MakeReplyFrame(seq, Message(opcode, std::move(enc).Take()));
    }
    default:
      return MakeErrorFrame(seq, opcode, InvalidArgumentError("unknown control opcode"));
  }
}

void TcpServer::AppendReply(const std::shared_ptr<Conn>& conn, const Frame& reply) {
  std::vector<uint8_t> bytes = EncodeFrame(reply);
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->closed) {
      return;  // client gave up and the connection is gone; the reply cache remembers
    }
    conn->out.insert(conn->out.end(), bytes.begin(), bytes.end());
  }
  conn->last_active_ns = NowNs();
  frames_out_->Inc();
  uint64_t one = 1;
  (void)!write(wake_fd_, &one, sizeof(one));
}

std::shared_ptr<TcpServer::Conn> TcpServer::FindConn(uint64_t id) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : it->second;
}

}  // namespace net
}  // namespace afs
