// FileClient: client-side stub of the Amoeba File Service.
//
// Holds the ports of one or more file servers of the same service group. Version
// operations are routed to the version's managing server (the capability's port field);
// file-level operations go to any live server, failing over on crash — "Clients do not
// have to wait until the server is restored, because they can use another server to do it"
// (§3.1).

#ifndef SRC_CLIENT_FILE_CLIENT_H_
#define SRC_CLIENT_FILE_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/capability.h"
#include "src/base/status.h"
#include "src/core/flags.h"
#include "src/core/path.h"
#include "src/core/protocol.h"
#include "src/obs/metrics.h"
#include "src/rpc/transport.h"

namespace afs {

class FileClient {
 public:
  FileClient(Transport* transport, std::vector<Port> servers);

  // --- file lifecycle ---
  Result<Capability> CreateFile();
  Status DeleteFile(const Capability& file);
  Result<Capability> GetCurrentVersion(const Capability& file);
  Result<Capability> CreateVersion(const Capability& file, Port owner_port = kNullPort,
                                   bool respect_soft_lock = false);

  // --- page access ---
  struct ReadResult {
    uint32_t nrefs = 0;
    std::vector<uint8_t> data;
  };
  Result<ReadResult> ReadPage(const Capability& version, const PagePath& path,
                              bool want_refs = false);
  Status WritePage(const Capability& version, const PagePath& path,
                   std::span<const uint8_t> data);
  // One element of a vectored page write.
  struct PageWrite {
    PagePath path;
    std::vector<uint8_t> data;
  };
  // Vectored WritePage: ships the whole batch in kWritePageMulti transactions, chunked so
  // no message exceeds the 32K limit (one RPC instead of one per page). Entries apply in
  // order with plain WritePage semantics; a single page too large for any message fails
  // with kInvalidArgument before anything is sent.
  Status WritePages(const Capability& version, std::span<const PageWrite> writes);
  Status WriteString(const Capability& version, const PagePath& path, std::string_view text);
  Result<std::string> ReadString(const Capability& version, const PagePath& path);
  Status InsertRef(const Capability& version, const PagePath& parent, uint32_t index);
  Status RemoveRef(const Capability& version, const PagePath& parent, uint32_t index);
  Result<std::vector<uint8_t>> ReadRefs(const Capability& version, const PagePath& path);
  Status MoveSubtree(const Capability& version, const PagePath& from,
                     const PagePath& to_parent, uint32_t index);
  Status SplitPage(const Capability& version, const PagePath& path, uint32_t data_offset,
                   uint32_t ref_index);

  // --- transactions ---
  Result<BlockNo> Commit(const Capability& version);
  Status Abort(const Capability& version);
  Result<Capability> CreateSubFile(const Capability& version, const PagePath& parent,
                                   uint32_t index);

  // --- cache validation (§5.4) ---
  struct CacheCheck {
    Capability current_version;
    std::vector<PagePath> invalid;
  };
  Result<CacheCheck> ValidateCache(const Capability& file, BlockNo cached_head,
                                   const std::vector<PagePath>& cached_paths);

  struct FileStatInfo {
    BlockNo current_head = kNilRef;
    uint32_t committed_versions = 0;
    bool is_super = false;
  };
  Result<FileStatInfo> FileStat(const Capability& file);

  // --- storage-tier admin (§6 optical archival, src/tier) ---
  // Run one migration cycle on the service's attached tier; returns blocks migrated.
  // kUnavailable when the deployment has no tier.
  Result<uint64_t> MigrateNow();
  // One archive scrub pass: (checked, repaired, unrecoverable, reclaimed_redo).
  Result<TierScrubSummary> ScrubNow();
  // Tier snapshot; enabled=false (with zeros) when no tier is attached.
  Result<TierStatInfo> TierStat();

  Transport* transport() const { return transport_; }
  const std::vector<Port>& servers() const { return servers_; }

 private:
  // Run `op` against a file server, failing over across the group on connectivity errors.
  template <typename T>
  Result<T> WithServer(const std::function<Result<T>(Port)>& op);

  Transport* transport_;
  std::vector<Port> servers_;
  // Failover preference hint. Clients are shared across threads (DirectoryServer,
  // chaos workloads); the hint is advisory, so relaxed atomics suffice.
  std::atomic<size_t> preferred_{0};

  // Client-observed SLO classes (global SloTracker), resolved once: what the user of the
  // file service actually waited, including retransmissions and failover.
  obs::Histogram* slo_commit_;
  obs::Histogram* slo_read_;
  obs::Histogram* slo_write_;
  obs::Histogram* slo_create_version_;
};

}  // namespace afs

#endif  // SRC_CLIENT_FILE_CLIENT_H_
