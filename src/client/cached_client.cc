#include "src/client/cached_client.h"

namespace afs {

CachedFileClient::CachedFileClient(Network* network, std::vector<Port> servers)
    : client_(network, std::move(servers)) {}

Result<size_t> CachedFileClient::Revalidate(const Capability& file) {
  const uint64_t file_id = file.object;
  BlockNo cached = cache_.VersionOf(file_id);
  if (cached == kNilRef) {
    return static_cast<size_t>(0);
  }
  std::vector<PagePath> paths = cache_.PathsOf(file_id);
  ++validations_;
  ASSIGN_OR_RETURN(FileClient::CacheCheck check, client_.ValidateCache(file, cached, paths));
  cache_.ApplyValidation(file_id, static_cast<BlockNo>(check.current_version.object),
                         check.invalid);
  return check.invalid.size();
}

Result<std::vector<uint8_t>> CachedFileClient::Read(const Capability& file,
                                                    const PagePath& path) {
  const uint64_t file_id = file.object;
  if (cache_.VersionOf(file_id) != kNilRef) {
    RETURN_IF_ERROR(Revalidate(file).status());
    auto hit = cache_.Get(file_id, path);
    if (hit.has_value()) {
      return *hit;
    }
  }
  // Miss: fetch from the current version and install.
  ASSIGN_OR_RETURN(Capability version, client_.GetCurrentVersion(file));
  ASSIGN_OR_RETURN(FileClient::ReadResult result, client_.ReadPage(version, path));
  cache_.Put(file_id, static_cast<BlockNo>(version.object), path, result.data);
  return result.data;
}

}  // namespace afs
