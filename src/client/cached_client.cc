#include "src/client/cached_client.h"

#include "src/obs/span.h"

namespace afs {

CachedFileClient::CachedFileClient(Transport* transport, std::vector<Port> servers)
    : client_(transport, std::move(servers)) {}

Result<size_t> CachedFileClient::Revalidate(const Capability& file) {
  const uint64_t file_id = file.object;
  BlockNo cached = cache_.VersionOf(file_id);
  if (cached == kNilRef) {
    return static_cast<size_t>(0);
  }
  std::vector<PagePath> paths = cache_.PathsOf(file_id);
  ++validations_;
  ASSIGN_OR_RETURN(FileClient::CacheCheck check, client_.ValidateCache(file, cached, paths));
  cache_.ApplyValidation(file_id, static_cast<BlockNo>(check.current_version.object),
                         check.invalid);
  return check.invalid.size();
}

void CachedFileClient::Write(const Capability& version, const PagePath& path,
                             std::vector<uint8_t> data) {
  std::vector<FileClient::PageWrite>& writes = dirty_[version.object];
  for (FileClient::PageWrite& w : writes) {
    if (w.path == path) {
      w.data = std::move(data);
      return;
    }
  }
  writes.push_back(FileClient::PageWrite{path, std::move(data)});
}

Status CachedFileClient::FlushWrites(const Capability& version) {
  auto it = dirty_.find(version.object);
  if (it == dirty_.end() || it->second.empty()) {
    return OkStatus();
  }
  std::vector<FileClient::PageWrite> writes = std::move(it->second);
  dirty_.erase(it);
  obs::ScopedSpan span("client.flush", obs::SpanKind::kClient, version.port, writes.size());
  return client_.WritePages(version, writes);
}

Result<BlockNo> CachedFileClient::Commit(const Capability& version) {
  // One span over flush + commit: the write-behind flush is latency the caller's commit
  // actually paid, and this keeps it attributed inside the same tree.
  obs::ScopedSpan span("client.cached_commit", obs::SpanKind::kClient, version.port);
  RETURN_IF_ERROR(FlushWrites(version));
  return client_.Commit(version);
}

size_t CachedFileClient::pending_writes(const Capability& version) const {
  auto it = dirty_.find(version.object);
  return it == dirty_.end() ? 0 : it->second.size();
}

Result<std::vector<uint8_t>> CachedFileClient::Read(const Capability& file,
                                                    const PagePath& path) {
  const uint64_t file_id = file.object;
  if (cache_.VersionOf(file_id) != kNilRef) {
    RETURN_IF_ERROR(Revalidate(file).status());
    auto hit = cache_.Get(file_id, path);
    if (hit.has_value()) {
      return *hit;
    }
  }
  // Miss: fetch from the current version and install.
  ASSIGN_OR_RETURN(Capability version, client_.GetCurrentVersion(file));
  ASSIGN_OR_RETURN(FileClient::ReadResult result, client_.ReadPage(version, path));
  cache_.Put(file_id, static_cast<BlockNo>(version.object), path, result.data);
  return result.data;
}

}  // namespace afs
