#include "src/client/transaction.h"

#include <thread>

#include "src/base/rng.h"

namespace afs {
namespace {

bool ShouldRedo(const Status& s) {
  switch (s.code()) {
    case ErrorCode::kConflict:
    case ErrorCode::kLocked:
    case ErrorCode::kCrashed:
    case ErrorCode::kTimeout:
    case ErrorCode::kUnavailable:
    case ErrorCode::kAborted:  // version lost in a server crash
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<TransactionStats> RunTransaction(FileClient* client, const Capability& file,
                                        const UpdateBody& body,
                                        const TransactionOptions& options) {
  TransactionStats stats;
  Rng rng(options.backoff_seed);
  Network* net = client->network();

  Status last = InternalError("transaction never attempted");
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    ++stats.attempts;
    // The transaction port identifies this update in top/inner lock fields; if this client
    // dies, the port dies, and waiters recover the locks (§5.3).
    Port tx_port = net->AllocatePort();

    auto version = client->CreateVersion(file, tx_port, options.respect_soft_lock);
    Status step = version.ok() ? OkStatus() : version.status();
    if (step.ok()) {
      step = body(*client, *version);
      if (step.ok()) {
        auto committed = client->Commit(*version);
        if (committed.ok()) {
          net->ClosePort(tx_port);
          stats.committed_head = *committed;
          return stats;
        }
        step = committed.status();
      } else {
        (void)client->Abort(*version);
      }
    }
    net->ClosePort(tx_port);
    last = step;
    if (!ShouldRedo(step)) {
      return step;
    }
    switch (step.code()) {
      case ErrorCode::kConflict:
        ++stats.conflicts;
        break;
      case ErrorCode::kLocked:
        ++stats.lock_waits;
        break;
      default:
        ++stats.crash_redos;
        break;
    }
    // Randomised exponential backoff, capped; conflicts in OCC resolve fastest with a
    // short, jittered wait.
    uint64_t shift = std::min(attempt, 8);
    uint64_t wait = options.initial_backoff.count() << shift;
    std::this_thread::sleep_for(std::chrono::microseconds(rng.NextInRange(wait / 2, wait)));
  }
  return last;
}

}  // namespace afs
