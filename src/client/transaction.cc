#include "src/client/transaction.h"

#include <thread>

#include "src/base/rng.h"
#include "src/obs/span.h"

namespace afs {
namespace {

bool ShouldRedo(const Status& s) {
  switch (s.code()) {
    case ErrorCode::kConflict:
    case ErrorCode::kLocked:
    case ErrorCode::kCrashed:
    case ErrorCode::kTimeout:
    case ErrorCode::kUnavailable:
    case ErrorCode::kAborted:  // version lost in a server crash
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<TransactionStats> RunTransaction(FileClient* client, const Capability& file,
                                        const UpdateBody& body,
                                        const TransactionOptions& options) {
  TransactionStats stats;
  Rng rng(options.backoff_seed);
  Transport* net = client->transport();

  // The per-transaction root span: every attempt's create/update/commit spans hang below
  // it, so one slow transaction dumps as one tree (the slow-transaction log keys off root
  // spans like this one). a = attempts, b = conflicts, filled in before each return.
  obs::ScopedSpan txn_span("client.txn", obs::SpanKind::kClient);
  Status last = InternalError("transaction never attempted");
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    ++stats.attempts;
    // The transaction port identifies this update in top/inner lock fields; if this client
    // dies, the port dies, and waiters recover the locks (§5.3).
    Port tx_port = net->AllocatePort();

    auto version = client->CreateVersion(file, tx_port, options.respect_soft_lock);
    Status step = version.ok() ? OkStatus() : version.status();
    if (step.ok()) {
      step = body(*client, *version);
      if (step.ok()) {
        auto committed = client->Commit(*version);
        if (committed.ok()) {
          net->ClosePort(tx_port);
          stats.committed_head = *committed;
          txn_span.set_args(static_cast<uint64_t>(stats.attempts),
                            static_cast<uint64_t>(stats.conflicts));
          return stats;
        }
        step = committed.status();
      } else {
        (void)client->Abort(*version);
      }
    }
    net->ClosePort(tx_port);
    last = step;
    if (!ShouldRedo(step)) {
      txn_span.set_args(static_cast<uint64_t>(stats.attempts),
                        static_cast<uint64_t>(stats.conflicts));
      txn_span.set_status(static_cast<uint8_t>(step.code()));
      return step;
    }
    switch (step.code()) {
      case ErrorCode::kConflict:
        ++stats.conflicts;
        break;
      case ErrorCode::kLocked:
        ++stats.lock_waits;
        break;
      default:
        ++stats.crash_redos;
        break;
    }
    // Randomised exponential backoff, capped; conflicts in OCC resolve fastest with a
    // short, jittered wait.
    uint64_t shift = std::min(attempt, 8);
    uint64_t wait = options.initial_backoff.count() << shift;
    std::this_thread::sleep_for(std::chrono::microseconds(rng.NextInRange(wait / 2, wait)));
  }
  txn_span.set_args(static_cast<uint64_t>(stats.attempts),
                    static_cast<uint64_t>(stats.conflicts));
  txn_span.set_status(static_cast<uint8_t>(last.code()));
  return last;
}

}  // namespace afs
