// Transaction: the client-side redo loop the optimistic method requires.
//
// "Some updates will have to be redone when concurrent updates are not serialisable, but
// with the unbounded potential of computing power that distributed systems offer, redoing
// an operation now and then is acceptable" (§6). The loop:
//   1. allocate a transaction port (the update's identity for locks-made-of-ports),
//   2. create a version, 3. run the caller's update body, 4. commit;
//   on kConflict redo from 2 (fresh version, re-reading current data);
//   on kLocked wait briefly and redo (lock waiter);
//   on kCrashed redo through another server ("clients need only redo the update that
//   remained unfinished because of the crash").

#ifndef SRC_CLIENT_TRANSACTION_H_
#define SRC_CLIENT_TRANSACTION_H_

#include <chrono>
#include <functional>

#include "src/client/file_client.h"

namespace afs {

struct TransactionOptions {
  int max_attempts = 64;
  std::chrono::microseconds initial_backoff{100};
  // §5.3 soft locking: defer this update while another update's top-lock hint is set.
  bool respect_soft_lock = false;
  uint64_t backoff_seed = 42;
};

struct TransactionStats {
  int attempts = 0;         // total tries (1 = first-try success)
  int conflicts = 0;        // serialisability conflicts redone
  int lock_waits = 0;       // kLocked retries
  int crash_redos = 0;      // kCrashed redos
  BlockNo committed_head = kNilRef;
};

// The update body reads and writes through `client` on `version`. Returning a non-ok
// status aborts the transaction (no retry unless it is kConflict/kLocked/kCrashed).
using UpdateBody = std::function<Status(FileClient&, const Capability& version)>;

// Run one atomic update on `file` to completion (or exhaustion of attempts).
Result<TransactionStats> RunTransaction(FileClient* client, const Capability& file,
                                        const UpdateBody& body,
                                        const TransactionOptions& options = {});

}  // namespace afs

#endif  // SRC_CLIENT_TRANSACTION_H_
