// CachedFileClient: FileClient plus the §5.4 client-side page cache.
//
// Reads of committed data are served from the local cache after a single validation
// round-trip per (file, current-version) pair: "The integrity of the cache is checked at
// the start of a transaction. The cost of checking whether the cache is up-to-date is
// small, even for files that are frequently modified." For unshared files the check
// degenerates to comparing version stamps — the paper's "null operation".

#ifndef SRC_CLIENT_CACHED_CLIENT_H_
#define SRC_CLIENT_CACHED_CLIENT_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/client/file_client.h"
#include "src/core/cache.h"

namespace afs {

class CachedFileClient {
 public:
  CachedFileClient(Transport* transport, std::vector<Port> servers);

  // Read a page of the file's current version, serving from cache when the cached entry
  // validates. Exactly one ValidateCache round-trip happens per call when the cache holds
  // anything for the file; pages proven valid are not transferred again.
  Result<std::vector<uint8_t>> Read(const Capability& file, const PagePath& path);

  // Validate the file's cache entry against the current version without reading anything.
  // Returns the number of pages discarded.
  Result<size_t> Revalidate(const Capability& file);

  // Buffer a page write against an open version. Nothing is sent until FlushWrites (or
  // Commit); repeated writes to the same path coalesce, last one wins — exactly the bytes
  // WritePage-ing them in order would leave behind.
  void Write(const Capability& version, const PagePath& path, std::vector<uint8_t> data);

  // Ship every buffered write of `version` in one vectored WritePages call.
  Status FlushWrites(const Capability& version);

  // Flush, then commit the version. The buffered writes of a version that fails to commit
  // are already gone — the version itself is removed by the server on conflict.
  Result<BlockNo> Commit(const Capability& version);

  // Buffered-but-unflushed writes for `version` (test/introspection).
  size_t pending_writes(const Capability& version) const;

  FileClient& client() { return client_; }
  PageCache& cache() { return cache_; }

  uint64_t validation_round_trips() const { return validations_; }

 private:
  FileClient client_;
  PageCache cache_;
  uint64_t validations_ = 0;
  // Dirty pages per open version (keyed by the version's head block), in first-write order.
  std::unordered_map<uint64_t, std::vector<FileClient::PageWrite>> dirty_;
};

}  // namespace afs

#endif  // SRC_CLIENT_CACHED_CLIENT_H_
