#include "src/client/file_client.h"

#include <functional>

#include "src/base/wire.h"
#include "src/block/block_store.h"
#include "src/core/protocol.h"
#include "src/obs/slo.h"
#include "src/obs/span.h"
#include "src/rpc/client.h"

namespace afs {
namespace {

bool IsConnectivityError(const Status& s) {
  switch (s.code()) {
    case ErrorCode::kCrashed:
    case ErrorCode::kTimeout:
    case ErrorCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

}  // namespace

FileClient::FileClient(Transport* transport, std::vector<Port> servers)
    : transport_(transport),
      servers_(std::move(servers)),
      slo_commit_(obs::SloTracker::Global()->ClassHistogram("client.commit")),
      slo_read_(obs::SloTracker::Global()->ClassHistogram("client.read")),
      slo_write_(obs::SloTracker::Global()->ClassHistogram("client.write")),
      slo_create_version_(
          obs::SloTracker::Global()->ClassHistogram("client.create_version")) {}

template <typename T>
Result<T> FileClient::WithServer(const std::function<Result<T>(Port)>& op) {
  size_t start = preferred_.load(std::memory_order_relaxed);
  Status last = UnavailableError("no file servers configured");
  for (size_t i = 0; i < servers_.size(); ++i) {
    size_t idx = (start + i) % servers_.size();
    Result<T> result = op(servers_[idx]);
    if (result.ok() || !IsConnectivityError(result.status())) {
      preferred_.store(idx, std::memory_order_relaxed);
      return result;
    }
    last = result.status();
  }
  return last;
}

Result<Capability> FileClient::CreateFile() {
  return WithServer<Capability>([&](Port server) -> Result<Capability> {
    ASSIGN_OR_RETURN(WireDecoder reply,
                     CallAndCheck(transport_, server, static_cast<uint32_t>(FileOp::kCreateFile),
                                  WireEncoder()));
    return reply.GetCapability();
  });
}

Status FileClient::DeleteFile(const Capability& file) {
  return WithServer<bool>([&](Port server) -> Result<bool> {
           WireEncoder req;
           req.PutCapability(file);
           RETURN_IF_ERROR(CallAndCheck(transport_, server,
                                        static_cast<uint32_t>(FileOp::kDeleteFile),
                                        std::move(req))
                               .status());
           return true;
         })
      .status();
}

Result<Capability> FileClient::GetCurrentVersion(const Capability& file) {
  return WithServer<Capability>([&](Port server) -> Result<Capability> {
    WireEncoder req;
    req.PutCapability(file);
    ASSIGN_OR_RETURN(WireDecoder reply,
                     CallAndCheck(transport_, server,
                                  static_cast<uint32_t>(FileOp::kGetCurrentVersion),
                                  std::move(req)));
    return reply.GetCapability();
  });
}

Result<Capability> FileClient::CreateVersion(const Capability& file, Port owner_port,
                                             bool respect_soft_lock) {
  obs::ScopedSpan span("client.create_version", obs::SpanKind::kClient);
  obs::SloTimer slo(slo_create_version_);
  return WithServer<Capability>([&](Port server) -> Result<Capability> {
    WireEncoder req;
    req.PutCapability(file);
    req.PutU64(owner_port);
    req.PutU8(respect_soft_lock ? 1 : 0);
    ASSIGN_OR_RETURN(WireDecoder reply,
                     CallAndCheck(transport_, server,
                                  static_cast<uint32_t>(FileOp::kCreateVersion),
                                  std::move(req)));
    return reply.GetCapability();
  });
}

Result<FileClient::ReadResult> FileClient::ReadPage(const Capability& version,
                                                    const PagePath& path, bool want_refs) {
  obs::ScopedSpan span("client.read_page", obs::SpanKind::kClient, version.port);
  obs::SloTimer slo(slo_read_);
  WireEncoder req;
  req.PutCapability(version);
  path.Encode(&req);
  req.PutU8(want_refs ? 1 : 0);
  ASSIGN_OR_RETURN(WireDecoder reply,
                   CallAndCheck(transport_, version.port,
                                static_cast<uint32_t>(FileOp::kReadPage), std::move(req)));
  ReadResult out;
  ASSIGN_OR_RETURN(out.nrefs, reply.GetU32());
  ASSIGN_OR_RETURN(out.data, reply.GetBytes());
  return out;
}

Status FileClient::WritePage(const Capability& version, const PagePath& path,
                             std::span<const uint8_t> data) {
  obs::ScopedSpan span("client.write_page", obs::SpanKind::kClient, version.port,
                       data.size());
  obs::SloTimer slo(slo_write_);
  WireEncoder req;
  req.PutCapability(version);
  path.Encode(&req);
  req.PutBytes(data);
  return CallAndCheck(transport_, version.port, static_cast<uint32_t>(FileOp::kWritePage),
                      std::move(req))
      .status();
}

Status FileClient::WritePages(const Capability& version, std::span<const PageWrite> writes) {
  // One span for the whole batch: the chunked kWritePageMulti RPCs — or, with batching
  // disabled, the per-page fallback calls — all become children of this span, so the
  // batch stays one causal unit either way.
  obs::ScopedSpan span("client.write_pages", obs::SpanKind::kClient, version.port,
                       writes.size());
  obs::SloTimer slo(slo_write_);
  if (!BatchingEnabled()) {
    for (const PageWrite& w : writes) {
      RETURN_IF_ERROR(WritePage(version, w.path, w.data));
    }
    return OkStatus();
  }
  // Greedy chunking: pack entries until the next would push the message over the limit.
  // 96 bytes of slack covers the capability, the count and the transaction framing.
  const size_t budget = kMaxMessageBytes - 96;
  size_t i = 0;
  while (i < writes.size()) {
    WireEncoder entries;
    uint32_t n = 0;
    while (i < writes.size()) {
      WireEncoder one;
      writes[i].path.Encode(&one);
      one.PutBytes(writes[i].data);
      if (one.size() > budget) {
        return InvalidArgumentError("single page write exceeds the 32K transaction message limit");
      }
      if (n > 0 && entries.size() + one.size() > budget) {
        break;
      }
      std::vector<uint8_t> raw = std::move(one).Take();
      entries.PutRaw(raw);
      ++n;
      ++i;
    }
    WireEncoder req;
    req.PutCapability(version);
    req.PutU32(n);
    std::vector<uint8_t> raw = std::move(entries).Take();
    req.PutRaw(raw);
    RETURN_IF_ERROR(CallAndCheck(transport_, version.port,
                                 static_cast<uint32_t>(FileOp::kWritePageMulti),
                                 std::move(req))
                        .status());
  }
  return OkStatus();
}

Status FileClient::WriteString(const Capability& version, const PagePath& path,
                               std::string_view text) {
  return WritePage(version, path,
                   std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(text.data()),
                                            text.size()));
}

Result<std::string> FileClient::ReadString(const Capability& version, const PagePath& path) {
  ASSIGN_OR_RETURN(ReadResult result, ReadPage(version, path));
  return std::string(result.data.begin(), result.data.end());
}

Status FileClient::InsertRef(const Capability& version, const PagePath& parent,
                             uint32_t index) {
  WireEncoder req;
  req.PutCapability(version);
  parent.Encode(&req);
  req.PutU32(index);
  return CallAndCheck(transport_, version.port, static_cast<uint32_t>(FileOp::kInsertRef),
                      std::move(req))
      .status();
}

Status FileClient::RemoveRef(const Capability& version, const PagePath& parent,
                             uint32_t index) {
  WireEncoder req;
  req.PutCapability(version);
  parent.Encode(&req);
  req.PutU32(index);
  return CallAndCheck(transport_, version.port, static_cast<uint32_t>(FileOp::kRemoveRef),
                      std::move(req))
      .status();
}

Result<std::vector<uint8_t>> FileClient::ReadRefs(const Capability& version,
                                                  const PagePath& path) {
  WireEncoder req;
  req.PutCapability(version);
  path.Encode(&req);
  ASSIGN_OR_RETURN(WireDecoder reply,
                   CallAndCheck(transport_, version.port,
                                static_cast<uint32_t>(FileOp::kReadRefs), std::move(req)));
  ASSIGN_OR_RETURN(uint32_t n, reply.GetU32());
  std::vector<uint8_t> masks;
  masks.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(uint8_t mask, reply.GetU8());
    masks.push_back(mask);
  }
  return masks;
}

Status FileClient::MoveSubtree(const Capability& version, const PagePath& from,
                               const PagePath& to_parent, uint32_t index) {
  WireEncoder req;
  req.PutCapability(version);
  from.Encode(&req);
  to_parent.Encode(&req);
  req.PutU32(index);
  return CallAndCheck(transport_, version.port, static_cast<uint32_t>(FileOp::kMoveSubtree),
                      std::move(req))
      .status();
}

Status FileClient::SplitPage(const Capability& version, const PagePath& path,
                             uint32_t data_offset, uint32_t ref_index) {
  WireEncoder req;
  req.PutCapability(version);
  path.Encode(&req);
  req.PutU32(data_offset);
  req.PutU32(ref_index);
  return CallAndCheck(transport_, version.port, static_cast<uint32_t>(FileOp::kSplitPage),
                      std::move(req))
      .status();
}

Result<BlockNo> FileClient::Commit(const Capability& version) {
  obs::ScopedSpan span("client.commit", obs::SpanKind::kClient, version.port);
  obs::SloTimer slo(slo_commit_);
  WireEncoder req;
  req.PutCapability(version);
  ASSIGN_OR_RETURN(WireDecoder reply,
                   CallAndCheck(transport_, version.port,
                                static_cast<uint32_t>(FileOp::kCommit), std::move(req)));
  return reply.GetU32();
}

Status FileClient::Abort(const Capability& version) {
  WireEncoder req;
  req.PutCapability(version);
  return CallAndCheck(transport_, version.port, static_cast<uint32_t>(FileOp::kAbort),
                      std::move(req))
      .status();
}

Result<Capability> FileClient::CreateSubFile(const Capability& version, const PagePath& parent,
                                             uint32_t index) {
  WireEncoder req;
  req.PutCapability(version);
  parent.Encode(&req);
  req.PutU32(index);
  ASSIGN_OR_RETURN(WireDecoder reply,
                   CallAndCheck(transport_, version.port,
                                static_cast<uint32_t>(FileOp::kCreateSubFile), std::move(req)));
  return reply.GetCapability();
}

Result<FileClient::CacheCheck> FileClient::ValidateCache(
    const Capability& file, BlockNo cached_head, const std::vector<PagePath>& cached_paths) {
  return WithServer<CacheCheck>([&](Port server) -> Result<CacheCheck> {
    WireEncoder req;
    req.PutCapability(file);
    req.PutU32(cached_head);
    req.PutU32(static_cast<uint32_t>(cached_paths.size()));
    for (const PagePath& path : cached_paths) {
      path.Encode(&req);
    }
    ASSIGN_OR_RETURN(WireDecoder reply,
                     CallAndCheck(transport_, server,
                                  static_cast<uint32_t>(FileOp::kValidateCache),
                                  std::move(req)));
    CacheCheck out;
    ASSIGN_OR_RETURN(out.current_version, reply.GetCapability());
    ASSIGN_OR_RETURN(uint32_t n, reply.GetU32());
    for (uint32_t i = 0; i < n; ++i) {
      ASSIGN_OR_RETURN(PagePath path, PagePath::Decode(&reply));
      out.invalid.push_back(std::move(path));
    }
    return out;
  });
}

Result<FileClient::FileStatInfo> FileClient::FileStat(const Capability& file) {
  return WithServer<FileStatInfo>([&](Port server) -> Result<FileStatInfo> {
    WireEncoder req;
    req.PutCapability(file);
    ASSIGN_OR_RETURN(WireDecoder reply,
                     CallAndCheck(transport_, server, static_cast<uint32_t>(FileOp::kFileStat),
                                  std::move(req)));
    FileStatInfo info;
    ASSIGN_OR_RETURN(info.current_head, reply.GetU32());
    ASSIGN_OR_RETURN(info.committed_versions, reply.GetU32());
    ASSIGN_OR_RETURN(uint8_t is_super, reply.GetU8());
    info.is_super = is_super != 0;
    return info;
  });
}

Result<uint64_t> FileClient::MigrateNow() {
  return WithServer<uint64_t>([&](Port server) -> Result<uint64_t> {
    ASSIGN_OR_RETURN(WireDecoder reply,
                     CallAndCheck(transport_, server, static_cast<uint32_t>(FileOp::kMigrateNow),
                                  WireEncoder()));
    return reply.GetU64();
  });
}

Result<TierScrubSummary> FileClient::ScrubNow() {
  return WithServer<TierScrubSummary>([&](Port server) -> Result<TierScrubSummary> {
    ASSIGN_OR_RETURN(WireDecoder reply,
                     CallAndCheck(transport_, server, static_cast<uint32_t>(FileOp::kScrubNow),
                                  WireEncoder()));
    TierScrubSummary s;
    ASSIGN_OR_RETURN(s.checked, reply.GetU64());
    ASSIGN_OR_RETURN(s.repaired, reply.GetU64());
    ASSIGN_OR_RETURN(s.unrecoverable, reply.GetU64());
    ASSIGN_OR_RETURN(s.reclaimed_redo, reply.GetU64());
    return s;
  });
}

Result<TierStatInfo> FileClient::TierStat() {
  return WithServer<TierStatInfo>([&](Port server) -> Result<TierStatInfo> {
    ASSIGN_OR_RETURN(WireDecoder reply,
                     CallAndCheck(transport_, server, static_cast<uint32_t>(FileOp::kTierStat),
                                  WireEncoder()));
    TierStatInfo info;
    ASSIGN_OR_RETURN(uint8_t enabled, reply.GetU8());
    info.enabled = enabled != 0;
    if (info.enabled) {
      ASSIGN_OR_RETURN(info.archived_blocks, reply.GetU64());
      ASSIGN_OR_RETURN(info.archive_used_blocks, reply.GetU64());
      ASSIGN_OR_RETURN(info.archive_capacity_blocks, reply.GetU64());
      ASSIGN_OR_RETURN(info.archive_bytes, reply.GetU64());
      ASSIGN_OR_RETURN(info.migrated_total, reply.GetU64());
      ASSIGN_OR_RETURN(info.promotions, reply.GetU64());
      ASSIGN_OR_RETURN(info.scrub_repairs, reply.GetU64());
      ASSIGN_OR_RETURN(info.magnetic_reclaimed, reply.GetU64());
    }
    return info;
  });
}

}  // namespace afs
