#include "src/core/serialise.h"

#include "src/obs/span.h"

namespace afs {

bool FlagsConflict(uint8_t fb, uint8_t fc) {
  const bool b_read = (fb & RefFlag::kRead) != 0;
  const bool b_searched = (fb & RefFlag::kSearched) != 0;
  const bool b_modified = (fb & RefFlag::kModified) != 0;
  const bool c_written = (fc & RefFlag::kWritten) != 0;
  const bool c_searched = (fc & RefFlag::kSearched) != 0;
  const bool c_modified = (fc & RefFlag::kModified) != 0;
  if (b_read && c_written) {
    return true;  // V.b read data V.c wrote
  }
  if (b_searched && c_modified) {
    return true;  // V.b depended on references V.c changed
  }
  if (b_modified && c_searched) {
    return true;  // V.b restructured below; V.c's deeper accesses cannot be aligned
  }
  return false;
}

Serialiser::Serialiser(PageStore* pages, std::function<Result<Page>(BlockNo)> load_committed,
                       MultiLoader load_committed_multi)
    : pages_(pages),
      load_committed_(std::move(load_committed)),
      load_committed_multi_(std::move(load_committed_multi)) {}

Result<bool> Serialiser::TestAndMerge(BlockNo b_head, Page* b_root, BlockNo c_head,
                                      const Page* c_root_hint) {
  pages_visited_ = 0;
  pending_overwrites_.clear();
  // commit.validate covers the in-memory walk (test + merge planning); commit.merge the
  // vectored flush of the merged children. validate is Ended explicitly so the two are
  // SIBLING phases under the commit span, not nested — the critical-path analyzer sums
  // direct children only.
  obs::ScopedSpan validate_span("commit.validate", obs::SpanKind::kPhase, b_head, c_head);
  Page c_root;
  if (c_root_hint != nullptr) {
    c_root = *c_root_hint;
  } else {
    ASSIGN_OR_RETURN(c_root, load_committed_(c_head));
  }
  // The root page is always copied in both versions; its access flags are the manager-kept
  // root_flags.
  ASSIGN_OR_RETURN(bool ok, MergePages(b_root->root_flags, b_root, c_root.root_flags, c_root,
                                       /*is_root=*/true));
  if (!ok) {
    pending_overwrites_.clear();  // conflict: nothing was persisted, nothing to undo
    return false;
  }
  validate_span.set_args(pages_visited_, pending_overwrites_.size());
  validate_span.End();
  // One vectored flush for every merged child (the root is persisted by the caller).
  obs::ScopedSpan merge_span("commit.merge", obs::SpanKind::kPhase, b_head, c_head);
  RETURN_IF_ERROR(pages_->OverwritePages(std::move(pending_overwrites_)));
  pending_overwrites_.clear();
  return true;
}

Result<bool> Serialiser::MergePages(uint8_t fb, Page* b_page, uint8_t fc, const Page& c_page,
                                    bool is_root) {
  ++pages_visited_;
  if (FlagsConflict(fb, fc)) {
    return false;
  }
  if (!is_root && (b_page->IsVersionPage() || c_page.IsVersionPage())) {
    // A sub-file version page diverged on both sides. The §5.3 locks make this impossible
    // in normal operation; under relaxed super-file locking we refuse conservatively.
    return false;
  }

  // Data: V.b serialises after V.c, so V.b's write wins; V.c's write is adopted only where
  // V.b neither read (checked above) nor wrote.
  const bool b_wrote = (fb & RefFlag::kWritten) != 0;
  const bool c_wrote = (fc & RefFlag::kWritten) != 0;
  if (c_wrote && !b_wrote) {
    b_page->data = c_page.data;
  }

  const bool b_modified = (fb & RefFlag::kModified) != 0;
  const bool c_modified = (fc & RefFlag::kModified) != 0;
  if (c_modified) {
    // V.b never searched this page's references (conflict rule), so V.b has no private
    // copies below it; adopt V.c's reference table wholesale — as shared content, flags
    // cleared (see MergeRefTables on why inherited flags must not survive).
    b_page->refs.clear();
    b_page->refs.reserve(c_page.refs.size());
    for (const PageRef& ref : c_page.refs) {
      b_page->refs.push_back(PageRef{ref.block, 0});
    }
    return true;
  }
  if (b_modified) {
    // Symmetric: V.c never searched here, so its only possible change was the data above.
    return true;
  }
  return MergeRefTables(b_page, c_page);
}

Result<bool> Serialiser::MergeRefTables(Page* b_page, const Page& c_page) {
  if (b_page->refs.size() != c_page.refs.size()) {
    // Neither side has M, so both tables must still have the base version's shape.
    return CorruptError("reference tables differ without modification flags");
  }
  std::vector<size_t> recurse;
  for (size_t i = 0; i < b_page->refs.size(); ++i) {
    const PageRef b_ref = b_page->refs[i];
    const PageRef c_ref = c_page.refs[i];
    if (!c_ref.copied()) {
      continue;  // V.c never touched this subtree; keep V.b's side
    }
    if (!b_ref.copied()) {
      // "replacing unaccessed parts in V.b's page tree by corresponding written parts in
      // V.c's page tree" — graft the committed subtree. The graft is SHARED content that
      // V.b's update never touched, so its flags are cleared: V.c's writes are V.c's, and
      // every later committer tests against V.c itself while walking the chain. Carrying
      // V.c's W flags here would make them look like V.b's writes and re-conflict with
      // updates that were in fact based on top of V.c's commit.
      b_page->refs[i] = PageRef{c_ref.block, 0};
      continue;
    }
    // Both sides copied the child: recurse below, after prefetching every such pair.
    recurse.push_back(i);
  }
  if (recurse.empty()) {
    return true;
  }

  // Prefetch all both-copied children of this ref table — V.b's privately, V.c's through
  // the committed loader — one vectored read per side instead of one RPC per child.
  // (A conflict found at child k means children k+1.. were read needlessly, but reads are
  // side-effect free and the version is discarded on conflict anyway.)
  std::vector<BlockNo> b_blocks, c_blocks;
  b_blocks.reserve(recurse.size());
  c_blocks.reserve(recurse.size());
  for (size_t i : recurse) {
    b_blocks.push_back(b_page->refs[i].block);
    c_blocks.push_back(c_page.refs[i].block);
  }
  // Keep the b-side chain lists: the deferred overwrite flush frees each child's old tail
  // without re-walking its chain.
  std::vector<std::vector<BlockNo>> b_chains;
  ASSIGN_OR_RETURN(std::vector<PageReadResult> b_detailed,
                   pages_->ReadPagesDetailed(b_blocks, &b_chains));
  std::vector<Page> b_children, c_children;
  b_children.reserve(b_detailed.size());
  for (PageReadResult& r : b_detailed) {
    RETURN_IF_ERROR(r.status);
    b_children.push_back(std::move(r.page));
  }
  if (load_committed_multi_ != nullptr && BatchingEnabled()) {
    ASSIGN_OR_RETURN(c_children, load_committed_multi_(c_blocks));
    if (c_children.size() != c_blocks.size()) {
      return InternalError("committed multi-loader returned wrong page count");
    }
  } else {
    c_children.reserve(c_blocks.size());
    for (BlockNo bno : c_blocks) {
      ASSIGN_OR_RETURN(Page c_child, load_committed_(bno));
      c_children.push_back(std::move(c_child));
    }
  }

  for (size_t j = 0; j < recurse.size(); ++j) {
    const size_t i = recurse[j];
    const PageRef b_ref = b_page->refs[i];
    const PageRef c_ref = c_page.refs[i];
    ASSIGN_OR_RETURN(bool ok, MergePages(b_ref.flags, &b_children[j], c_ref.flags,
                                         c_children[j], /*is_root=*/false));
    if (!ok) {
      return false;
    }
    PageStore::PendingOverwrite po;
    po.head = b_ref.block;
    po.page = std::move(b_children[j]);
    po.old_tail.assign(b_chains[j].begin() + 1, b_chains[j].end());
    po.old_tail_known = true;
    pending_overwrites_.push_back(std::move(po));
    // The reference keeps V.b's own flags only: V.c's accesses are recorded in V.c's tree,
    // which every later committer tests against while walking the chain.
  }
  return true;
}

}  // namespace afs
