// The serialisability test and one-pass merge (paper §5.2, Figure 6).
//
// When version V.b (based on V.a) tries to commit but V.a has already been succeeded by a
// committed V.c, the Kung–Robinson condition (2) must hold: the write set of V.c must not
// intersect the read set of V.b. "M.b ... can descend V.c's and V.b's page trees in
// parallel to examine if there is a serialisability conflict. This is tested using the R,
// W, S, M, and C flags in the page references. Note that uncopied parts of the tree in
// either V.b or V.c need not be visited since they can neither have been read nor written."
//
// "While descending the two page trees, checking the serialisability constraint, M.b also
// prepares the new current version, which must contain the updates made in V.c and those
// made in V.b. This is done by replacing unaccessed parts in V.b's page tree by
// corresponding written parts in V.c's page tree." The merge mutates V.b's private pages in
// place; committed pages of V.c are only read (and possibly shared into V.b's tree).
//
// Conflict rule at an aligned reference pair (b = to-commit, c = committed successor):
//   * data conflict       b.R ∧ c.W   — V.b read data V.c wrote
//   * structure conflict  b.S ∧ c.M   — V.b searched references V.c modified
//   * structure conflict  b.M ∧ c.S   — V.b modified references V.c's update depended on
//                                        (index alignment below this page is lost, so the
//                                        trees cannot be merged)
// Write/write on the same page is NOT a conflict: blind writes serialise, V.b's data wins
// (it is serialised after V.c).
//
// Flags after the merge: V.b's tree keeps only V.b's OWN access flags; grafted or adopted
// content from V.c enters with cleared flags (shared). This is sufficient for correctness
// because a later committer V.d tests against EVERY committed version after its base while
// walking the chain — V.c's writes are judged against V.c's own tree, not V.b's. Carrying
// V.c's flags forward would make pipelined disjoint updates conflict spuriously with
// writes their own base already included. One consequence: a version that merged contains
// content its flags do not mark as written, so the §5.1 reshare rule must be skipped for
// merged commits (FileServer::Commit does).

#ifndef SRC_CORE_SERIALISE_H_
#define SRC_CORE_SERIALISE_H_

#include <functional>
#include <span>
#include <vector>

#include "src/core/page.h"
#include "src/core/page_store.h"

namespace afs {

class Serialiser {
 public:
  // Vectored form of `load_committed`: result[i] corresponds to blocks[i], all-or-nothing.
  using MultiLoader = std::function<Result<std::vector<Page>>(std::span<const BlockNo>)>;

  // `load_committed` reads committed (immutable) pages, possibly through the server's
  // committed-page cache; V.b's private pages are always read through `pages` directly.
  // `load_committed_multi`, when provided, lets the merge prefetch all of a ref table's
  // both-copied committed children in one vectored read instead of one RPC per child.
  Serialiser(PageStore* pages, std::function<Result<Page>(BlockNo)> load_committed,
             MultiLoader load_committed_multi = nullptr);

  // Test V.b (root page *b_root, already loaded, at block b_head) against committed
  // successor V.c (at block c_head). On success (returns true) V.b's tree has been merged
  // in place — except the root page itself, which is left modified in *b_root for the
  // caller to persist together with the base-reference update. Returns false on a
  // serialisability conflict (V.b's private pages are untouched on disk; the caller
  // removes the version). Errors are I/O or corruption.
  //
  // Merged child pages are rewritten with ONE vectored flush at the end of a successful
  // walk (PageStore::OverwritePages) rather than one OverwritePage per child — and using
  // the chain lists the prefetch reads already produced, so no chain is walked twice.
  //
  // `c_root_hint`, when non-null, is V.c's root page as persisted at its commit; the walk
  // uses it instead of reading c_head, saving the root RPC. Only the flags, references and
  // data of the hint are consulted (mutable header fields — commit reference, locks — play
  // no role in the test), so a snapshot taken at commit time stays valid.
  Result<bool> TestAndMerge(BlockNo b_head, Page* b_root, BlockNo c_head,
                            const Page* c_root_hint = nullptr);

  // Pages visited on both sides during the last TestAndMerge — the paper's claim C3 is
  // that this tracks accessed-set size, not file size.
  uint64_t pages_visited() const { return pages_visited_; }

 private:
  Result<bool> MergePages(uint8_t fb, Page* b_page, uint8_t fc, const Page& c_page,
                          bool is_root);
  Result<bool> MergeRefTables(Page* b_page, const Page& c_page);

  PageStore* pages_;
  std::function<Result<Page>(BlockNo)> load_committed_;
  MultiLoader load_committed_multi_;
  uint64_t pages_visited_ = 0;
  // Overwrites of merged V.b children, deferred to one vectored flush on success.
  std::vector<PageStore::PendingOverwrite> pending_overwrites_;
};

// True iff the flag pair conflicts under the rule above.
bool FlagsConflict(uint8_t fb, uint8_t fc);

}  // namespace afs

#endif  // SRC_CORE_SERIALISE_H_
