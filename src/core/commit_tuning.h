// Global kill switches for the three commit-path mechanisms (docs/PERF.md §5):
//
//   * group commit       — FileServer coalesces concurrent Commit() calls into one
//                          validation + flip round (leader/followers, like the journal's
//                          fsync group commit).
//   * version index      — the in-memory index over committed version heads, their access
//                          signatures and root pages, so validation stops re-walking page
//                          chains through the block store.
//   * parallel validate  — validation of non-overlapping transactions in a commit group
//                          runs concurrently across a small worker pool.
//
// All three default ON. Each has its own switch so benchmarks can attribute the win per
// mechanism (`--no_group_commit`, `--no_version_index`, `--serial_validate` in
// bench_batch), mirroring SetBatchingEnabled for vectored I/O. The switches are process
// globals (relaxed atomics): flipping one mid-flight only changes which path future
// commits take — both paths preserve the §5.2 serialisability guarantees.

#ifndef SRC_CORE_COMMIT_TUNING_H_
#define SRC_CORE_COMMIT_TUNING_H_

namespace afs {

void SetGroupCommitEnabled(bool enabled);
bool GroupCommitEnabled();

void SetVersionIndexEnabled(bool enabled);
bool VersionIndexEnabled();

void SetParallelValidateEnabled(bool enabled);
bool ParallelValidateEnabled();

}  // namespace afs

#endif  // SRC_CORE_COMMIT_TUNING_H_
