#include "src/core/gc.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

namespace afs {

GarbageCollector::GarbageCollector(std::vector<FileServer*> servers, GcOptions options)
    : servers_(std::move(servers)), options_(options) {
  if (options_.keep_versions == 0) {
    options_.keep_versions = 1;
  }
}

GarbageCollector::~GarbageCollector() { Stop(); }

Status WalkVersionTree(PageStore* pages, BlockNo head, std::unordered_set<BlockNo>* visited,
                       const std::function<void(const Page& page,
                                                const std::vector<BlockNo>& chain)>& visit) {
  // Level-synchronous BFS: each wave reads every frontier page in one vectored call, and
  // the chains output hands each page's chain blocks from the same reads that decode the
  // pages — a tree of depth d costs O(d) batched RPCs instead of one per page.
  std::vector<BlockNo> wave;
  std::unordered_set<BlockNo> queued;
  auto enqueue = [&](BlockNo h) {
    if (h != kNilRef && visited->count(h) == 0 && queued.insert(h).second) {
      wave.push_back(h);
    }
  };
  enqueue(head);
  while (!wave.empty()) {
    std::vector<BlockNo> batch = std::move(wave);
    wave.clear();
    std::vector<std::vector<BlockNo>> chains;
    ASSIGN_OR_RETURN(std::vector<PageReadResult> results,
                     pages->ReadPagesDetailed(batch, &chains));
    for (size_t i = 0; i < batch.size(); ++i) {
      RETURN_IF_ERROR(results[i].status);
      for (BlockNo bno : chains[i]) {
        visited->insert(bno);
      }
      visit(results[i].page, chains[i]);
      for (const PageRef& ref : results[i].page.refs) {
        // Follow every reference, copied or shared: a retained version may share pages
        // with a pruned predecessor, and those shared pages must stay reachable.
        enqueue(ref.block);
      }
    }
  }
  return OkStatus();
}

Status GarbageCollector::MarkVersionTree(BlockNo head, std::unordered_set<BlockNo>* marked) {
  return WalkVersionTree(servers_[0]->page_store(), head, marked,
                         [](const Page&, const std::vector<BlockNo>&) {});
}

Status GarbageCollector::PruneOldVersions() {
  FileServer* fs = servers_[0];
  PageStore* pages = fs->page_store();

  // Versions pinned as the base of a live uncommitted update (and everything after them)
  // must be retained: the committer will run serialisability tests along that chain.
  std::unordered_set<BlockNo> pinned_bases;
  for (FileServer* server : servers_) {
    for (BlockNo head : server->ListUncommitted()) {
      auto page = pages->ReadPage(head);
      if (page.ok() && page->base_ref != kNilRef) {
        pinned_bases.insert(page->base_ref);
      }
    }
  }

  for (const FileServer::FileEntry& entry : fs->SnapshotFileTable()) {
    auto chain = fs->CommittedChain(entry.file_id);
    if (!chain.ok() || chain->size() <= options_.keep_versions) {
      continue;
    }
    size_t cut = chain->size() - options_.keep_versions;
    for (size_t i = 0; i < cut; ++i) {
      if (pinned_bases.count((*chain)[i]) > 0) {
        cut = i;
        break;
      }
    }
    if (cut == 0) {
      continue;
    }
    BlockNo new_oldest = (*chain)[cut];
    // Maintain Figure 4's invariant: "the oldest version's base reference [is] nil."
    RETURN_IF_ERROR(pages->LockBlock(new_oldest, fs->port()));
    auto page = pages->ReadPage(new_oldest);
    Status st = page.ok() ? OkStatus() : page.status();
    if (st.ok()) {
      page->base_ref = kNilRef;
      st = pages->OverwritePage(new_oldest, *page);
    }
    RETURN_IF_ERROR(pages->UnlockBlock(new_oldest, fs->port()));
    RETURN_IF_ERROR(st);
    RETURN_IF_ERROR(fs->SetOldestHead(entry.file_id, new_oldest));
    // Every server's in-memory version index must drop the pruned records before the sweep
    // can free their pages (a stale cached root could otherwise reference freed blocks).
    std::vector<BlockNo> pruned_heads(chain->begin(),
                                      chain->begin() + static_cast<ptrdiff_t>(cut));
    for (FileServer* server : servers_) {
      server->OnVersionsPruned(entry.file_id, pruned_heads);
    }
    std::lock_guard<std::mutex> lock(mu_);
    stats_.versions_pruned += cut;
  }
  return OkStatus();
}

Status GarbageCollector::RunCycle() {
  FileServer* fs = servers_[0];
  PageStore* pages = fs->page_store();

  RETURN_IF_ERROR(PruneOldVersions());

  // Ordering is load-bearing (see header): candidate snapshot FIRST, then roots. Any block
  // allocated after this snapshot is not a sweep candidate, so concurrent updates can never
  // lose pages; the allocators hand out fresh block numbers cursor-wise, so a candidate
  // freed and reallocated within one cycle does not occur at these scales.
  pages->BeginAllocationEpoch();
  ASSIGN_OR_RETURN(std::vector<BlockNo> candidates, pages->blocks()->ListBlocks());

  // Drain in-flight ops: a mutator may have allocated a block just before the epoch
  // opened but not yet linked it anywhere (a half-built version head, a copy-on-write
  // page). Such a block is a candidate, is reachable from no root, and would be swept
  // while live. After the fence every pre-epoch allocation is either published into a
  // root read below or already freed; ops starting after the epoch only allocate
  // born-during-mark blocks, which are never swept this cycle.
  for (FileServer* server : servers_) {
    server->QuiesceOps();
  }

  // Snapshot the uncommitted heads BEFORE walking the committed chains. A version that
  // commits mid-cycle is then covered either way: one that commits before its file's
  // chain walk appears in the chain; one that commits after was in this snapshot and is
  // walked as root set 2 (tolerating kNotFound if it aborted instead). Taking this
  // snapshot after the chain walk leaves a window where a commit is in neither root set
  // and its pre-epoch blocks would be swept while live.
  std::vector<BlockNo> uncommitted_heads;
  for (FileServer* server : servers_) {
    if (!server->running()) {
      continue;  // a crashed server's uncommitted versions are garbage by design
    }
    for (BlockNo head : server->ListUncommitted()) {
      uncommitted_heads.push_back(head);
    }
  }

  std::unordered_set<BlockNo> marked;
  Status mark_status = OkStatus();

  // Root set 1: every retained committed version of every file (walk the chains), plus the
  // file table page itself (marked via its chain below).
  for (const FileServer::FileEntry& entry : fs->SnapshotFileTable()) {
    auto chain = fs->CommittedChain(entry.file_id);
    if (!chain.ok()) {
      mark_status = chain.status();
      break;
    }
    for (BlockNo head : *chain) {
      mark_status = MarkVersionTree(head, &marked);
      if (!mark_status.ok()) {
        break;
      }
    }
    if (!mark_status.ok()) {
      break;
    }
  }
  // Root set 2: the uncommitted versions snapshotted above.
  if (mark_status.ok()) {
    for (BlockNo head : uncommitted_heads) {
      Status st = MarkVersionTree(head, &marked);
      if (!st.ok() && st.code() != ErrorCode::kNotFound) {
        mark_status = st;
        break;
      }
      // kNotFound: the version committed or aborted while we walked; its blocks are
      // covered by the chain roots or are legitimately garbage.
    }
  }

  std::unordered_set<BlockNo> born_during_mark = pages->EndAllocationEpoch();
  if (!mark_status.ok()) {
    // Conservative abort: a racing mutation invalidated the walk. Garbage survives to the
    // next cycle; nothing live was freed.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.cycles_aborted;
    return mark_status;
  }

  // Mark the file table page chain itself.
  auto table_blocks = fs->FileTableBlocks();
  if (table_blocks.ok()) {
    for (BlockNo bno : *table_blocks) {
      marked.insert(bno);
    }
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.cycles_aborted;
    return table_blocks.status();
  }

  std::vector<BlockNo> to_free;
  for (BlockNo bno : candidates) {
    if (marked.count(bno) == 0 && born_during_mark.count(bno) == 0) {
      to_free.push_back(bno);
    }
  }
  uint64_t swept = 0;
  if (!to_free.empty() && BatchingEnabled() && pages->blocks()->FreeMulti(to_free).ok()) {
    swept = to_free.size();
  } else {
    // Baseline / fallback: free one at a time so a single bad block cannot stall the sweep.
    for (BlockNo bno : to_free) {
      if (pages->blocks()->Free(bno).ok()) {
        ++swept;
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.cycles;
  stats_.blocks_swept += swept;
  return OkStatus();
}

void GarbageCollector::Start(std::chrono::milliseconds interval) {
  Stop();
  stop_.store(false);
  background_ = std::thread([this, interval] {
    while (!stop_.load()) {
      (void)RunCycle();
      for (int i = 0; i < 100 && !stop_.load(); ++i) {
        std::this_thread::sleep_for(interval / 100);
      }
    }
  });
}

void GarbageCollector::Stop() {
  stop_.store(true);
  if (background_.joinable()) {
    background_.join();
  }
}

GcStats GarbageCollector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace afs
