#include "src/core/cache.h"

#include "src/obs/trace.h"

namespace afs {

void PageCache::Put(uint64_t file_id, BlockNo version_head, const PagePath& path,
                    std::vector<uint8_t> data) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[file_id];
  entry.version_head = version_head;
  entry.pages[path] = std::move(data);
}

std::optional<std::vector<uint8_t>> PageCache::Get(uint64_t file_id,
                                                   const PagePath& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(file_id);
  if (it == entries_.end()) {
    misses_->Inc();
    obs::Trace(obs::TraceEvent::kCacheMiss, file_id);
    return std::nullopt;
  }
  auto page = it->second.pages.find(path);
  if (page == it->second.pages.end()) {
    misses_->Inc();
    obs::Trace(obs::TraceEvent::kCacheMiss, file_id);
    return std::nullopt;
  }
  hits_->Inc();
  obs::Trace(obs::TraceEvent::kCacheHit, file_id);
  return page->second;
}

BlockNo PageCache::VersionOf(uint64_t file_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(file_id);
  return it == entries_.end() ? kNilRef : it->second.version_head;
}

std::vector<PagePath> PageCache::PathsOf(uint64_t file_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PagePath> out;
  auto it = entries_.find(file_id);
  if (it != entries_.end()) {
    for (const auto& [path, data] : it->second.pages) {
      (void)data;
      out.push_back(path);
    }
  }
  return out;
}

void PageCache::ApplyValidation(uint64_t file_id, BlockNo new_head,
                                const std::vector<PagePath>& invalid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(file_id);
  if (it == entries_.end()) {
    return;
  }
  for (const PagePath& path : invalid) {
    it->second.pages.erase(path);
  }
  it->second.version_head = new_head;
}

void PageCache::Drop(uint64_t file_id) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(file_id);
}

void PageCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace afs
