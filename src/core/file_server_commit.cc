// FileServer commit path (§5.2), super-file commit completion (§5.3), abort, the §5.1
// reshare rule, cache validation (§5.4), and the RPC surface.

#include <algorithm>
#include <chrono>
#include <deque>
#include <mutex>
#include <unordered_set>

#include "src/base/wire.h"
#include "src/core/file_server.h"
#include "src/core/protocol.h"
#include "src/core/serialise.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/rpc/client.h"

namespace afs {

// ---------------------------------------------------------------------------
// Commit (§5.2)
// ---------------------------------------------------------------------------

Result<bool> FileServer::TestAndSetCommitRef(BlockNo base_head, BlockNo new_head,
                                             BlockNo* successor) {
  // "This is the only critical section in version commit: test and set the commit
  // reference." Realised exactly as §4 prescribes: lock the version page's block, read it,
  // examine and modify it, write and unlock.
  ASSIGN_OR_RETURN(Port block_lock, AcquireBlockLock(base_head));
  bool won = false;
  Status st = OkStatus();
  auto base = LoadPageUncached(base_head);
  if (!base.ok()) {
    st = base.status();
  } else if (base->commit_ref == kNilRef) {
    base->commit_ref = new_head;
    st = pages_.OverwritePage(base_head, *base);
    won = st.ok();
  } else {
    *successor = base->commit_ref;
  }
  ReleaseBlockLock(base_head, block_lock);
  RETURN_IF_ERROR(st);
  return won;
}

Result<BlockNo> FileServer::Commit(const Capability& version) {
  std::shared_lock<std::shared_mutex> ops_gate(ops_gate_);
  BlockNo head;
  RETURN_IF_ERROR(VerifyVersionCap(version, Rights::kWrite, &head));
  const auto commit_start = std::chrono::steady_clock::now();
  // The whole-commit span: phase spans below it (commit.begin / commit.flip /
  // commit.validate / commit.merge / commit.finish) tile its duration, so the critical-path
  // analyzer can attribute commit.latency_ns to phases. Lives exactly as long as the
  // CommitScope latency measurement.
  obs::ScopedSpan commit_span("commit", obs::SpanKind::kPhase, head, 0);
  // Record outcome + latency on every exit path (including early error returns past this
  // point). Relaxed atomics only — the commit hot path takes no statistics mutex.
  struct CommitScope {
    FileServer* fs;
    std::chrono::steady_clock::time_point start;
    obs::Counter* outcome = nullptr;
    ~CommitScope() {
      auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
      fs->commit_latency_ns_->Record(static_cast<uint64_t>(ns));
      fs->slo_commit_->Record(static_cast<uint64_t>(ns));
      if (outcome != nullptr) {
        outcome->Inc();
      }
    }
  } scope{this, commit_start};
  obs::Trace(obs::TraceEvent::kCommitBegin, head);

  // commit.begin: admission (version-op guard) plus the root page read.
  obs::ScopedSpan begin_span("commit.begin", obs::SpanKind::kPhase, head, 0);
  ASSIGN_OR_RETURN(VersionOpGuard op, AcquireVersionOp(head));
  if (op.info == nullptr) {
    return AbortedError("version is not managed by this server (already finished?)");
  }
  VersionInfo* info = op.info;
  ASSIGN_OR_RETURN(Page root, LoadPageUncached(head));
  begin_span.End();

  int attempts = 0;
  for (;;) {
    if (++attempts > 256) {
      scope.outcome = commit_conflicts_;
      commit_span.set_status(static_cast<uint8_t>(ErrorCode::kConflict));
      obs::Trace(obs::TraceEvent::kCommitAbort, head);
      return ConflictError("commit starved by concurrent committers");
    }
    // commit.flip: the §4 critical section — lock the base's block, test-and-set the
    // commit reference, unlock. Block-lock contention shows up here.
    BlockNo successor = kNilRef;
    obs::ScopedSpan flip_span("commit.flip", obs::SpanKind::kPhase, root.base_ref, 0);
    ASSIGN_OR_RETURN(bool won, TestAndSetCommitRef(root.base_ref, head, &successor));
    flip_span.End();
    if (won) {
      break;
    }
    // The base has a committed successor V.c: run the serialisability test and, on
    // success, merge the two updates and try to succeed V.c instead (§5.2, Figure 6).
    // The serialiser emits the commit.validate (tree walk) and commit.merge (vectored
    // flush) phase spans from inside TestAndMerge.
    serialise_tests_ctr_->Inc();
    obs::Trace(obs::TraceEvent::kCommitSerialise, head, successor);
    Serialiser serialiser(
        &pages_, [this](BlockNo bno) { return LoadPage(bno); },
        [this](std::span<const BlockNo> bnos) { return LoadPagesCommitted(bnos); });
    auto mergeable = serialiser.TestAndMerge(head, &root, successor);
    if (!mergeable.ok() || !*mergeable) {
      // "When serialise returns FALSE, the concurrent updates are not serialisable, and
      // V.b is removed, and its owner notified."
      Status conflict = mergeable.ok()
                            ? ConflictError("update not serialisable with committed version")
                            : mergeable.status();
      scope.outcome = commit_conflicts_;
      commit_span.set_status(static_cast<uint8_t>(conflict.code()));
      obs::Trace(obs::TraceEvent::kCommitConflict, head, successor);
      obs::ScopedSpan abort_span("commit.abort", obs::SpanKind::kPhase, head, successor);
      (void)AbortLocked(info);
      return conflict;
    }
    commit_merged_->Inc();
    obs::Trace(obs::TraceEvent::kCommitMerge, head, successor);
    obs::ScopedSpan merge_span("commit.merge", obs::SpanKind::kPhase, head, successor);
    root.base_ref = successor;
    RETURN_IF_ERROR(pages_.OverwritePage(head, root));
  }

  if (attempts == 1) {
    scope.outcome = commit_fast_path_;
    obs::Trace(obs::TraceEvent::kCommitFastPath, head);
  } else {
    scope.outcome = commit_validated_;
  }
  // commit.finish: current-version bookkeeping, §5.3 sub-file commit completion, and the
  // §5.1 reshare pass.
  obs::ScopedSpan finish_span("commit.finish", obs::SpanKind::kPhase, head,
                              static_cast<uint64_t>(attempts));
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    current_cache_[info->file_id] = head;
  }
  if (info->is_super_update) {
    RETURN_IF_ERROR(FinishSuperCommit(info));
  }
  // §5.1 reshare, fast-path commits only: a merged tree contains grafted content its flags
  // do not mark as written (see serialise.h), which resharing would silently undo.
  if (options_.reshare_on_commit && attempts == 1) {
    (void)ReshareCleanPages(head);  // best effort; failures leave extra garbage for the GC
  }
  {
    std::lock_guard<std::mutex> lock(versions_mu_);
    uncommitted_.erase(head);
  }
  return head;
}

Status FileServer::FinishSuperCommit(VersionInfo* info) {
  // "After commit on a super-file, the page tree must be descended to commit the sub-files
  // of the super-file, and clear the locks. These commits always succeed, because the
  // locks prevent access by other clients during the update to the super-file."
  std::unordered_set<BlockNo> superseded;
  for (const auto& [old_head, new_head] : info->copied_subfiles) {
    ASSIGN_OR_RETURN(Port block_lock, AcquireBlockLock(old_head));
    auto base = LoadPageUncached(old_head);
    Status st = base.ok() ? OkStatus() : base.status();
    if (st.ok() && base->commit_ref == kNilRef) {
      base->commit_ref = new_head;
      base->inner_lock = kNullPort;
      st = pages_.OverwritePage(old_head, *base);
    }
    ReleaseBlockLock(old_head, block_lock);
    RETURN_IF_ERROR(st);
    superseded.insert(old_head);
    // Keep the current-version hint warm for the sub-file.
    auto new_page = LoadPageUncached(new_head);
    if (new_page.ok()) {
      std::lock_guard<std::mutex> lock(table_mu_);
      current_cache_[new_page->file_cap.object] = new_head;
    }
  }
  for (BlockNo sub_head : info->locked_subfiles) {
    if (superseded.count(sub_head) == 0) {
      (void)ClearInnerLock(sub_head, info->owner);
    }
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Abort
// ---------------------------------------------------------------------------

Status FileServer::AbortLocked(VersionInfo* info) {
  // Release §5.3 locks first.
  for (BlockNo sub_head : info->locked_subfiles) {
    (void)ClearInnerLock(sub_head, info->owner);
  }
  (void)ClearTopLock(info->base_head, info->owner);

  // Unregister files created inside this aborted update.
  if (!info->created_subfiles.empty()) {
    auto block_lock = AcquireBlockLock(table_head_);
    if (block_lock.ok()) {
      {
        std::lock_guard<std::mutex> lock(table_mu_);
        if (LoadFileTable().ok()) {
          for (uint64_t sub_id : info->created_subfiles) {
            files_.erase(sub_id);
            current_cache_.erase(sub_id);
          }
          (void)PersistFileTableLocked();
        }
      }
      ReleaseBlockLock(table_head_, *block_lock);
    }
  }

  // Free exactly the chains this version allocated; merged trees may reference committed
  // pages of other versions, which must survive.
  for (BlockNo bno : info->allocated_blocks) {
    (void)pages_.FreePage(bno);
  }

  BlockNo head = info->head;
  std::lock_guard<std::mutex> lock(versions_mu_);
  uncommitted_.erase(head);
  return OkStatus();
}

Status FileServer::Abort(const Capability& version) {
  std::shared_lock<std::shared_mutex> ops_gate(ops_gate_);
  BlockNo head;
  RETURN_IF_ERROR(VerifyVersionCap(version, Rights::kWrite, &head));
  ASSIGN_OR_RETURN(VersionOpGuard op, AcquireVersionOp(head));
  if (op.info == nullptr) {
    return OkStatus();  // already gone; abort is idempotent
  }
  return AbortLocked(op.info);
}

// ---------------------------------------------------------------------------
// Reshare (§5.1's GC rule, applied at commit)
// ---------------------------------------------------------------------------

Result<bool> FileServer::ReshareSubtree(Page* page, bool* subtree_clean) {
  // Post-order: try to reshare each copied child, then report whether this page's whole
  // subtree is free of writes and modifications.
  bool changed = false;
  bool clean = true;
  for (PageRef& ref : page->refs) {
    if (!ref.copied() || ref.block == kNilRef) {
      continue;
    }
    auto child = LoadPageUncached(ref.block);
    if (!child.ok()) {
      clean = false;
      continue;
    }
    if (child->IsVersionPage()) {
      clean = false;  // sub-file version pages are never reshared
      continue;
    }
    bool child_clean = true;
    ASSIGN_OR_RETURN(bool child_changed, ReshareSubtree(&*child, &child_clean));
    if (child_changed) {
      UncachePage(ref.block);
      RETURN_IF_ERROR(pages_.OverwritePage(ref.block, *child));
      changed = true;
    }
    if (child_clean && !ref.written() && !ref.modified() && child->base_ref != kNilRef) {
      // "The garbage collector may remove pages that were copied but not written or
      // modified and reshare the corresponding page from the version on which it was
      // based." The copy is left for the background GC to sweep (it is unreachable once
      // the reference is redirected); freeing it here could pull blocks out from under a
      // concurrent serialisability test.
      ref.block = child->base_ref;
      ref.flags = 0;
      changed = true;
    } else if (!child_clean || ref.written() || ref.modified()) {
      clean = false;
    }
  }
  *subtree_clean = clean;
  return changed;
}

Status FileServer::ReshareCleanPages(BlockNo head) {
  ASSIGN_OR_RETURN(Page root, LoadPageUncached(head));
  bool clean = true;
  ASSIGN_OR_RETURN(bool changed, ReshareSubtree(&root, &clean));
  if (!changed) {
    return OkStatus();
  }
  // The version page is shared mutable state: a successor may set our commit reference at
  // any moment. Re-read under the block lock and only replace the reference table, keeping
  // the freshly observed header (commit reference, locks).
  ASSIGN_OR_RETURN(Port block_lock, AcquireBlockLock(head));
  Status st;
  auto fresh = LoadPageUncached(head);
  if (fresh.ok()) {
    fresh->refs = root.refs;
    st = pages_.OverwritePage(head, *fresh);
  } else {
    st = fresh.status();
  }
  ReleaseBlockLock(head, block_lock);
  return st;
}

Status FileServer::FreePrivatePages(BlockNo head) {
  // Only used for orphan cleanup in tests; normal aborts free via allocated_blocks.
  ASSIGN_OR_RETURN(Page root, LoadPageUncached(head));
  std::deque<PageRef> frontier(root.refs.begin(), root.refs.end());
  while (!frontier.empty()) {
    PageRef ref = frontier.front();
    frontier.pop_front();
    if (!ref.copied() || ref.block == kNilRef) {
      continue;
    }
    auto child = LoadPageUncached(ref.block);
    if (child.ok()) {
      frontier.insert(frontier.end(), child->refs.begin(), child->refs.end());
    }
    (void)pages_.FreePage(ref.block);
  }
  return pages_.FreePage(head);
}

// ---------------------------------------------------------------------------
// Cache validation (§5.4)
// ---------------------------------------------------------------------------

Result<bool> FileServer::VersionWrotePath(BlockNo head, const PagePath& path) {
  ASSIGN_OR_RETURN(Page root, LoadPageUncached(head));
  return VersionWrotePathFromRoot(root, path);
}

Result<bool> FileServer::VersionWrotePathFromRoot(const Page& root, const PagePath& path) {
  Page page = root;
  uint8_t flags = page.root_flags;
  for (size_t depth = 0;; ++depth) {
    const bool last = depth == path.depth();
    if (last) {
      return (flags & (RefFlag::kWritten | RefFlag::kModified)) != 0;
    }
    // An ancestor whose references were modified may have moved the page; conservative.
    if ((flags & RefFlag::kModified) != 0) {
      return true;
    }
    if ((flags & RefFlag::kCopied) == 0) {
      return false;  // untouched subtree — cannot contain writes
    }
    if (path.at(depth) >= page.refs.size()) {
      return true;  // structure differs from the cached view; be conservative
    }
    PageRef ref = page.refs[path.at(depth)];
    flags = ref.flags;
    if ((flags & RefFlag::kCopied) == 0 || ref.block == kNilRef) {
      // Deeper pages were never copied in this version: no writes below. The final
      // verdict for this path is just this reference's own W/M bits.
      return (flags & (RefFlag::kWritten | RefFlag::kModified)) != 0;
    }
    if (depth + 1 < path.depth()) {
      ASSIGN_OR_RETURN(page, LoadPage(ref.block));
    }
  }
}

Result<FileServer::CacheCheck> FileServer::ValidateCache(
    const Capability& file, BlockNo cached_head, const std::vector<PagePath>& cached_paths) {
  uint64_t file_id;
  RETURN_IF_ERROR(VerifyFileCap(file, Rights::kRead, &file_id));
  ASSIGN_OR_RETURN(BlockNo current, FindCurrentHead(file_id));

  CacheCheck out;
  out.current_version = SignVersionCap(current);
  if (cached_head == current) {
    // "For files that are not shared, the cache entry will always be the most recent
    // version of the file, so the serialisability test is a null operation."
    return out;
  }

  // Collect the committed versions after the cached one by following commit references.
  std::vector<BlockNo> newer;
  BlockNo cursor = cached_head;
  for (int step = 0; step < 4096; ++step) {
    auto page = LoadPageUncached(cursor);
    if (!page.ok() || (cursor == cached_head && page->file_cap.object != file_id)) {
      // The cached version was pruned (or never belonged to this file): discard everything.
      out.invalid = cached_paths;
      return out;
    }
    if (page->commit_ref == kNilRef) {
      break;
    }
    cursor = page->commit_ref;
    newer.push_back(cursor);
  }

  // "The serialisability test can be made in time proportional to the size of the
  // intersection of the set of pages of the version in the cache and the union of the sets
  // of pages in the versions since then." Each intervening version's root is read once;
  // per-path work then descends only parts that version actually wrote.
  ASSIGN_OR_RETURN(std::vector<Page> roots, pages_.ReadPages(newer));
  for (const PagePath& path : cached_paths) {
    for (const Page& root : roots) {
      ASSIGN_OR_RETURN(bool wrote, VersionWrotePathFromRoot(root, path));
      if (wrote) {
        out.invalid.push_back(path);
        break;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

Result<FileServer::FileStatInfo> FileServer::FileStat(const Capability& file) {
  uint64_t file_id;
  RETURN_IF_ERROR(VerifyFileCap(file, Rights::kRead, &file_id));
  FileStatInfo info;
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    ASSIGN_OR_RETURN(FileEntry entry, LookupFileLocked(file_id));
    info.is_super = entry.is_super;
  }
  ASSIGN_OR_RETURN(std::vector<BlockNo> chain, CommittedChain(file_id));
  info.committed_versions = static_cast<uint32_t>(chain.size());
  info.current_head = chain.empty() ? kNilRef : chain.back();
  return info;
}

std::vector<BlockNo> FileServer::ListUncommitted() const {
  std::lock_guard<std::mutex> lock(versions_mu_);
  std::vector<BlockNo> out;
  out.reserve(uncommitted_.size());
  for (const auto& [head, info] : uncommitted_) {
    (void)info;
    out.push_back(head);
  }
  return out;
}

void FileServer::OnRestart() {
  // A crashed file server loses its uncommitted versions ("clients must be prepared to
  // redo the updates in a version") and rebuilds its view of the shared store.
  {
    std::lock_guard<std::mutex> lock(versions_mu_);
    uncommitted_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    committed_cache_.clear();
    cache_lru_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    current_cache_.clear();
  }
  (void)AttachStore();
}

}  // namespace afs
