// FileServer commit path (§5.2), super-file commit completion (§5.3), abort, the §5.1
// reshare rule, cache validation (§5.4), and the RPC surface.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>

#include "src/base/wire.h"
#include "src/core/commit_tuning.h"
#include "src/core/file_server.h"
#include "src/core/protocol.h"
#include "src/core/serialise.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/rpc/client.h"
#include "src/rpc/transport.h"

namespace afs {
namespace {

// Run `tasks` with up to `max_threads` on-demand workers (the calling thread is one of
// them). Used by the commit combiner to validate independent transactions concurrently;
// spawn cost is microseconds against the 100µs-scale wire latency each walk pays.
void RunParallel(std::vector<std::function<void()>>* tasks, size_t max_threads) {
  if (tasks->size() <= 1 || max_threads <= 1) {
    for (auto& task : *tasks) {
      task();
    }
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&] {
    for (size_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) < tasks->size();) {
      (*tasks)[i]();
    }
  };
  const size_t nthreads = std::min(max_threads, tasks->size());
  std::vector<std::thread> extra;
  extra.reserve(nthreads - 1);
  // Fold each worker's transport-call count back into the calling thread at join, so the
  // leader's commit.rpcs sample (a Transport::ThreadCalls delta) keeps counting RPCs the
  // workers issued on its behalf. A fresh thread's counter starts at zero, so its final
  // value IS its delta — and nested RunParallel calls compose the same way.
  std::atomic<uint64_t> worker_calls{0};
  for (size_t t = 1; t < nthreads; ++t) {
    extra.emplace_back([&worker, &worker_calls] {
      worker();
      worker_calls.fetch_add(Transport::ThreadCalls(), std::memory_order_relaxed);
    });
  }
  worker();
  for (std::thread& t : extra) {
    t.join();
  }
  Transport::AddThreadCalls(worker_calls.load(std::memory_order_relaxed));
}

}  // namespace

// ---------------------------------------------------------------------------
// Commit (§5.2)
// ---------------------------------------------------------------------------

Result<bool> FileServer::TestAndSetCommitRef(BlockNo base_head, BlockNo new_head,
                                             BlockNo* successor) {
  // "This is the only critical section in version commit: test and set the commit
  // reference." Realised exactly as §4 prescribes: lock the version page's block, read it,
  // examine and modify it, write and unlock.
  ASSIGN_OR_RETURN(Port block_lock, AcquireBlockLock(base_head));
  bool won = false;
  Status st = OkStatus();
  auto base = LoadPageUncached(base_head);
  if (!base.ok()) {
    st = base.status();
  } else if (base->commit_ref == kNilRef) {
    base->commit_ref = new_head;
    st = pages_.OverwritePage(base_head, *base);
    won = st.ok();
  } else {
    *successor = base->commit_ref;
  }
  ReleaseBlockLock(base_head, block_lock);
  RETURN_IF_ERROR(st);
  return won;
}

Result<BlockNo> FileServer::Commit(const Capability& version) {
  std::shared_lock<std::shared_mutex> ops_gate(ops_gate_);
  BlockNo head;
  RETURN_IF_ERROR(VerifyVersionCap(version, Rights::kWrite, &head));
  const auto commit_start = std::chrono::steady_clock::now();
  const uint64_t rpcs_before = Transport::ThreadCalls();
  // The whole-commit span: phase spans below it (commit.begin / commit.flip /
  // commit.validate / commit.merge / commit.finish / commit.wait) tile its duration, so the
  // critical-path analyzer can attribute commit.latency_ns to phases. Lives exactly as long
  // as the CommitScope latency measurement.
  obs::ScopedSpan commit_span("commit", obs::SpanKind::kPhase, head, 0);
  // Record outcome + latency + RPC cost on every exit path (including early error returns
  // past this point). Relaxed atomics only — the commit hot path takes no statistics mutex.
  // commit.rpcs counts transport calls issued by THIS thread; work a group leader performs
  // on a parked follower's behalf lands in the leader's own sample, and RunParallel folds
  // its worker threads' calls back into the leader so parallel validation is not lost.
  struct CommitScope {
    FileServer* fs;
    std::chrono::steady_clock::time_point start;
    uint64_t rpcs_before;
    obs::Counter* outcome = nullptr;
    ~CommitScope() {
      auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
      fs->commit_latency_ns_->Record(static_cast<uint64_t>(ns));
      fs->slo_commit_->Record(static_cast<uint64_t>(ns));
      fs->commit_rpcs_->Record(Transport::ThreadCalls() - rpcs_before);
      if (outcome != nullptr) {
        outcome->Inc();
      }
    }
  } scope{this, commit_start, rpcs_before};
  obs::Trace(obs::TraceEvent::kCommitBegin, head);

  // commit.begin: admission (version-op guard) plus the root page read.
  obs::ScopedSpan begin_span("commit.begin", obs::SpanKind::kPhase, head, 0);
  ASSIGN_OR_RETURN(VersionOpGuard op, AcquireVersionOp(head));
  if (op.info == nullptr) {
    return AbortedError("version is not managed by this server (already finished?)");
  }
  VersionInfo* info = op.info;
  ASSIGN_OR_RETURN(Page root, LoadPageUncached(head));
  begin_span.End();

  // Super-file updates keep the classic serial path: their sub-file commit completion and
  // lock discipline (§5.3) do not batch. Everything else goes through the combiner.
  Result<BlockNo> result = (GroupCommitEnabled() && !info->is_super_update)
                               ? CommitGrouped(info, std::move(root), &scope.outcome)
                               : CommitSerialLocked(info, std::move(root), &scope.outcome);
  if (!result.ok()) {
    commit_span.set_status(static_cast<uint8_t>(result.status().code()));
  }
  return result;
}

Result<BlockNo> FileServer::CommitSerialLocked(VersionInfo* info, Page root,
                                               obs::Counter** outcome_ctr) {
  const BlockNo head = info->head;
  // True while no real merge has run: the tree is exactly this update's own pages, so the
  // §5.1 reshare pass is safe. Signature-decided no-op hops keep it (they adopt nothing);
  // a serialiser merge clears it (grafted content must not be reshared away).
  bool fast_path = true;
  int attempts = 0;
  for (;;) {
    if (++attempts > 256) {
      *outcome_ctr = commit_conflicts_;
      obs::Trace(obs::TraceEvent::kCommitAbort, head);
      return ConflictError("commit starved by concurrent committers");
    }
    // commit.flip: the §4 critical section — lock the base's block, test-and-set the
    // commit reference, unlock. Block-lock contention shows up here.
    BlockNo successor = kNilRef;
    obs::ScopedSpan flip_span("commit.flip", obs::SpanKind::kPhase, root.base_ref, 0);
    ASSIGN_OR_RETURN(bool won, TestAndSetCommitRef(root.base_ref, head, &successor));
    flip_span.End();
    if (won) {
      break;
    }
    // The base has a committed successor V.c: run the serialisability test and, on
    // success, merge the two updates and try to succeed V.c instead (§5.2, Figure 6).
    // When the index knows V.c's access signature, the test (and a no-op merge) runs
    // entirely in memory; otherwise the serialiser walks the trees.
    PendingCommit req;
    req.info = info;
    req.root = std::move(root);
    req.fast_path = fast_path;
    const AccessSig* c_sig = nullptr;
    const Page* c_root = nullptr;
    std::vector<VersionIndex::CommittedRec> recs;
    if (VersionIndexEnabled() &&
        index_.SuccessorsAfter(info->file_id, req.root.base_ref, &recs) && !recs.empty() &&
        recs.front().head == successor) {
      index_hits_->Inc();
      c_sig = recs.front().sig.get();
      c_root = recs.front().root.get();
    } else if (VersionIndexEnabled()) {
      index_misses_->Inc();
    }
    if (c_sig == nullptr && c_root == nullptr) {
      // The successor was not served by the index, so it may be an in-doubt cross-shard
      // tip (the index only learns of those at decide time). A prepared successor is not
      // committed: this update can neither validate against it nor chain behind it, so
      // the only §5.2-faithful outcome is a conflict abort — the client redoes the update
      // once the coordinator's decision lands.
      auto succ = LoadPageUncached(successor);
      if (succ.ok() && succ->prepare_txn != 0) {
        *outcome_ctr = commit_conflicts_;
        obs::Trace(obs::TraceEvent::kCommitConflict, head, successor);
        (void)AbortLocked(info);
        return ConflictError("file has an in-doubt cross-shard commit in progress");
      }
    }
    Status st = ValidateAgainstSuccessor(&req, successor, c_sig, c_root);
    root = std::move(req.root);
    fast_path = req.fast_path;
    if (!st.ok()) {
      // "When serialise returns FALSE, the concurrent updates are not serialisable, and
      // V.b is removed, and its owner notified."
      *outcome_ctr = commit_conflicts_;
      obs::Trace(obs::TraceEvent::kCommitConflict, head, successor);
      obs::ScopedSpan abort_span("commit.abort", obs::SpanKind::kPhase, head, successor);
      (void)AbortLocked(info);
      return st;
    }
    root.base_ref = successor;
    RETURN_IF_ERROR(pages_.OverwritePage(head, root));
  }

  if (attempts == 1) {
    *outcome_ctr = commit_fast_path_;
    obs::Trace(obs::TraceEvent::kCommitFastPath, head);
  } else {
    *outcome_ctr = commit_validated_;
  }
  // commit.finish: current-version bookkeeping, §5.3 sub-file commit completion, and the
  // §5.1 reshare pass.
  obs::ScopedSpan finish_span("commit.finish", obs::SpanKind::kPhase, head,
                              static_cast<uint64_t>(attempts));
  const bool reshare = options_.reshare_on_commit && fast_path;
  IndexCommitted(info, root.base_ref, root, reshare);
  if (info->is_super_update) {
    RETURN_IF_ERROR(FinishSuperCommit(info));
  }
  if (reshare) {
    (void)ReshareCleanPages(head);  // best effort; failures leave extra garbage for the GC
  }
  {
    std::lock_guard<std::mutex> lock(versions_mu_);
    uncommitted_.erase(head);
  }
  return head;
}

Status FileServer::ValidateAgainstSuccessor(PendingCommit* req, BlockNo c_head,
                                            const AccessSig* c_sig, const Page* c_root) {
  serialise_tests_ctr_->Inc();
  obs::Trace(obs::TraceEvent::kCommitSerialise, req->info->head, c_head);
  if (c_sig != nullptr) {
    switch (TestSigs(req->info->sig, *c_sig)) {
      case SigVerdict::kConflict:
        return ConflictError("update not serialisable with committed version");
      case SigVerdict::kNoopMerge:
        // Serialisable, and the merge adopts nothing: V.b's tree is already the merged
        // tree. The successor hop costs zero page I/O.
        commit_sig_fast_->Inc();
        return OkStatus();
      case SigVerdict::kUnknown:
        break;
    }
  }
  Serialiser serialiser(
      &pages_, [this](BlockNo bno) { return LoadPage(bno); },
      [this](std::span<const BlockNo> bnos) { return LoadPagesCommitted(bnos); });
  auto mergeable = serialiser.TestAndMerge(req->info->head, &req->root, c_head, c_root);
  if (!mergeable.ok()) {
    return mergeable.status();
  }
  if (!*mergeable) {
    return ConflictError("update not serialisable with committed version");
  }
  commit_merged_->Inc();
  obs::Trace(obs::TraceEvent::kCommitMerge, req->info->head, c_head);
  req->fast_path = false;  // merged trees contain grafted content; never reshared
  return OkStatus();
}

void FileServer::IndexCommitted(VersionInfo* info, BlockNo base, const Page& root,
                                bool reshared) {
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    current_cache_[info->file_id] = info->head;
  }
  if (!VersionIndexEnabled()) {
    return;
  }
  VersionIndex::CommittedRec rec;
  rec.head = info->head;
  if (info->sig.valid) {
    // The signature stays sound even when the commit merged or reshares: it records this
    // update's OWN flags, which is exactly what the on-disk tree keeps (grafts enter
    // flags-cleared; reshare only drops flags, making signature tests conservative).
    rec.sig = std::make_shared<const AccessSig>(info->sig);
  }
  if (!reshared) {
    // Reshared commits get no root snapshot: the §5.1 pass rewrites the reference table
    // right after commit and the superseded copies become garbage, so a stale snapshot
    // could point at freed blocks.
    rec.root = std::make_shared<const Page>(root);
  }
  index_.OnCommit(info->file_id, base, std::move(rec));
}

Result<BlockNo> FileServer::CommitGrouped(VersionInfo* info, Page root,
                                          obs::Counter** outcome_ctr) {
  PendingCommit req;
  req.info = info;
  req.root = std::move(root);
  std::unique_lock<std::mutex> lock(commit_mu_);
  commit_queue_.push_back(&req);
  for (;;) {
    if (!req.done && commit_leader_active_) {
      // Follower: park until the leader posts our result — or hands leadership over, in
      // which case a not-yet-done waiter becomes the next leader.
      obs::ScopedSpan wait_span("commit.wait", obs::SpanKind::kPhase, info->head, 0);
      commit_cv_.wait(lock, [&] { return req.done || !commit_leader_active_; });
    }
    if (req.done) {
      break;
    }
    // Leader: drain everything staged so far (including our own request) as one batch.
    commit_leader_active_ = true;
    std::vector<PendingCommit*> batch;
    batch.swap(commit_queue_);
    lock.unlock();
    ProcessCommitBatch(&batch);
    lock.lock();
    for (PendingCommit* staged : batch) {
      staged->done = true;
    }
    commit_leader_active_ = false;
    commit_cv_.notify_all();
  }
  lock.unlock();
  *outcome_ctr = req.outcome;
  return req.result;
}

void FileServer::ProcessCommitBatch(std::vector<PendingCommit*>* batch) {
  for (PendingCommit* req : *batch) {
    req->group_size = batch->size();
  }
  // Group by file, preserving arrival order within each file.
  std::vector<std::pair<uint64_t, std::vector<PendingCommit*>>> groups;
  for (PendingCommit* req : *batch) {
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == req->info->file_id; });
    if (it == groups.end()) {
      groups.emplace_back(req->info->file_id, std::vector<PendingCommit*>{req});
    } else {
      it->second.push_back(req);
    }
  }
  // Different files share no version-chain state, so their groups validate and flip
  // concurrently when parallel validation is on.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(groups.size());
  for (auto& [file_id, group] : groups) {
    uint64_t fid = file_id;
    std::vector<PendingCommit*>* grp = &group;
    tasks.emplace_back([this, fid, grp] { ProcessFileCommitGroup(fid, grp); });
  }
  RunParallel(&tasks, ParallelValidateEnabled() ? 4 : 1);
}

void FileServer::ProcessFileCommitGroup(uint64_t file_id, std::vector<PendingCommit*>* group) {
  commit_group_size_->Record(group->size());
  // No wrapping span here: the serialiser's commit.validate / commit.merge spans must stay
  // DIRECT children of the leader's commit span (the critical-path analyzer sums direct
  // children only). Everything else this function does off the serialiser is in-memory and
  // nanosecond-scale.

  // Current tip of the file's committed chain. The hint needs no up-front verification —
  // the one test-and-set below arbitrates, and phase 1 defers any request whose base the
  // hint does not dominate — but a stale hint costs a lost flip and the serial fallback.
  BlockNo tip = kNilRef;
  if (VersionIndexEnabled()) {
    if (auto hint = index_.CurrentHint(file_id)) {
      index_hits_->Inc();
      tip = *hint;
    }
  }
  if (tip == kNilRef) {
    if (VersionIndexEnabled()) {
      index_misses_->Inc();
    }
    auto cur = FindCurrentHead(file_id);
    if (!cur.ok()) {
      for (PendingCommit* req : *group) {
        req->result = cur.status();
      }
      return;
    }
    tip = *cur;
  }

  // Phase 1: validate every request against the committed successors of its base, up to
  // the chain's end. Requests only touch their own private trees here, so they validate
  // concurrently when parallel validation is on.
  auto validate_request = [this, file_id, tip](PendingCommit* req) {
    const BlockNo base = req->root.base_ref;
    std::vector<VersionIndex::CommittedRec> recs;
    bool from_index = false;
    if (VersionIndexEnabled() && index_.SuccessorsAfter(file_id, base, &recs)) {
      from_index = true;
      index_hits_->Inc();
    }
    if (!from_index) {
      if (VersionIndexEnabled()) {
        index_misses_->Inc();
      }
      BlockNo cur = base;
      bool reached_end = false;
      for (int step = 0; step < 4096; ++step) {
        auto page = LoadPageUncached(cur);
        if (!page.ok()) {
          req->validation = page.status();
          return;
        }
        if (page->prepare_txn != 0) {
          // In-doubt cross-shard tip: not committed, cannot be validated against or
          // chained behind. Conflict-abort; the client retries after the decision.
          req->validation =
              ConflictError("file has an in-doubt cross-shard commit in progress");
          return;
        }
        if (page->commit_ref == kNilRef) {
          reached_end = true;
          break;
        }
        cur = page->commit_ref;
        recs.push_back(VersionIndex::CommittedRec{cur, nullptr, nullptr});
      }
      if (!reached_end) {
        // Step cap hit before the chain end: `recs` is a truncated view and validating
        // against it alone would silently skip successors. Defer to the serial loop,
        // which validates one flip at a time and aborts loudly if it starves.
        req->defer_serial = true;
        return;
      }
    }
    // The segment will be based on `tip`, so `tip` must be at-or-after this base on the
    // chain (base itself, or one of its successors). A hint that lags — e.g. a commit the
    // index never saw — would otherwise re-base this request onto an ANCESTOR of its own
    // base and the fallback would validate it against its own history. Defer instead.
    bool tip_at_or_after_base = base == tip;
    for (const VersionIndex::CommittedRec& rec : recs) {
      if (rec.head == tip) {
        tip_at_or_after_base = true;
        break;
      }
    }
    if (!tip_at_or_after_base) {
      req->defer_serial = true;
      return;
    }
    for (const VersionIndex::CommittedRec& rec : recs) {
      Status st = ValidateAgainstSuccessor(req, rec.head, rec.sig.get(), rec.root.get());
      if (!st.ok()) {
        req->validation = st;
        return;
      }
    }
    req->validated_end = recs.empty() ? base : recs.back().head;
  };
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(group->size());
    for (PendingCommit* req : *group) {
      tasks.emplace_back([&validate_request, req] { validate_request(req); });
    }
    RunParallel(&tasks, ParallelValidateEnabled() ? 4 : 1);
  }

  // Phase 2 (serial, arrival order): test each survivor against the group-mates accepted
  // before it — they will be serialised between its base and its commit. Signatures decide
  // in memory; kConflict is exact (abort), kUnknown defers the request to the serial path
  // after the flip (a mate-merge here would graft references to pages that are still
  // uncommitted, which the flip-failure fallback could leave dangling).
  std::vector<PendingCommit*> accepted;
  std::unordered_set<PendingCommit*> deferred;
  for (PendingCommit* req : *group) {
    if (!req->validation.ok()) {
      continue;
    }
    if (req->defer_serial) {
      deferred.insert(req);  // phase 1 could not cover its chain; classic loop instead
      continue;
    }
    bool defer = false;
    for (PendingCommit* mate : accepted) {
      serialise_tests_ctr_->Inc();
      switch (TestSigs(req->info->sig, mate->info->sig)) {
        case SigVerdict::kConflict:
          req->validation = ConflictError("update not serialisable with committed version");
          break;
        case SigVerdict::kNoopMerge:
          commit_sig_fast_->Inc();
          continue;
        case SigVerdict::kUnknown:
          defer = true;
          break;
      }
      break;
    }
    if (!req->validation.ok()) {
      continue;
    }
    if (defer) {
      deferred.insert(req);
      continue;
    }
    if (!accepted.empty()) {
      req->fast_path = false;  // group predecessors exist; skip reshare conservatively
    }
    accepted.push_back(req);
  }

  // Pre-link the winners into one chain segment w1 -> ... -> wn (base references forward,
  // commit references backward), persist all roots in one vectored write, then publish the
  // WHOLE segment with a single test-and-set on the old tip. Before the flip the segment
  // is unreachable from the chain, so a crash here only leaves garbage for the GC.
  bool flipped = false;
  bool persisted = false;
  Status persist_st = OkStatus();  // pre-flip failure: the segment is still unreachable
  Status flip_err = OkStatus();    // flip RPC error: the flip MAY have been applied
  std::vector<BlockNo> heads;
  heads.reserve(accepted.size());
  for (PendingCommit* req : accepted) {
    heads.push_back(req->info->head);
  }
  if (!accepted.empty()) {
    for (size_t i = 0; i < accepted.size(); ++i) {
      accepted[i]->root.base_ref = i == 0 ? tip : heads[i - 1];
      accepted[i]->root.commit_ref = i + 1 < accepted.size() ? heads[i + 1] : kNilRef;
    }
    std::vector<PageStore::PendingOverwrite> writes;
    writes.reserve(accepted.size());
    for (PendingCommit* req : accepted) {
      PageStore::PendingOverwrite po;
      po.head = req->info->head;
      po.page = req->root;
      writes.push_back(std::move(po));
    }
    persist_st = pages_.OverwritePages(std::move(writes));
    persisted = persist_st.ok();
    if (persisted) {
      obs::ScopedSpan flip_span("commit.flip", obs::SpanKind::kPhase, tip, accepted.size());
      BlockNo foreign = kNilRef;
      auto won = TestAndSetCommitRef(tip, heads[0], &foreign);
      if (!won.ok()) {
        flip_err = won.status();
      } else {
        flipped = *won;
      }
    }
  }

  if (!accepted.empty() && flipped) {
    obs::ScopedSpan finish_span("commit.finish", obs::SpanKind::kPhase, file_id,
                                accepted.size());
    for (size_t i = 0; i < accepted.size(); ++i) {
      PendingCommit* req = accepted[i];
      const BlockNo base = i == 0 ? tip : heads[i - 1];
      const bool reshare = options_.reshare_on_commit && req->fast_path;
      IndexCommitted(req->info, base, req->root, reshare);
      if (reshare) {
        (void)ReshareCleanPages(heads[i]);  // best effort
      }
      req->outcome = req->fast_path ? commit_fast_path_ : commit_validated_;
      if (req->fast_path) {
        obs::Trace(obs::TraceEvent::kCommitFastPath, heads[i]);
      }
      req->result = heads[i];
      std::lock_guard<std::mutex> lock(versions_mu_);
      uncommitted_.erase(heads[i]);  // destroys req->info; nothing touches it past here
    }
  } else if (!accepted.empty() && !persisted) {
    // Persisting the segment roots failed BEFORE the flip: nothing made the segment
    // reachable, so aborting (which frees the versions' blocks) is safe.
    for (PendingCommit* req : accepted) {
      req->validation = persist_st;
    }
  } else if (!accepted.empty() && !flip_err.ok()) {
    // The flip call itself errored. Over a lossy transport the commit-reference write may
    // have been APPLIED even though the call reported failure (reply dropped, timeout), so
    // the segment could already be published. Do NOT abort — that would free blocks a
    // committed chain might reference. Return the error to each requester, exactly as the
    // serial path propagates a flip error, and leave cleanup to explicit abort/GC.
    if (VersionIndexEnabled()) {
      index_.ForgetFile(file_id);  // tip state is unknown now; drop the suffix
    }
    for (PendingCommit* req : accepted) {
      req->result = flip_err;
    }
  } else if (!accepted.empty()) {
    // The flip cleanly lost to a foreign committer. Un-link the segment in memory,
    // re-base each winner onto the chain end its own validation covered (NEVER `tip`,
    // which under a stale hint can sit behind a member's base), re-persist the corrected
    // root — the on-disk copy still carries the segment links, and the serial loop may
    // win its first flip without rewriting it — then run the classic serial path.
    group_fallbacks_->Inc();
    if (VersionIndexEnabled()) {
      index_.ForgetFile(file_id);  // the index missed a foreign commit; drop the suffix
    }
    for (PendingCommit* req : accepted) {
      req->root.commit_ref = kNilRef;
      req->root.base_ref = req->validated_end;
      Status st = pages_.OverwritePage(req->info->head, req->root);
      if (!st.ok()) {
        req->validation = st;  // root state uncertain but unreachable: abort is safe
      } else {
        deferred.insert(req);
      }
    }
  }

  // Deferred requests (sig-undecidable against mates, or flip-fallback) run the classic
  // serial loop now, in arrival order, against the freshly extended on-disk chain.
  for (PendingCommit* req : *group) {
    if (deferred.count(req) == 0) {
      continue;
    }
    obs::Counter* outcome = nullptr;
    req->result = CommitSerialLocked(req->info, std::move(req->root), &outcome);
    req->outcome = outcome;
  }

  // Validation failures: remove the version and notify the owner (§5.2).
  for (PendingCommit* req : *group) {
    if (req->validation.ok()) {
      continue;
    }
    req->outcome = req->validation.code() == ErrorCode::kConflict ? commit_conflicts_ : nullptr;
    obs::Trace(obs::TraceEvent::kCommitConflict, req->info->head, 0);
    obs::ScopedSpan abort_span("commit.abort", obs::SpanKind::kPhase, req->info->head, 0);
    (void)AbortLocked(req->info);
    req->result = req->validation;
  }
}

Status FileServer::FinishSuperCommit(VersionInfo* info) {
  // "After commit on a super-file, the page tree must be descended to commit the sub-files
  // of the super-file, and clear the locks. These commits always succeed, because the
  // locks prevent access by other clients during the update to the super-file."
  std::unordered_set<BlockNo> superseded;
  for (const auto& [old_head, new_head] : info->copied_subfiles) {
    ASSIGN_OR_RETURN(Port block_lock, AcquireBlockLock(old_head));
    auto base = LoadPageUncached(old_head);
    Status st = base.ok() ? OkStatus() : base.status();
    if (st.ok() && base->commit_ref == kNilRef) {
      base->commit_ref = new_head;
      base->inner_lock = kNullPort;
      st = pages_.OverwritePage(old_head, *base);
    }
    ReleaseBlockLock(old_head, block_lock);
    RETURN_IF_ERROR(st);
    superseded.insert(old_head);
    // Keep the current-version hint warm for the sub-file.
    auto new_page = LoadPageUncached(new_head);
    if (new_page.ok()) {
      {
        std::lock_guard<std::mutex> lock(table_mu_);
        current_cache_[new_page->file_cap.object] = new_head;
      }
      if (VersionIndexEnabled()) {
        // Index the sub-file commit too: a commit the index misses leaves CurrentHint
        // pointing BEHIND the sub-file's chain tip, and the group combiner must never
        // adopt such a tip as a segment base. No signature (the super update's signature
        // covers the super tree, not this sub-file); the root snapshot is safe because
        // sub-file version pages are never reshared.
        VersionIndex::CommittedRec rec;
        rec.head = new_head;
        rec.root = std::make_shared<const Page>(*new_page);
        index_.OnCommit(new_page->file_cap.object, old_head, std::move(rec));
      }
    }
  }
  for (BlockNo sub_head : info->locked_subfiles) {
    if (superseded.count(sub_head) == 0) {
      (void)ClearInnerLock(sub_head, info->owner);
    }
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Abort
// ---------------------------------------------------------------------------

Status FileServer::AbortLocked(VersionInfo* info) {
  // Release §5.3 locks first.
  for (BlockNo sub_head : info->locked_subfiles) {
    (void)ClearInnerLock(sub_head, info->owner);
  }
  (void)ClearTopLock(info->base_head, info->owner);

  // Unregister files created inside this aborted update.
  if (!info->created_subfiles.empty()) {
    auto block_lock = AcquireBlockLock(table_head_);
    if (block_lock.ok()) {
      {
        std::lock_guard<std::mutex> lock(table_mu_);
        if (LoadFileTable().ok()) {
          for (uint64_t sub_id : info->created_subfiles) {
            files_.erase(sub_id);
            current_cache_.erase(sub_id);
          }
          (void)PersistFileTableLocked();
        }
      }
      ReleaseBlockLock(table_head_, *block_lock);
    }
  }

  // Free exactly the chains this version allocated; merged trees may reference committed
  // pages of other versions, which must survive.
  for (BlockNo bno : info->allocated_blocks) {
    (void)pages_.FreePage(bno);
  }

  BlockNo head = info->head;
  std::lock_guard<std::mutex> lock(versions_mu_);
  uncommitted_.erase(head);
  return OkStatus();
}

Status FileServer::Abort(const Capability& version) {
  std::shared_lock<std::shared_mutex> ops_gate(ops_gate_);
  BlockNo head;
  RETURN_IF_ERROR(VerifyVersionCap(version, Rights::kWrite, &head));
  ASSIGN_OR_RETURN(VersionOpGuard op, AcquireVersionOp(head));
  if (op.info == nullptr) {
    return OkStatus();  // already gone; abort is idempotent
  }
  return AbortLocked(op.info);
}

// ---------------------------------------------------------------------------
// Reshare (§5.1's GC rule, applied at commit)
// ---------------------------------------------------------------------------

Result<bool> FileServer::ReshareSubtree(Page* page, bool* subtree_clean) {
  // Post-order: try to reshare each copied child, then report whether this page's whole
  // subtree is free of writes and modifications.
  bool changed = false;
  bool clean = true;
  for (PageRef& ref : page->refs) {
    if (!ref.copied() || ref.block == kNilRef) {
      continue;
    }
    auto child = LoadPageUncached(ref.block);
    if (!child.ok()) {
      clean = false;
      continue;
    }
    if (child->IsVersionPage()) {
      clean = false;  // sub-file version pages are never reshared
      continue;
    }
    bool child_clean = true;
    ASSIGN_OR_RETURN(bool child_changed, ReshareSubtree(&*child, &child_clean));
    if (child_changed) {
      UncachePage(ref.block);
      RETURN_IF_ERROR(pages_.OverwritePage(ref.block, *child));
      changed = true;
    }
    if (child_clean && !ref.written() && !ref.modified() && child->base_ref != kNilRef) {
      // "The garbage collector may remove pages that were copied but not written or
      // modified and reshare the corresponding page from the version on which it was
      // based." The copy is left for the background GC to sweep (it is unreachable once
      // the reference is redirected); freeing it here could pull blocks out from under a
      // concurrent serialisability test.
      ref.block = child->base_ref;
      ref.flags = 0;
      changed = true;
    } else if (!child_clean || ref.written() || ref.modified()) {
      clean = false;
    }
  }
  *subtree_clean = clean;
  return changed;
}

Status FileServer::ReshareCleanPages(BlockNo head) {
  ASSIGN_OR_RETURN(Page root, LoadPageUncached(head));
  bool clean = true;
  ASSIGN_OR_RETURN(bool changed, ReshareSubtree(&root, &clean));
  if (!changed) {
    return OkStatus();
  }
  // The version page is shared mutable state: a successor may set our commit reference at
  // any moment. Re-read under the block lock and only replace the reference table, keeping
  // the freshly observed header (commit reference, locks).
  ASSIGN_OR_RETURN(Port block_lock, AcquireBlockLock(head));
  Status st;
  auto fresh = LoadPageUncached(head);
  if (fresh.ok()) {
    fresh->refs = root.refs;
    st = pages_.OverwritePage(head, *fresh);
  } else {
    st = fresh.status();
  }
  ReleaseBlockLock(head, block_lock);
  return st;
}

Status FileServer::FreePrivatePages(BlockNo head) {
  // Orphan cleanup (tests, and aborting a prepared cross-shard version recovered after a
  // restart, where allocated_blocks is unknown); normal aborts free via allocated_blocks.
  ASSIGN_OR_RETURN(Page root, LoadPageUncached(head));
  std::deque<PageRef> frontier(root.refs.begin(), root.refs.end());
  while (!frontier.empty()) {
    PageRef ref = frontier.front();
    frontier.pop_front();
    if (!ref.copied() || ref.block == kNilRef) {
      continue;
    }
    auto child = LoadPageUncached(ref.block);
    if (child.ok()) {
      frontier.insert(frontier.end(), child->refs.begin(), child->refs.end());
    }
    (void)pages_.FreePage(ref.block);
  }
  return pages_.FreePage(head);
}

// ---------------------------------------------------------------------------
// Cache validation (§5.4)
// ---------------------------------------------------------------------------

Result<bool> FileServer::VersionWrotePath(BlockNo head, const PagePath& path) {
  ASSIGN_OR_RETURN(Page root, LoadPageUncached(head));
  return VersionWrotePathFromRoot(root, path);
}

Result<bool> FileServer::VersionWrotePathFromRoot(const Page& root, const PagePath& path) {
  Page page = root;
  uint8_t flags = page.root_flags;
  for (size_t depth = 0;; ++depth) {
    const bool last = depth == path.depth();
    if (last) {
      return (flags & (RefFlag::kWritten | RefFlag::kModified)) != 0;
    }
    // An ancestor whose references were modified may have moved the page; conservative.
    if ((flags & RefFlag::kModified) != 0) {
      return true;
    }
    if ((flags & RefFlag::kCopied) == 0) {
      return false;  // untouched subtree — cannot contain writes
    }
    if (path.at(depth) >= page.refs.size()) {
      return true;  // structure differs from the cached view; be conservative
    }
    PageRef ref = page.refs[path.at(depth)];
    flags = ref.flags;
    if ((flags & RefFlag::kCopied) == 0 || ref.block == kNilRef) {
      // Deeper pages were never copied in this version: no writes below. The final
      // verdict for this path is just this reference's own W/M bits.
      return (flags & (RefFlag::kWritten | RefFlag::kModified)) != 0;
    }
    if (depth + 1 < path.depth()) {
      ASSIGN_OR_RETURN(page, LoadPage(ref.block));
    }
  }
}

Result<FileServer::CacheCheck> FileServer::ValidateCache(
    const Capability& file, BlockNo cached_head, const std::vector<PagePath>& cached_paths) {
  uint64_t file_id;
  RETURN_IF_ERROR(VerifyFileCap(file, Rights::kRead, &file_id));
  ASSIGN_OR_RETURN(BlockNo current, FindCurrentHead(file_id));

  CacheCheck out;
  out.current_version = SignVersionCap(current);
  if (cached_head == current) {
    // "For files that are not shared, the cache entry will always be the most recent
    // version of the file, so the serialisability test is a null operation."
    return out;
  }

  // Collect the committed versions after the cached one by following commit references.
  std::vector<BlockNo> newer;
  BlockNo cursor = cached_head;
  for (int step = 0; step < 4096; ++step) {
    auto page = LoadPageUncached(cursor);
    if (!page.ok() || (cursor == cached_head && page->file_cap.object != file_id)) {
      // The cached version was pruned (or never belonged to this file): discard everything.
      out.invalid = cached_paths;
      return out;
    }
    if (page->commit_ref == kNilRef) {
      break;
    }
    cursor = page->commit_ref;
    newer.push_back(cursor);
  }

  // "The serialisability test can be made in time proportional to the size of the
  // intersection of the set of pages of the version in the cache and the union of the sets
  // of pages in the versions since then." Each intervening version's root is read once;
  // per-path work then descends only parts that version actually wrote.
  ASSIGN_OR_RETURN(std::vector<Page> roots, pages_.ReadPages(newer));
  for (const PagePath& path : cached_paths) {
    for (const Page& root : roots) {
      ASSIGN_OR_RETURN(bool wrote, VersionWrotePathFromRoot(root, path));
      if (wrote) {
        out.invalid.push_back(path);
        break;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

Result<FileServer::FileStatInfo> FileServer::FileStat(const Capability& file) {
  uint64_t file_id;
  RETURN_IF_ERROR(VerifyFileCap(file, Rights::kRead, &file_id));
  FileStatInfo info;
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    ASSIGN_OR_RETURN(FileEntry entry, LookupFileLocked(file_id));
    info.is_super = entry.is_super;
  }
  ASSIGN_OR_RETURN(std::vector<BlockNo> chain, CommittedChain(file_id));
  info.committed_versions = static_cast<uint32_t>(chain.size());
  info.current_head = chain.empty() ? kNilRef : chain.back();
  return info;
}

std::vector<BlockNo> FileServer::ListUncommitted() const {
  std::lock_guard<std::mutex> lock(versions_mu_);
  std::vector<BlockNo> out;
  out.reserve(uncommitted_.size() + prepared_.size());
  for (const auto& [head, info] : uncommitted_) {
    (void)info;
    out.push_back(head);
  }
  // Prepared cross-shard versions are no longer in uncommitted_ but their pages must stay
  // protected (GC root set, pruning pins) until the coordinator's decision arrives.
  for (const auto& [txn, rec] : prepared_) {
    (void)txn;
    out.push_back(rec.head);
  }
  return out;
}

void FileServer::OnRestart() {
  // A crashed file server loses its uncommitted versions ("clients must be prepared to
  // redo the updates in a version") and rebuilds its view of the shared store.
  {
    std::lock_guard<std::mutex> lock(versions_mu_);
    uncommitted_.clear();
    prepared_.clear();  // AttachStore re-discovers in-doubt tips from their disk markers
  }
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    committed_cache_.clear();
    cache_lru_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    current_cache_.clear();
  }
  index_.Clear();  // AttachStore re-seeds it (heads only) from the on-disk chains
  (void)AttachStore();
}

}  // namespace afs
