// FileServer participant side of the cross-shard optimistic two-phase commit
// (docs/SHARDING.md). Prepare runs the §5.2 Kung–Robinson validation and stages the
// version at the end of its file's chain with an on-disk in-doubt marker; Decide applies
// the coordinator's verdict. The marker is persisted BEFORE the base's commit reference
// flips, so a crash anywhere in between leaves a chain whose tip is visibly in doubt —
// never a half-committed transaction.

#include <mutex>
#include <utility>

#include "src/core/commit_tuning.h"
#include "src/core/file_server.h"
#include "src/core/serialise.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"

namespace afs {

Result<BlockNo> FileServer::Prepare(const Capability& version, uint64_t txn_id) {
  std::shared_lock<std::shared_mutex> ops_gate(ops_gate_);
  if (txn_id == 0) {
    return InvalidArgumentError("prepare needs a non-zero transaction id");
  }
  BlockNo head;
  RETURN_IF_ERROR(VerifyVersionCap(version, Rights::kWrite, &head));
  obs::ScopedSpan span("shard.prepare", obs::SpanKind::kPhase, head, txn_id);
  {
    // Idempotence: a retransmitted prepare of the same transaction re-answers with the
    // staged head; re-using a txn_id for a different version is a protocol error.
    std::lock_guard<std::mutex> lock(versions_mu_);
    auto it = prepared_.find(txn_id);
    if (it != prepared_.end()) {
      if (it->second.head != head) {
        return InvalidArgumentError("transaction id already prepared another version");
      }
      return head;
    }
  }
  ASSIGN_OR_RETURN(VersionOpGuard op, AcquireVersionOp(head));
  if (op.info == nullptr) {
    return AbortedError("version is not managed by this server (already finished?)");
  }
  VersionInfo* info = op.info;
  if (info->is_super_update) {
    // Super-file commit completion (§5.3) cannot be held in doubt: its sub-file flips
    // are not covered by the single in-doubt marker.
    return InvalidArgumentError("super-file updates cannot join a cross-shard commit");
  }
  ASSIGN_OR_RETURN(Page root, LoadPageUncached(head));

  // The §5.2 validate loop, staging instead of committing. Each attempt persists the
  // marker first, then test-and-sets the base's commit reference: the flip is what makes
  // the staged root reachable, so readers can never see it without the marker.
  int attempts = 0;
  for (;;) {
    if (++attempts > 256) {
      shard_prepare_conflicts_->Inc();
      (void)AbortLocked(info);
      return ConflictError("prepare starved by concurrent committers");
    }
    root.prepare_txn = txn_id;
    root.commit_ref = kNilRef;
    RETURN_IF_ERROR(pages_.OverwritePage(head, root));
    BlockNo successor = kNilRef;
    obs::ScopedSpan flip_span("commit.flip", obs::SpanKind::kPhase, root.base_ref, 0);
    ASSIGN_OR_RETURN(bool won, TestAndSetCommitRef(root.base_ref, head, &successor));
    flip_span.End();
    if (won) {
      break;
    }
    // The base has a successor: validate against it and re-base, exactly like the serial
    // commit loop — unless the successor is itself in doubt, which nothing may chain
    // behind or validate against.
    auto succ = LoadPageUncached(successor);
    if (!succ.ok()) {
      (void)AbortLocked(info);
      return succ.status();
    }
    if (succ->prepare_txn != 0) {
      shard_prepare_conflicts_->Inc();
      span.set_status(static_cast<uint8_t>(ErrorCode::kConflict));
      (void)AbortLocked(info);
      return ConflictError("file has another in-doubt cross-shard commit in progress");
    }
    PendingCommit req;
    req.info = info;
    req.root = std::move(root);
    Status st = ValidateAgainstSuccessor(&req, successor, nullptr, &*succ);
    root = std::move(req.root);
    if (!st.ok()) {
      shard_prepare_conflicts_->Inc();
      span.set_status(static_cast<uint8_t>(st.code()));
      obs::Trace(obs::TraceEvent::kCommitConflict, head, successor);
      (void)AbortLocked(info);
      return st;
    }
    root.base_ref = successor;
  }

  shard_prepares_->Inc();
  std::lock_guard<std::mutex> lock(versions_mu_);
  PreparedRec rec;
  rec.file_id = info->file_id;
  rec.head = head;
  rec.base_head = root.base_ref;
  rec.allocated_blocks = std::move(info->allocated_blocks);
  rec.know_allocations = true;
  rec.sig = std::move(info->sig);
  prepared_.emplace(txn_id, std::move(rec));
  uncommitted_.erase(head);  // destroys *info; ordinary ops now fail "not managed"
  return head;
}

Status FileServer::Decide(uint64_t txn_id, bool commit) {
  std::shared_lock<std::shared_mutex> ops_gate(ops_gate_);
  obs::ScopedSpan span("shard.decide", obs::SpanKind::kPhase, txn_id, commit ? 1 : 0);
  PreparedRec rec;
  {
    std::lock_guard<std::mutex> lock(versions_mu_);
    auto it = prepared_.find(txn_id);
    if (it == prepared_.end()) {
      return OkStatus();  // already decided (retransmission), or never prepared here
    }
    rec = std::move(it->second);
    prepared_.erase(it);
  }

  if (commit) {
    // Clear the on-disk marker; the staged version becomes a normal chain element and
    // FindCurrentHead publishes it.
    ASSIGN_OR_RETURN(Port block_lock, AcquireBlockLock(rec.head));
    auto page = LoadPageUncached(rec.head);
    Status st = page.ok() ? OkStatus() : page.status();
    if (st.ok() && page->prepare_txn != 0) {
      page->prepare_txn = 0;
      st = pages_.OverwritePage(rec.head, *page);
    }
    ReleaseBlockLock(rec.head, block_lock);
    RETURN_IF_ERROR(st);
    {
      std::lock_guard<std::mutex> lock(table_mu_);
      current_cache_[rec.file_id] = rec.head;
    }
    if (VersionIndexEnabled() && page.ok()) {
      VersionIndex::CommittedRec vrec;
      vrec.head = rec.head;
      if (rec.sig.valid) {
        vrec.sig = std::make_shared<const AccessSig>(rec.sig);
      }
      // Cross-shard commits never reshare, so the root snapshot stays trustworthy.
      vrec.root = std::make_shared<const Page>(*page);
      index_.OnCommit(rec.file_id, rec.base_head, std::move(vrec));
    }
    shard_decide_commits_->Inc();
    return OkStatus();
  }

  // Abort: unlink the staged version from its chain. The base's commit reference still
  // names rec.head — no §5.2 commit can chain behind an in-doubt tip — so resetting it to
  // nil under the block lock restores the base as current. When several servers of one
  // group rediscovered the same tip after a restart, only the one that actually unlinks
  // it frees the staged pages; the others find the reference already reset and stand down.
  bool unlinked = false;
  {
    ASSIGN_OR_RETURN(Port block_lock, AcquireBlockLock(rec.base_head));
    auto base = LoadPageUncached(rec.base_head);
    Status st = base.ok() ? OkStatus() : base.status();
    if (st.ok() && base->commit_ref == rec.head) {
      base->commit_ref = kNilRef;
      st = pages_.OverwritePage(rec.base_head, *base);
      unlinked = st.ok();
    }
    ReleaseBlockLock(rec.base_head, block_lock);
    RETURN_IF_ERROR(st);
  }
  if (rec.know_allocations) {
    for (BlockNo bno : rec.allocated_blocks) {
      (void)pages_.FreePage(bno);
    }
  } else if (unlinked) {
    // Recovered after a restart: the allocation list died with the process. The staged
    // tree is unreachable now, so freeing its private (copied) pages by walk is safe.
    (void)FreePrivatePages(rec.head);
  }
  shard_decide_aborts_->Inc();
  return OkStatus();
}

std::vector<FileServer::InDoubtEntry> FileServer::ListInDoubt() const {
  std::lock_guard<std::mutex> lock(versions_mu_);
  std::vector<InDoubtEntry> out;
  out.reserve(prepared_.size());
  for (const auto& [txn, rec] : prepared_) {
    out.push_back(InDoubtEntry{rec.head, txn});
  }
  return out;
}

void FileServer::RecoverPreparedTips() {
  // A prepared version whose decision never arrived survives a crash as an on-disk chain
  // tip with prepare_txn set. Re-discover those so ListInDoubt/GC protection work and a
  // recovering coordinator can resolve them.
  for (const FileEntry& entry : SnapshotFileTable()) {
    auto chain = CommittedChain(entry.file_id);  // stops short of an in-doubt tip
    if (!chain.ok() || chain->empty()) {
      continue;
    }
    auto last = LoadPageUncached(chain->back());
    if (!last.ok() || last->commit_ref == kNilRef) {
      continue;
    }
    auto tip = LoadPageUncached(last->commit_ref);
    if (!tip.ok() || tip->prepare_txn == 0) {
      continue;
    }
    PreparedRec rec;
    rec.file_id = entry.file_id;
    rec.head = last->commit_ref;
    rec.base_head = chain->back();
    rec.know_allocations = false;
    rec.sig.valid = false;  // the in-memory signature died with the old process
    std::lock_guard<std::mutex> lock(versions_mu_);
    prepared_.emplace(tip->prepare_txn, std::move(rec));
  }
}

}  // namespace afs
