// Page layout (paper §5.1, Figure 3).
//
// A page is the unit the file service reads and writes; it holds client data plus a
// reference table of child pages. The header area (above Figure 3's double line) carries:
//   file capability, version capability      — version pages only
//   commit reference                          — version pages only (the committed-successor
//                                               link that the atomic commit sets)
//   top lock, inner lock                      — version pages only (§5.3; "locks are made of
//                                               ports", so the fields hold Port values)
//   parent reference                          — version pages only (ascend the system tree)
//   base reference                            — every page: the block it was copied from
//   nrefs, dsize                              — table and data sizes
// The reference table entries pack a 28-bit block number with the 4-bit C/R/W/S/M code.
//
// The root page of a version tree — the *version page* — is the only page without a
// parent-held flag set; "the managing server keeps these flags separate", which we model as
// the root_flags field stored in the version page header itself. A version page is also the
// only page overwritten in place.

#ifndef SRC_CORE_PAGE_H_
#define SRC_CORE_PAGE_H_

#include <cstdint>
#include <vector>

#include "src/base/capability.h"
#include "src/base/status.h"
#include "src/core/flags.h"

namespace afs {

// Maximum serialized page size: "The maximum length of a page is determined by the maximum
// length of a message in a transaction: 32K bytes."
inline constexpr size_t kMaxPageBytes = 32 * 1024;

// In-memory discriminator. On the wire the kind byte doubles as the page-format version:
// plain pages encode 1, version pages encode 3 (header with prepare_txn) and still decode
// from the pre-sharding tag 2 (header without it) — see page.cc.
enum class PageKind : uint8_t {
  kPlain = 1,    // interior or leaf page of a page tree
  kVersion = 2,  // root page of a version (a "version page" / "version block")
};

struct Page {
  PageKind kind = PageKind::kPlain;

  // --- version page fields (ignored for plain pages) ---
  Capability file_cap;
  Capability version_cap;
  BlockNo commit_ref = kNilRef;  // nil for the current version and uncommitted versions
  Port top_lock = kNullPort;
  Port inner_lock = kNullPort;
  BlockNo parent_ref = kNilRef;  // version page of the enclosing super-file, if any
  uint8_t root_flags = 0;        // manager-kept C/R/W/S/M of the root page itself
  // Cross-shard two-phase commit marker (docs/SHARDING.md). Non-zero on a version that has
  // been PREPARED by a distributed transaction: its base's commit_ref already points here,
  // but the version is not yet committed — readers must treat the base as current until the
  // coordinator's decision clears this field (commit) or unlinks the version (abort).
  uint64_t prepare_txn = 0;

  // --- all pages ---
  BlockNo base_ref = kNilRef;  // block this page was copied from
  std::vector<PageRef> refs;   // reference table
  std::vector<uint8_t> data;   // client data

  bool IsVersionPage() const { return kind == PageKind::kVersion; }

  // Serialized size; fails validation if it would exceed kMaxPageBytes.
  size_t SerializedSize() const;

  // Encode to the byte payload stored through the page store.
  Result<std::vector<uint8_t>> Serialize() const;

  // Decode and validate (flag codes, sizes). kCorrupt on any malformation.
  static Result<Page> Deserialize(std::span<const uint8_t> payload);

  // Reference accessors with bounds checking.
  Result<PageRef> RefAt(uint32_t index) const;
  Status SetRef(uint32_t index, PageRef ref);
};

}  // namespace afs

#endif  // SRC_CORE_PAGE_H_
