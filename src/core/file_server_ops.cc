// FileServer operations: file/version lifecycle, page access, the optimistic commit of
// §5.2, super-file commit completion (§5.3), the §5.1 reshare rule, and the §5.4 cache
// validation test.

#include <algorithm>
#include <mutex>

#include "src/base/wire.h"
#include "src/core/file_server.h"
#include "src/core/serialise.h"

namespace afs {

// Looks up the uncommitted version `head` and locks its op mutex. Returns nullptr info if
// the version is not managed here (committed snapshot or lost in a crash) — callers decide
// whether that is a read-only path or an error.
Result<FileServer::VersionOpGuard> FileServer::AcquireVersionOp(BlockNo head) {
  std::shared_ptr<std::mutex> op_mu;
  {
    std::lock_guard<std::mutex> lock(versions_mu_);
    auto it = uncommitted_.find(head);
    if (it == uncommitted_.end()) {
      return VersionOpGuard{};
    }
    op_mu = it->second.op_mu;
  }
  VersionOpGuard op;
  op.mu = op_mu;
  op.lock = std::unique_lock<std::mutex>(*op_mu);
  {
    // Re-validate under the op lock: an abort may have raced us.
    std::lock_guard<std::mutex> lock(versions_mu_);
    auto it = uncommitted_.find(head);
    if (it == uncommitted_.end()) {
      op.lock.unlock();
      return VersionOpGuard{};
    }
    op.info = &it->second;
  }
  return op;
}

// ---------------------------------------------------------------------------
// File lifecycle
// ---------------------------------------------------------------------------

Result<Capability> FileServer::CreateFile() {
  std::shared_lock<std::shared_mutex> ops_gate(ops_gate_);
  uint64_t file_id;
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    file_id = MintFileIdLocked();
  }
  Capability file_cap = SignFileCap(file_id);

  // The initial committed version: an empty root page.
  Page root;
  root.kind = PageKind::kVersion;
  root.file_cap = file_cap;
  root.root_flags = RefFlag::kCopied;  // "The root page is always copied, by the way."
  ASSIGN_OR_RETURN(BlockNo head, pages_.WritePage(root));
  root.version_cap = SignVersionCap(head);
  RETURN_IF_ERROR(pages_.OverwritePage(head, root));

  ASSIGN_OR_RETURN(Port block_lock, AcquireBlockLock(table_head_));
  Status st;
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    st = LoadFileTable();
    if (st.ok()) {
      files_[file_id] = FileEntry{file_id, head, false};
      st = PersistFileTableLocked();
      if (st.ok()) {
        current_cache_[file_id] = head;
      }
    }
  }
  ReleaseBlockLock(table_head_, block_lock);
  RETURN_IF_ERROR(st);
  return file_cap;
}

Status FileServer::DeleteFile(const Capability& file) {
  std::shared_lock<std::shared_mutex> ops_gate(ops_gate_);
  uint64_t file_id;
  RETURN_IF_ERROR(VerifyFileCap(file, Rights::kDestroy, &file_id));
  ASSIGN_OR_RETURN(Port block_lock, AcquireBlockLock(table_head_));
  Status st;
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    st = LoadFileTable();
    if (st.ok()) {
      if (files_.erase(file_id) == 0) {
        st = NotFoundError("no such file");
      } else {
        current_cache_.erase(file_id);
        st = PersistFileTableLocked();
      }
    }
  }
  ReleaseBlockLock(table_head_, block_lock);
  if (st.ok()) {
    index_.ForgetFile(file_id);
  }
  return st;  // pages become unreachable; the garbage collector reclaims them
}

Result<Capability> FileServer::GetCurrentVersion(const Capability& file) {
  uint64_t file_id;
  RETURN_IF_ERROR(VerifyFileCap(file, Rights::kRead, &file_id));
  ASSIGN_OR_RETURN(BlockNo cur, FindCurrentHead(file_id));
  Capability cap = SignVersionCap(cur);
  // Committed snapshots are served by any group member; rights restricted to read.
  auto restricted = version_signer_.Restrict(cap, Rights::kRead);
  if (restricted.ok()) {
    restricted->port = port();
    return *restricted;
  }
  return cap;
}

Result<Capability> FileServer::CreateVersion(const Capability& file, Port owner_port,
                                             bool respect_soft_lock) {
  std::shared_lock<std::shared_mutex> ops_gate(ops_gate_);
  uint64_t file_id;
  RETURN_IF_ERROR(VerifyFileCap(file, Rights::kWrite | Rights::kCreate, &file_id));
  FileEntry entry;
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    ASSIGN_OR_RETURN(entry, LookupFileLocked(file_id));
  }
  // A lock must name a port so waiters can detect a dead holder; an anonymous update is
  // keyed to this server's own port (dies with the server, which is exactly right).
  Port owner = owner_port != kNullPort ? owner_port : port();

  BlockNo base_head = kNilRef;
  RETURN_IF_ERROR(
      AcquireUpdateLocks(file_id, entry.is_super, owner, respect_soft_lock, &base_head));

  // "When a new version is created, it behaves as if it were a copy of the current
  // version. In fact, when it is created, a new version shares its page tree with the
  // current version" — the fresh version page carries the base's data and references with
  // all access flags cleared.
  ASSIGN_OR_RETURN(Page base, LoadPageUncached(base_head));
  Page fresh = base;
  for (PageRef& ref : fresh.refs) {
    ref.flags = 0;
  }
  fresh.base_ref = base_head;
  fresh.commit_ref = kNilRef;
  fresh.top_lock = kNullPort;
  fresh.inner_lock = kNullPort;
  fresh.prepare_txn = 0;
  fresh.root_flags = RefFlag::kCopied;
  fresh.file_cap = SignFileCap(file_id);
  ASSIGN_OR_RETURN(BlockNo head, pages_.WritePage(fresh));
  fresh.version_cap = SignVersionCap(head);
  RETURN_IF_ERROR(pages_.OverwritePage(head, fresh));

  VersionInfo info;
  info.file_id = file_id;
  info.head = head;
  info.base_head = base_head;
  info.owner = owner;
  info.is_super_update = entry.is_super;
  info.allocated_blocks.push_back(head);
  {
    std::lock_guard<std::mutex> lock(versions_mu_);
    uncommitted_.emplace(head, std::move(info));
  }
  return fresh.version_cap;
}

// ---------------------------------------------------------------------------
// Page access
// ---------------------------------------------------------------------------

Result<FileServer::ReadResult> FileServer::ReadPage(const Capability& version,
                                                    const PagePath& path, bool want_refs) {
  BlockNo head;
  RETURN_IF_ERROR(VerifyVersionCap(version, Rights::kRead, &head));
  ASSIGN_OR_RETURN(VersionOpGuard op, AcquireVersionOp(head));
  uint8_t access = RefFlag::kRead;
  if (want_refs) {
    access |= RefFlag::kSearched;
  }
  ASSIGN_OR_RETURN(std::vector<WalkStep> steps,
                   WalkPath(op.info, head, path, access, /*materialize_target=*/false));
  ReadResult out;
  out.nrefs = static_cast<uint32_t>(steps.back().page.refs.size());
  out.data = steps.back().page.data;
  return out;
}

Status FileServer::WritePage(const Capability& version, const PagePath& path,
                             std::span<const uint8_t> data) {
  std::shared_lock<std::shared_mutex> ops_gate(ops_gate_);
  BlockNo head;
  RETURN_IF_ERROR(VerifyVersionCap(version, Rights::kWrite, &head));
  ASSIGN_OR_RETURN(VersionOpGuard op, AcquireVersionOp(head));
  if (op.info == nullptr) {
    return ReadOnlyError("version is committed or not managed by this server");
  }
  ASSIGN_OR_RETURN(std::vector<WalkStep> steps,
                   WalkPath(op.info, head, path, RefFlag::kWritten, /*materialize_target=*/true));
  WalkStep& target = steps.back();
  target.page.data.assign(data.begin(), data.end());
  if (target.page.SerializedSize() > kMaxPageBytes) {
    return InvalidArgumentError("page would exceed 32K transaction limit");
  }
  target.dirty = true;
  return PersistSteps(&steps);
}

Status FileServer::InsertRef(const Capability& version, const PagePath& parent,
                             uint32_t index) {
  std::shared_lock<std::shared_mutex> ops_gate(ops_gate_);
  BlockNo head;
  RETURN_IF_ERROR(VerifyVersionCap(version, Rights::kWrite, &head));
  ASSIGN_OR_RETURN(VersionOpGuard op, AcquireVersionOp(head));
  if (op.info == nullptr) {
    return ReadOnlyError("version is committed or not managed by this server");
  }
  ASSIGN_OR_RETURN(std::vector<WalkStep> steps,
                   WalkPath(op.info, head, parent,
                            RefFlag::kSearched | RefFlag::kModified,
                            /*materialize_target=*/false));
  WalkStep& target = steps.back();
  if (index > target.page.refs.size()) {
    return InvalidArgumentError("insert index beyond reference table");
  }
  target.page.refs.insert(target.page.refs.begin() + index, PageRef{kNilRef, 0});
  if (target.page.SerializedSize() > kMaxPageBytes) {
    return InvalidArgumentError("page would exceed 32K transaction limit");
  }
  target.dirty = true;
  return PersistSteps(&steps);
}

Status FileServer::RemoveRef(const Capability& version, const PagePath& parent,
                             uint32_t index) {
  std::shared_lock<std::shared_mutex> ops_gate(ops_gate_);
  BlockNo head;
  RETURN_IF_ERROR(VerifyVersionCap(version, Rights::kWrite, &head));
  ASSIGN_OR_RETURN(VersionOpGuard op, AcquireVersionOp(head));
  if (op.info == nullptr) {
    return ReadOnlyError("version is committed or not managed by this server");
  }
  ASSIGN_OR_RETURN(std::vector<WalkStep> steps,
                   WalkPath(op.info, head, parent,
                            RefFlag::kSearched | RefFlag::kModified,
                            /*materialize_target=*/false));
  WalkStep& target = steps.back();
  if (index >= target.page.refs.size()) {
    return InvalidArgumentError("remove index beyond reference table");
  }
  target.page.refs.erase(target.page.refs.begin() + index);
  target.dirty = true;
  return PersistSteps(&steps);
}

Result<std::vector<uint8_t>> FileServer::ReadRefs(const Capability& version,
                                                  const PagePath& path) {
  BlockNo head;
  RETURN_IF_ERROR(VerifyVersionCap(version, Rights::kRead, &head));
  ASSIGN_OR_RETURN(VersionOpGuard op, AcquireVersionOp(head));
  ASSIGN_OR_RETURN(std::vector<WalkStep> steps,
                   WalkPath(op.info, head, path, RefFlag::kSearched,
                            /*materialize_target=*/false));
  std::vector<uint8_t> masks;
  masks.reserve(steps.back().page.refs.size());
  for (const PageRef& ref : steps.back().page.refs) {
    masks.push_back(ref.flags);
  }
  return masks;
}

Status FileServer::MoveSubtree(const Capability& version, const PagePath& from,
                               const PagePath& to_parent, uint32_t index) {
  std::shared_lock<std::shared_mutex> ops_gate(ops_gate_);
  BlockNo head;
  RETURN_IF_ERROR(VerifyVersionCap(version, Rights::kWrite, &head));
  if (from.IsRoot()) {
    return InvalidArgumentError("cannot move the root page");
  }
  if (from.IsPrefixOf(to_parent)) {
    return InvalidArgumentError("destination lies inside the moved subtree");
  }
  ASSIGN_OR_RETURN(VersionOpGuard op, AcquireVersionOp(head));
  if (op.info == nullptr) {
    return ReadOnlyError("version is committed or not managed by this server");
  }
  const PagePath src_parent = from.Parent();
  if (src_parent == to_parent) {
    // Same parent page: remove and reinsert in one walk. The destination index is
    // interpreted against the post-removal table.
    ASSIGN_OR_RETURN(std::vector<WalkStep> steps,
                     WalkPath(op.info, head, src_parent,
                              RefFlag::kSearched | RefFlag::kModified,
                              /*materialize_target=*/false));
    WalkStep& page = steps.back();
    if (from.LastIndex() >= page.page.refs.size()) {
      return InvalidArgumentError("source index beyond reference table");
    }
    PageRef moved = page.page.refs[from.LastIndex()];
    page.page.refs.erase(page.page.refs.begin() + from.LastIndex());
    if (index > page.page.refs.size()) {
      return InvalidArgumentError("destination index beyond reference table");
    }
    page.page.refs.insert(page.page.refs.begin() + index, moved);
    page.dirty = true;
    return PersistSteps(&steps);
  }

  // Detach from the source parent.
  ASSIGN_OR_RETURN(std::vector<WalkStep> src_steps,
                   WalkPath(op.info, head, src_parent,
                            RefFlag::kSearched | RefFlag::kModified,
                            /*materialize_target=*/false));
  WalkStep& src = src_steps.back();
  if (from.LastIndex() >= src.page.refs.size()) {
    return InvalidArgumentError("source index beyond reference table");
  }
  PageRef moved = src.page.refs[from.LastIndex()];
  src.page.refs.erase(src.page.refs.begin() + from.LastIndex());
  src.dirty = true;
  RETURN_IF_ERROR(PersistSteps(&src_steps));

  // The removal shifted the source page's sibling indices; if the destination path passes
  // through the source parent at a higher index, re-address it.
  PagePath adjusted = to_parent;
  if (src_parent.IsPrefixOf(to_parent) && to_parent.depth() > src_parent.depth()) {
    std::vector<uint32_t> indices = to_parent.indices();
    uint32_t& component = indices[src_parent.depth()];
    if (component > from.LastIndex()) {
      --component;
    }
    adjusted = PagePath(std::move(indices));
  }

  // Attach at the destination parent (re-walked; the source persist is already visible).
  ASSIGN_OR_RETURN(std::vector<WalkStep> dst_steps,
                   WalkPath(op.info, head, adjusted,
                            RefFlag::kSearched | RefFlag::kModified,
                            /*materialize_target=*/false));
  WalkStep& dst = dst_steps.back();
  if (index > dst.page.refs.size()) {
    return InvalidArgumentError("destination index beyond reference table");
  }
  dst.page.refs.insert(dst.page.refs.begin() + index, moved);
  if (dst.page.SerializedSize() > kMaxPageBytes) {
    return InvalidArgumentError("page would exceed 32K transaction limit");
  }
  dst.dirty = true;
  return PersistSteps(&dst_steps);
}

Status FileServer::SplitPage(const Capability& version, const PagePath& path,
                             uint32_t data_offset, uint32_t ref_index) {
  std::shared_lock<std::shared_mutex> ops_gate(ops_gate_);
  BlockNo head;
  RETURN_IF_ERROR(VerifyVersionCap(version, Rights::kWrite, &head));
  if (path.IsRoot()) {
    return InvalidArgumentError("cannot split the root page (no parent for the sibling)");
  }
  ASSIGN_OR_RETURN(VersionOpGuard op, AcquireVersionOp(head));
  if (op.info == nullptr) {
    return ReadOnlyError("version is committed or not managed by this server");
  }
  // Materialise the target with write+modify access (its data and references both change);
  // the walk marks the parent searched and will be marked modified below.
  ASSIGN_OR_RETURN(std::vector<WalkStep> steps,
                   WalkPath(op.info, head, path,
                            RefFlag::kWritten | RefFlag::kSearched | RefFlag::kModified,
                            /*materialize_target=*/false));
  WalkStep& target = steps.back();
  WalkStep& parent = steps[steps.size() - 2];
  if (data_offset > target.page.data.size()) {
    return InvalidArgumentError("split offset beyond page data");
  }
  if (ref_index > target.page.refs.size()) {
    return InvalidArgumentError("split index beyond reference table");
  }

  // The new sibling takes the tails.
  Page sibling;
  sibling.kind = PageKind::kPlain;
  sibling.data.assign(target.page.data.begin() + data_offset, target.page.data.end());
  sibling.refs.assign(target.page.refs.begin() + ref_index, target.page.refs.end());
  ASSIGN_OR_RETURN(BlockNo sibling_bno, pages_.WritePage(sibling));
  op.info->allocated_blocks.push_back(sibling_bno);

  target.page.data.resize(data_offset);
  target.page.refs.resize(ref_index);
  target.dirty = true;

  uint32_t target_index = path.LastIndex();
  PageRef sibling_ref{sibling_bno,
                      NormalizeFlags(RefFlag::kCopied | RefFlag::kWritten |
                                     RefFlag::kModified)};
  parent.page.refs.insert(parent.page.refs.begin() + target_index + 1, sibling_ref);
  PageRef target_ref = parent.page.refs[target_index];
  target_ref.flags = NormalizeFlags(target_ref.flags | RefFlag::kModified);
  parent.page.refs[target_index] = target_ref;
  if (parent.page.SerializedSize() > kMaxPageBytes) {
    return InvalidArgumentError("parent page would exceed 32K transaction limit");
  }
  // The parent's own reference table changed: mark it modified in ITS parent (or the
  // root flags when the parent is the root).
  if (steps.size() >= 3) {
    WalkStep& grandparent = steps[steps.size() - 3];
    uint32_t parent_index = path.Parent().LastIndex();
    PageRef parent_ref = grandparent.page.refs[parent_index];
    parent_ref.flags = NormalizeFlags(parent_ref.flags | RefFlag::kModified);
    grandparent.page.refs[parent_index] = parent_ref;
    grandparent.dirty = true;
  } else {
    steps[0].page.root_flags =
        NormalizeFlags(steps[0].page.root_flags | RefFlag::kModified);
  }
  parent.dirty = true;
  return PersistSteps(&steps);
}

Result<Capability> FileServer::CreateSubFile(const Capability& version, const PagePath& parent,
                                             uint32_t index) {
  std::shared_lock<std::shared_mutex> ops_gate(ops_gate_);
  BlockNo head;
  RETURN_IF_ERROR(VerifyVersionCap(version, Rights::kWrite, &head));
  ASSIGN_OR_RETURN(VersionOpGuard op, AcquireVersionOp(head));
  if (op.info == nullptr) {
    return ReadOnlyError("version is committed or not managed by this server");
  }
  ASSIGN_OR_RETURN(std::vector<WalkStep> steps,
                   WalkPath(op.info, head, parent,
                            RefFlag::kSearched | RefFlag::kModified,
                            /*materialize_target=*/false));
  WalkStep& target = steps.back();
  if (index > target.page.refs.size()) {
    return InvalidArgumentError("insert index beyond reference table");
  }

  uint64_t sub_id;
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    sub_id = MintFileIdLocked();
  }
  Capability sub_cap = SignFileCap(sub_id);
  Page sub_root;
  sub_root.kind = PageKind::kVersion;
  sub_root.file_cap = sub_cap;
  sub_root.parent_ref = head;
  sub_root.root_flags = RefFlag::kCopied;
  // Inner-locked from birth: the sub-file only becomes updatable by others once the
  // enclosing super-file update commits or aborts.
  sub_root.inner_lock = op.info->owner;
  ASSIGN_OR_RETURN(BlockNo sub_head, pages_.WritePage(sub_root));
  sub_root.version_cap = SignVersionCap(sub_head);
  RETURN_IF_ERROR(pages_.OverwritePage(sub_head, sub_root));
  op.info->allocated_blocks.push_back(sub_head);
  op.info->locked_subfiles.push_back(sub_head);
  op.info->created_subfiles.push_back(sub_id);
  op.info->is_super_update = true;

  target.page.refs.insert(target.page.refs.begin() + index,
                          PageRef{sub_head, RefFlag::kCopied});
  if (target.page.SerializedSize() > kMaxPageBytes) {
    return InvalidArgumentError("page would exceed 32K transaction limit");
  }
  target.dirty = true;
  RETURN_IF_ERROR(PersistSteps(&steps));

  // Register the sub-file and mark the enclosing file as a super-file.
  ASSIGN_OR_RETURN(Port block_lock, AcquireBlockLock(table_head_));
  Status st;
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    st = LoadFileTable();
    if (st.ok()) {
      files_[sub_id] = FileEntry{sub_id, sub_head, false};
      auto it = files_.find(op.info->file_id);
      if (it != files_.end()) {
        it->second.is_super = true;
      }
      st = PersistFileTableLocked();
      if (st.ok()) {
        current_cache_[sub_id] = sub_head;
      }
    }
  }
  ReleaseBlockLock(table_head_, block_lock);
  RETURN_IF_ERROR(st);
  return sub_cap;
}

}  // namespace afs
