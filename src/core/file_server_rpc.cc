// FileServer RPC surface: decode requests, call the direct API, encode replies.

#include "src/base/wire.h"
#include "src/core/file_server.h"
#include "src/core/protocol.h"
#include "src/rpc/client.h"

namespace afs {

Result<Message> FileServer::Handle(const Message& request) { return Dispatch(request); }

Result<Message> FileServer::Dispatch(const Message& m) {
  WireDecoder in(m.payload);
  switch (static_cast<FileOp>(m.opcode)) {
    case FileOp::kCreateFile: {
      ASSIGN_OR_RETURN(Capability cap, CreateFile());
      WireEncoder out;
      out.PutCapability(cap);
      return OkReply(m.opcode, std::move(out));
    }
    case FileOp::kGetCurrentVersion: {
      ASSIGN_OR_RETURN(Capability file, in.GetCapability());
      ASSIGN_OR_RETURN(Capability version, GetCurrentVersion(file));
      WireEncoder out;
      out.PutCapability(version);
      out.PutU32(static_cast<uint32_t>(version.object));
      return OkReply(m.opcode, std::move(out));
    }
    case FileOp::kCreateVersion: {
      ASSIGN_OR_RETURN(Capability file, in.GetCapability());
      ASSIGN_OR_RETURN(Port owner, in.GetU64());
      ASSIGN_OR_RETURN(uint8_t respect_soft, in.GetU8());
      ASSIGN_OR_RETURN(Capability version, CreateVersion(file, owner, respect_soft != 0));
      WireEncoder out;
      out.PutCapability(version);
      return OkReply(m.opcode, std::move(out));
    }
    case FileOp::kReadPage: {
      ASSIGN_OR_RETURN(Capability version, in.GetCapability());
      ASSIGN_OR_RETURN(PagePath path, PagePath::Decode(&in));
      ASSIGN_OR_RETURN(uint8_t want_refs, in.GetU8());
      ASSIGN_OR_RETURN(ReadResult result, ReadPage(version, path, want_refs != 0));
      WireEncoder out;
      out.PutU32(result.nrefs);
      out.PutBytes(result.data);
      return OkReply(m.opcode, std::move(out));
    }
    case FileOp::kWritePage: {
      ASSIGN_OR_RETURN(Capability version, in.GetCapability());
      ASSIGN_OR_RETURN(PagePath path, PagePath::Decode(&in));
      ASSIGN_OR_RETURN(std::vector<uint8_t> data, in.GetBytes());
      RETURN_IF_ERROR(WritePage(version, path, data));
      return OkReply(m.opcode);
    }
    case FileOp::kWritePageMulti: {
      ASSIGN_OR_RETURN(Capability version, in.GetCapability());
      ASSIGN_OR_RETURN(uint32_t n, in.GetU32());
      // Every entry occupies at least a 2-byte path count plus a 4-byte data length.
      if (n > in.remaining() / 6) {
        return CorruptError("write count exceeds message size");
      }
      for (uint32_t i = 0; i < n; ++i) {
        ASSIGN_OR_RETURN(PagePath path, PagePath::Decode(&in));
        ASSIGN_OR_RETURN(std::vector<uint8_t> data, in.GetBytes());
        RETURN_IF_ERROR(WritePage(version, path, data));
      }
      return OkReply(m.opcode);
    }
    case FileOp::kInsertRef: {
      ASSIGN_OR_RETURN(Capability version, in.GetCapability());
      ASSIGN_OR_RETURN(PagePath parent, PagePath::Decode(&in));
      ASSIGN_OR_RETURN(uint32_t index, in.GetU32());
      RETURN_IF_ERROR(InsertRef(version, parent, index));
      return OkReply(m.opcode);
    }
    case FileOp::kRemoveRef: {
      ASSIGN_OR_RETURN(Capability version, in.GetCapability());
      ASSIGN_OR_RETURN(PagePath parent, PagePath::Decode(&in));
      ASSIGN_OR_RETURN(uint32_t index, in.GetU32());
      RETURN_IF_ERROR(RemoveRef(version, parent, index));
      return OkReply(m.opcode);
    }
    case FileOp::kReadRefs: {
      ASSIGN_OR_RETURN(Capability version, in.GetCapability());
      ASSIGN_OR_RETURN(PagePath path, PagePath::Decode(&in));
      ASSIGN_OR_RETURN(std::vector<uint8_t> masks, ReadRefs(version, path));
      WireEncoder out;
      out.PutU32(static_cast<uint32_t>(masks.size()));
      for (uint8_t mask : masks) {
        out.PutU8(mask);
      }
      return OkReply(m.opcode, std::move(out));
    }
    case FileOp::kMoveSubtree: {
      ASSIGN_OR_RETURN(Capability version, in.GetCapability());
      ASSIGN_OR_RETURN(PagePath from, PagePath::Decode(&in));
      ASSIGN_OR_RETURN(PagePath to_parent, PagePath::Decode(&in));
      ASSIGN_OR_RETURN(uint32_t index, in.GetU32());
      RETURN_IF_ERROR(MoveSubtree(version, from, to_parent, index));
      return OkReply(m.opcode);
    }
    case FileOp::kCommit: {
      ASSIGN_OR_RETURN(Capability version, in.GetCapability());
      ASSIGN_OR_RETURN(BlockNo head, Commit(version));
      WireEncoder out;
      out.PutU32(head);
      return OkReply(m.opcode, std::move(out));
    }
    case FileOp::kAbort: {
      ASSIGN_OR_RETURN(Capability version, in.GetCapability());
      RETURN_IF_ERROR(Abort(version));
      return OkReply(m.opcode);
    }
    case FileOp::kValidateCache: {
      ASSIGN_OR_RETURN(Capability file, in.GetCapability());
      ASSIGN_OR_RETURN(BlockNo cached_head, in.GetU32());
      ASSIGN_OR_RETURN(uint32_t npaths, in.GetU32());
      // Every encoded path occupies at least its 2-byte count; a claimed count beyond that
      // is a malformed (or hostile) message — reject before reserving anything.
      if (npaths > in.remaining() / 2) {
        return CorruptError("path count exceeds message size");
      }
      std::vector<PagePath> paths;
      paths.reserve(npaths);
      for (uint32_t i = 0; i < npaths; ++i) {
        ASSIGN_OR_RETURN(PagePath path, PagePath::Decode(&in));
        paths.push_back(std::move(path));
      }
      ASSIGN_OR_RETURN(CacheCheck check, ValidateCache(file, cached_head, paths));
      WireEncoder out;
      out.PutCapability(check.current_version);
      out.PutU32(static_cast<uint32_t>(check.invalid.size()));
      for (const PagePath& path : check.invalid) {
        path.Encode(&out);
      }
      return OkReply(m.opcode, std::move(out));
    }
    case FileOp::kFileStat: {
      ASSIGN_OR_RETURN(Capability file, in.GetCapability());
      ASSIGN_OR_RETURN(FileStatInfo info, FileStat(file));
      WireEncoder out;
      out.PutU32(info.current_head);
      out.PutU32(info.committed_versions);
      out.PutU8(info.is_super ? 1 : 0);
      return OkReply(m.opcode, std::move(out));
    }
    case FileOp::kCreateSubFile: {
      ASSIGN_OR_RETURN(Capability version, in.GetCapability());
      ASSIGN_OR_RETURN(PagePath parent, PagePath::Decode(&in));
      ASSIGN_OR_RETURN(uint32_t index, in.GetU32());
      ASSIGN_OR_RETURN(Capability sub, CreateSubFile(version, parent, index));
      WireEncoder out;
      out.PutCapability(sub);
      return OkReply(m.opcode, std::move(out));
    }
    case FileOp::kDeleteFile: {
      ASSIGN_OR_RETURN(Capability file, in.GetCapability());
      RETURN_IF_ERROR(DeleteFile(file));
      return OkReply(m.opcode);
    }
    case FileOp::kListUncommitted: {
      std::vector<BlockNo> heads = ListUncommitted();
      WireEncoder out;
      out.PutU32(static_cast<uint32_t>(heads.size()));
      for (BlockNo head : heads) {
        out.PutU32(head);
      }
      return OkReply(m.opcode, std::move(out));
    }
    case FileOp::kSplitPage: {
      ASSIGN_OR_RETURN(Capability version, in.GetCapability());
      ASSIGN_OR_RETURN(PagePath path, PagePath::Decode(&in));
      ASSIGN_OR_RETURN(uint32_t data_offset, in.GetU32());
      ASSIGN_OR_RETURN(uint32_t ref_index, in.GetU32());
      RETURN_IF_ERROR(SplitPage(version, path, data_offset, ref_index));
      return OkReply(m.opcode);
    }
    case FileOp::kMigrateNow: {
      if (!tier_admin_.migrate) {
        return UnavailableError("no storage tier attached");
      }
      ASSIGN_OR_RETURN(uint64_t migrated, tier_admin_.migrate());
      WireEncoder out;
      out.PutU64(migrated);
      return OkReply(m.opcode, std::move(out));
    }
    case FileOp::kScrubNow: {
      if (!tier_admin_.scrub) {
        return UnavailableError("no storage tier attached");
      }
      ASSIGN_OR_RETURN(TierScrubSummary s, tier_admin_.scrub());
      WireEncoder out;
      out.PutU64(s.checked);
      out.PutU64(s.repaired);
      out.PutU64(s.unrecoverable);
      out.PutU64(s.reclaimed_redo);
      return OkReply(m.opcode, std::move(out));
    }
    case FileOp::kTierStat: {
      TierStatInfo info;
      if (tier_admin_.stat) {
        info = tier_admin_.stat();
      }
      WireEncoder out;
      out.PutU8(info.enabled ? 1 : 0);
      if (info.enabled) {
        out.PutU64(info.archived_blocks);
        out.PutU64(info.archive_used_blocks);
        out.PutU64(info.archive_capacity_blocks);
        out.PutU64(info.archive_bytes);
        out.PutU64(info.migrated_total);
        out.PutU64(info.promotions);
        out.PutU64(info.scrub_repairs);
        out.PutU64(info.magnetic_reclaimed);
      }
      return OkReply(m.opcode, std::move(out));
    }
    case FileOp::kPrepare: {
      ASSIGN_OR_RETURN(Capability version, in.GetCapability());
      ASSIGN_OR_RETURN(uint64_t txn_id, in.GetU64());
      ASSIGN_OR_RETURN(BlockNo head, Prepare(version, txn_id));
      WireEncoder out;
      out.PutU32(head);
      return OkReply(m.opcode, std::move(out));
    }
    case FileOp::kDecide: {
      ASSIGN_OR_RETURN(uint64_t txn_id, in.GetU64());
      ASSIGN_OR_RETURN(uint8_t commit, in.GetU8());
      RETURN_IF_ERROR(Decide(txn_id, commit != 0));
      return OkReply(m.opcode);
    }
    case FileOp::kListInDoubt: {
      std::vector<InDoubtEntry> entries = ListInDoubt();
      WireEncoder out;
      out.PutU32(static_cast<uint32_t>(entries.size()));
      for (const InDoubtEntry& e : entries) {
        out.PutU32(e.head);
        out.PutU64(e.txn_id);
      }
      return OkReply(m.opcode, std::move(out));
    }
    case FileOp::kCrossCommit: {
      if (!shard_admin_.cross_commit) {
        return UnavailableError("no shard coordinator attached");
      }
      ASSIGN_OR_RETURN(uint32_t n, in.GetU32());
      // A participant entry is at least a 4-byte shard id plus the capability bytes.
      if (n > in.remaining() / 5) {
        return CorruptError("participant count exceeds message size");
      }
      std::vector<std::pair<uint32_t, Capability>> participants;
      participants.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        ASSIGN_OR_RETURN(uint32_t shard, in.GetU32());
        ASSIGN_OR_RETURN(Capability version, in.GetCapability());
        participants.emplace_back(shard, version);
      }
      ASSIGN_OR_RETURN(std::vector<BlockNo> heads, shard_admin_.cross_commit(participants));
      WireEncoder out;
      out.PutU32(static_cast<uint32_t>(heads.size()));
      for (BlockNo head : heads) {
        out.PutU32(head);
      }
      return OkReply(m.opcode, std::move(out));
    }
    case FileOp::kResolveTxn: {
      if (!shard_admin_.resolve) {
        return UnavailableError("no shard coordinator attached");
      }
      ASSIGN_OR_RETURN(uint64_t txn_id, in.GetU64());
      ASSIGN_OR_RETURN(bool committed, shard_admin_.resolve(txn_id));
      WireEncoder out;
      out.PutU8(committed ? 1 : 0);
      return OkReply(m.opcode, std::move(out));
    }
  }
  return InvalidArgumentError("unknown file service opcode");
}

}  // namespace afs
