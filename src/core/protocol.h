// Wire protocol of the Amoeba File Service (paper §5).
//
// The command set follows §5's description: "commands to read and write the pages of a
// version and commands to manipulate the shape of a version's page tree", bracketed by
// create-version / commit ("Atomic updates on files are bracketed by creating a version and
// committing a version"), plus cache validation (§5.4) and the administrative operations
// the GC and tests need.

#ifndef SRC_CORE_PROTOCOL_H_
#define SRC_CORE_PROTOCOL_H_

#include <cstdint>

namespace afs {

enum class FileOp : uint32_t {
  // CreateFile: () -> (capability file)
  //   Creates a file with one committed, empty version.
  kCreateFile = 1,
  // GetCurrentVersion: (capability file) -> (capability version, u32 head)
  //   Read-only snapshot handle of the current committed version.
  kGetCurrentVersion = 2,
  // CreateVersion: (capability file, u64 owner_port, u8 respect_soft_lock) -> (capability
  //   version). Applies the §5.3 locking rules: a small file tests the inner lock and sets
  //   the top lock (a hint); a super-file tests both and sets the top lock exclusively.
  //   owner_port identifies the update for the locks-made-of-ports mechanism; with
  //   respect_soft_lock, a set top lock on a small file defers the update (§5.3 "soft
  //   locking").
  kCreateVersion = 3,
  // ReadPage: (capability version, path, u8 want_refs) -> (u32 nrefs, bytes data)
  //   Sets R (and S if want_refs) on the page's reference; searches (S) ancestors.
  kReadPage = 4,
  // WritePage: (capability version, path, bytes data) -> ()
  //   Copy-on-write: first write of a page copies it; later writes go in place (§5.1).
  kWritePage = 5,
  // InsertRef: (capability version, path parent, u32 index) -> ()
  //   Inserts a hole (nil reference) at `index`; writing through the hole creates the page.
  //   Sets M on the parent ("make hole").
  kInsertRef = 6,
  // RemoveRef: (capability version, path parent, u32 index) -> ()
  //   Removes the reference (and its subtree, from this version's point of view). Sets M.
  kRemoveRef = 7,
  // ReadRefs: (capability version, path) -> (u32 nrefs, nrefs * u8 flag_mask)
  //   Searches the page's references (sets S).
  kReadRefs = 8,
  // MoveSubtree: (capability version, path from, path to_parent, u32 index) -> ()
  //   "move subtrees to another part of the tree". Sets M on both parents.
  kMoveSubtree = 9,
  // Commit: (capability version) -> (u32 new_head)
  //   The optimistic commit of §5.2. kConflict if the update cannot be serialised; the
  //   version is then removed and the client must redo the update.
  kCommit = 10,
  // Abort: (capability version) -> ()
  kAbort = 11,
  // ValidateCache: (capability file, u32 cached_head, u32 npaths, paths...) ->
  //   (capability current_version, u32 ninvalid, paths...)
  //   The §5.4 cache check: a serialisability test between the cache entry and the current
  //   version; returns "a list of path names of pages to be discarded". A null operation
  //   when the cached version is still current.
  kValidateCache = 12,
  // FileStat: (capability file) -> (u32 current_head, u32 committed_versions, u8 is_super)
  kFileStat = 13,
  // CreateSubFile: (capability version, path parent, u32 index) -> (capability subfile)
  //   Nests a new file's version page inside a super-file update (Figure 2's files within
  //   files).
  kCreateSubFile = 14,
  // DeleteFile: (capability file) -> ()
  kDeleteFile = 15,
  // ListUncommitted: () -> (u32 n, n * u32 head)
  //   GC support: live uncommitted version roots managed by this server. Uncommitted
  //   versions of crashed servers are intentionally not reported — their pages are garbage
  //   ("uncommitted versions need not be salvaged in a server crash").
  kListUncommitted = 16,
  // SplitPage: (capability version, path, u32 data_offset, u32 ref_index) -> ()
  //   "split pages into two" (§5): a new sibling page directly after `path` receives the
  //   data from `data_offset` on and the references from `ref_index` on; the original
  //   keeps the prefixes. The root cannot be split (it has no parent to hold the sibling).
  kSplitPage = 17,
  // WritePageMulti: (capability version, u32 n, n * (path, bytes data)) -> ()
  //   Vectored WritePage: one transaction carries many page writes of one version, applied
  //   in order with WritePage semantics (copy-on-write on first touch). The client stub
  //   chunks batches under the 32K transaction message limit; a batch fails at the first
  //   failing page, with pages before it applied (same as issuing the writes singly).
  kWritePageMulti = 18,
  // MigrateNow: () -> (u64 blocks_migrated)
  //   Tier admin (§6 optical archival, src/tier): run one migration cycle of the attached
  //   Migrator synchronously. kUnavailable if the deployment has no tier attached.
  kMigrateNow = 19,
  // ScrubNow: () -> (u64 checked, u64 repaired, u64 unrecoverable, u64 reclaimed_redo)
  //   Tier admin: one synchronous archive scrub pass (CRC-verify every archived block,
  //   repair what the magnetic tier still holds, finish interrupted reclamations).
  kScrubNow = 20,
  // TierStat: () -> (u8 enabled, then iff enabled the 8 u64s of TierStatInfo in order)
  //   Tier observability snapshot; enabled=0 when no tier is attached.
  kTierStat = 21,

  // --- Cross-shard two-phase commit (src/shard, docs/SHARDING.md) ------------
  // Prepare: (capability version, u64 txn_id) -> (u32 head)
  //   Phase 1 of the optimistic two-phase commit: run the §5.2 serialisability validation
  //   for this participant's version, stage it at the end of its chain with the in-doubt
  //   marker (prepare_txn = txn_id) set, and hold the slot until Decide. Idempotent for the
  //   same txn_id. kConflict aborts the participant locally (the coordinator then aborts
  //   the whole transaction).
  kPrepare = 22,
  // Decide: (u64 txn_id, u8 commit) -> ()
  //   Phase 2: commit clears the in-doubt marker and publishes the staged version as
  //   current; abort unlinks it and frees its private pages. Idempotent; unknown txn_ids
  //   succeed (the decision may have been applied before a coordinator retransmission).
  kDecide = 23,
  // CrossCommit: (u32 n, n * (u32 shard_id, capability version)) -> (n * u32 head)
  //   Coordinator entry point: commit an n-participant transaction atomically across
  //   shards. Served by the shard that hosts the coordinator role for this transaction.
  kCrossCommit = 24,
  // ResolveTxn: (u64 txn_id) -> (u8 outcome)  outcome: 0 = aborted, 1 = committed
  //   Recovery query: ask the coordinator's decision log what happened to txn_id.
  //   Presumed abort: a transaction with no logged decision is reported aborted.
  kResolveTxn = 25,
  // ListInDoubt: () -> (u32 n, n * (u32 head, u64 txn_id))
  //   Recovery support: the prepared-but-undecided versions this server still holds.
  kListInDoubt = 26,
};

// Snapshot of a deployment's storage-tier state, served by kTierStat. Lives here (not in
// src/tier) so client and server stubs can speak it without depending on the subsystem.
struct TierStatInfo {
  bool enabled = false;
  uint64_t archived_blocks = 0;        // live entries in the block-location map
  uint64_t archive_used_blocks = 0;    // burned blocks on the write-once medium
  uint64_t archive_capacity_blocks = 0;
  uint64_t archive_bytes = 0;          // payload bytes resident on the archive
  uint64_t migrated_total = 0;         // blocks ever migrated
  uint64_t promotions = 0;             // archive reads promoted into the cache
  uint64_t scrub_repairs = 0;
  uint64_t magnetic_reclaimed = 0;     // magnetic blocks freed by migration
};

// Result of one scrub pass, served by kScrubNow.
struct TierScrubSummary {
  uint64_t checked = 0;        // mappings whose archive copy verified clean
  uint64_t repaired = 0;       // corrupt archive copies re-burned from the magnetic copy
  uint64_t unrecoverable = 0;  // corrupt on both tiers
  uint64_t reclaimed_redo = 0; // interrupted migrations' magnetic frees completed
};

}  // namespace afs

#endif  // SRC_CORE_PROTOCOL_H_
