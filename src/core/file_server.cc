#include "src/core/file_server.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <thread>

#include "src/base/wire.h"
#include "src/core/commit_tuning.h"
#include "src/core/protocol.h"
#include "src/core/serialise.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"
#include "src/rpc/client.h"

namespace afs {
namespace {

// Tag identifying the file-table page during a recovery scan (§4's recovery operation).
constexpr uint64_t kFileTableMagic = 0xaf57ab1e0f11e5ull;

// Bound on optimistic retry loops (chain walks, lock acquisition). Chains longer than this
// in one operation indicate livelock or corruption.
constexpr int kMaxChainSteps = 4096;

}  // namespace

FileServer::FileServer(Network* network, std::string name, BlockStore* blocks,
                       FileServerOptions options)
    : Service(network, std::move(name)),
      blocks_(blocks),
      pages_(blocks),
      options_(options),
      file_signer_(0, Mix64(options.group_secret ^ 0xf11e)),
      version_signer_(0, Mix64(options.group_secret ^ 0x7e55)),
      rng_(options.group_secret ^ 0x5eed),
      commit_fast_path_(metrics()->counter("commit.fast_path")),
      commit_validated_(metrics()->counter("commit.validated")),
      commit_merged_(metrics()->counter("commit.merged")),
      commit_conflicts_(metrics()->counter("commit.conflict_aborted")),
      serialise_tests_ctr_(metrics()->counter("commit.serialise_tests")),
      commit_sig_fast_(metrics()->counter("commit.sig_fast_path")),
      index_hits_(metrics()->counter("commit.index_hit")),
      index_misses_(metrics()->counter("commit.index_miss")),
      group_fallbacks_(metrics()->counter("commit.group_fallback")),
      commit_group_size_(metrics()->histogram("commit.group_size")),
      commit_rpcs_(metrics()->histogram("commit.rpcs")),
      commit_latency_ns_(metrics()->histogram("commit.latency_ns")),
      cache_hits_(metrics()->counter("cache.hit")),
      cache_misses_(metrics()->counter("cache.miss")),
      cache_evictions_(metrics()->counter("cache.eviction")),
      shard_prepares_(metrics()->counter("shard.prepare")),
      shard_prepare_conflicts_(metrics()->counter("shard.prepare_conflict")),
      shard_decide_commits_(metrics()->counter("shard.decide_commit")),
      shard_decide_aborts_(metrics()->counter("shard.decide_abort")),
      slo_commit_(obs::SloTracker::Global()->ClassHistogram("commit")) {
  if (options_.num_shards == 0) {
    options_.num_shards = 1;
  }
}

uint64_t FileServer::MintFileIdLocked() {
  uint64_t id = rng_.NextU64() | 1;
  const uint64_t n = options_.num_shards;
  if (n > 1) {
    id -= id % n;
    id += options_.shard_id;
    if (id == 0) {
      id = options_.shard_id == 0 ? n : options_.shard_id;
    }
  }
  return id;
}

FileServer::~FileServer() { Shutdown(); }

// ---------------------------------------------------------------------------
// Capabilities
// ---------------------------------------------------------------------------

Capability FileServer::SignFileCap(uint64_t file_id) {
  Capability cap = file_signer_.Sign(file_id, Rights::kAll);
  cap.port = port();  // routing hint only; any group member verifies the object signature
  return cap;
}

Capability FileServer::SignVersionCap(BlockNo head) {
  Capability cap = version_signer_.Sign(head, Rights::kAll);
  cap.port = port();  // versions are managed by the server that created them
  return cap;
}

Status FileServer::VerifyFileCap(const Capability& cap, uint32_t rights, uint64_t* file_id) {
  RETURN_IF_ERROR(file_signer_.VerifyObject(cap, rights));
  *file_id = cap.object;
  return OkStatus();
}

Status FileServer::VerifyVersionCap(const Capability& cap, uint32_t rights, BlockNo* head) {
  RETURN_IF_ERROR(version_signer_.VerifyObject(cap, rights));
  *head = static_cast<BlockNo>(cap.object);
  return OkStatus();
}

// ---------------------------------------------------------------------------
// File table
// ---------------------------------------------------------------------------

Status FileServer::AttachStore() {
  // Look for an existing file table among the account's blocks — this is the §4 recovery
  // operation: "a file server can then use its redundancy information to restore its file
  // system after a severe crash."
  ASSIGN_OR_RETURN(std::vector<BlockNo> owned, blocks_->ListBlocks());
  std::sort(owned.begin(), owned.end());
  // Every owned block is tried as a candidate page head; most are chain tails or version
  // pages and fail the filter. The vectored read scans the whole account in a handful of
  // RPCs, tolerating per-block failures (tails often do not decode as pages).
  ASSIGN_OR_RETURN(std::vector<PageReadResult> scan, pages_.ReadPagesDetailed(owned));
  for (size_t i = 0; i < owned.size(); ++i) {
    if (!scan[i].status.ok()) {
      continue;
    }
    const Page& page = scan[i].page;
    if (page.kind != PageKind::kPlain || page.base_ref != kNilRef || !page.refs.empty() ||
        page.data.size() < 8) {
      continue;
    }
    WireDecoder dec(page.data);
    auto magic = dec.GetU64();
    if (magic.ok() && *magic == kFileTableMagic) {
      {
        std::lock_guard<std::mutex> lock(table_mu_);
        table_head_ = owned[i];
        RETURN_IF_ERROR(LoadFileTable());
      }
      RebuildVersionIndex();
      RecoverPreparedTips();
      return OkStatus();
    }
  }
  // Fresh store: create an empty table.
  Page table;
  table.kind = PageKind::kPlain;
  WireEncoder enc;
  enc.PutU64(kFileTableMagic);
  enc.PutU32(0);
  table.data = std::move(enc).Take();
  ASSIGN_OR_RETURN(BlockNo head, pages_.WritePage(table));
  std::lock_guard<std::mutex> lock(table_mu_);
  table_head_ = head;
  files_.clear();
  return OkStatus();
}

void FileServer::RebuildVersionIndex() {
  index_.Clear();
  if (!VersionIndexEnabled()) {
    return;
  }
  // Heads only: signatures and root snapshots belong to the server instance that ran the
  // commits and are not recoverable. Validation against re-seeded records falls back to
  // the serialiser's tree walk, exactly as for another server's commits.
  for (const FileEntry& entry : SnapshotFileTable()) {
    auto chain = CommittedChain(entry.file_id);
    if (chain.ok()) {
      index_.SeedChain(entry.file_id, *chain);
    }
  }
}

void FileServer::OnVersionsPruned(uint64_t file_id, const std::vector<BlockNo>& pruned_heads) {
  index_.Forget(file_id, pruned_heads);
}

Status FileServer::LoadFileTable() {
  // Caller holds table_mu_.
  ASSIGN_OR_RETURN(Page table, pages_.ReadPage(table_head_));
  WireDecoder dec(table.data);
  ASSIGN_OR_RETURN(uint64_t magic, dec.GetU64());
  if (magic != kFileTableMagic) {
    return CorruptError("file table magic mismatch");
  }
  ASSIGN_OR_RETURN(uint32_t nfiles, dec.GetU32());
  files_.clear();
  for (uint32_t i = 0; i < nfiles; ++i) {
    FileEntry entry;
    ASSIGN_OR_RETURN(entry.file_id, dec.GetU64());
    ASSIGN_OR_RETURN(entry.oldest_head, dec.GetU32());
    ASSIGN_OR_RETURN(uint8_t is_super, dec.GetU8());
    entry.is_super = is_super != 0;
    files_[entry.file_id] = entry;
  }
  return OkStatus();
}

Status FileServer::PersistFileTableLocked() {
  Page table;
  table.kind = PageKind::kPlain;
  WireEncoder enc;
  enc.PutU64(kFileTableMagic);
  enc.PutU32(static_cast<uint32_t>(files_.size()));
  for (const auto& [id, entry] : files_) {
    enc.PutU64(entry.file_id);
    enc.PutU32(entry.oldest_head);
    enc.PutU8(entry.is_super ? 1 : 0);
  }
  table.data = std::move(enc).Take();
  return pages_.OverwritePage(table_head_, table);
}

Result<FileServer::FileEntry> FileServer::LookupFileLocked(uint64_t file_id) {
  auto it = files_.find(file_id);
  if (it == files_.end()) {
    // Another server may have created the file; reload the shared table once.
    RETURN_IF_ERROR(LoadFileTable());
    it = files_.find(file_id);
    if (it == files_.end()) {
      return NotFoundError("no such file");
    }
  }
  return it->second;
}

std::vector<FileServer::FileEntry> FileServer::SnapshotFileTable() {
  std::lock_guard<std::mutex> lock(table_mu_);
  (void)LoadFileTable();
  std::vector<FileEntry> out;
  out.reserve(files_.size());
  for (const auto& [id, entry] : files_) {
    (void)id;
    out.push_back(entry);
  }
  return out;
}

Status FileServer::SetOldestHead(uint64_t file_id, BlockNo new_oldest) {
  ASSIGN_OR_RETURN(Port block_lock, AcquireBlockLock(table_head_));
  std::lock_guard<std::mutex> lock(table_mu_);
  Status st = LoadFileTable();
  if (st.ok()) {
    auto it = files_.find(file_id);
    if (it == files_.end()) {
      st = NotFoundError("no such file");
    } else {
      it->second.oldest_head = new_oldest;
      st = PersistFileTableLocked();
    }
  }
  ReleaseBlockLock(table_head_, block_lock);
  return st;
}

// ---------------------------------------------------------------------------
// Page loading and the committed-page cache
// ---------------------------------------------------------------------------

Result<Page> FileServer::LoadPageUncached(BlockNo head) { return pages_.ReadPage(head); }

Result<Page> FileServer::LoadPage(BlockNo head) {
  if (options_.cache_committed_pages) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = committed_cache_.find(head);
    if (it != committed_cache_.end()) {
      cache_hits_->Inc();
      obs::Trace(obs::TraceEvent::kCacheHit, head);
      return it->second;
    }
  }
  if (options_.cache_committed_pages) {
    cache_misses_->Inc();
    obs::Trace(obs::TraceEvent::kCacheMiss, head);
  }
  ASSIGN_OR_RETURN(Page page, pages_.ReadPage(head));
  // Version pages are mutable in place (commit reference, locks) and must never be served
  // stale; only plain pages are cached.
  if (options_.cache_committed_pages && page.kind == PageKind::kPlain) {
    CacheCommittedPage(head, page);
  }
  return page;
}

Result<std::vector<Page>> FileServer::LoadPagesCommitted(std::span<const BlockNo> heads) {
  std::vector<Page> out(heads.size());
  std::vector<size_t> miss_index;
  std::vector<BlockNo> miss_heads;
  if (options_.cache_committed_pages) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    for (size_t i = 0; i < heads.size(); ++i) {
      auto it = committed_cache_.find(heads[i]);
      if (it != committed_cache_.end()) {
        cache_hits_->Inc();
        obs::Trace(obs::TraceEvent::kCacheHit, heads[i]);
        out[i] = it->second;
      } else {
        miss_index.push_back(i);
        miss_heads.push_back(heads[i]);
      }
    }
  } else {
    for (size_t i = 0; i < heads.size(); ++i) {
      miss_index.push_back(i);
      miss_heads.push_back(heads[i]);
    }
  }
  if (miss_heads.empty()) {
    return out;
  }
  if (options_.cache_committed_pages) {
    cache_misses_->Inc(miss_heads.size());
  }
  ASSIGN_OR_RETURN(std::vector<Page> fetched, pages_.ReadPages(miss_heads));
  for (size_t j = 0; j < miss_index.size(); ++j) {
    if (options_.cache_committed_pages && fetched[j].kind == PageKind::kPlain) {
      CacheCommittedPage(miss_heads[j], fetched[j]);
    }
    out[miss_index[j]] = std::move(fetched[j]);
  }
  return out;
}

void FileServer::CacheCommittedPage(BlockNo head, const Page& page) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (committed_cache_.size() >= options_.committed_cache_capacity && !cache_lru_.empty()) {
    committed_cache_.erase(cache_lru_.front());
    cache_lru_.erase(cache_lru_.begin());
    cache_evictions_->Inc();
    obs::Trace(obs::TraceEvent::kCacheEvict, head);
  }
  if (committed_cache_.emplace(head, page).second) {
    cache_lru_.push_back(head);
  }
}

void FileServer::UncachePage(BlockNo head) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  committed_cache_.erase(head);
  cache_lru_.erase(std::remove(cache_lru_.begin(), cache_lru_.end(), head), cache_lru_.end());
}

// ---------------------------------------------------------------------------
// Version chains
// ---------------------------------------------------------------------------

Result<BlockNo> FileServer::FindCurrentHead(uint64_t file_id) {
  BlockNo head = kNilRef;
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    auto hint = current_cache_.find(file_id);
    if (hint != current_cache_.end()) {
      head = hint->second;
    } else {
      ASSIGN_OR_RETURN(FileEntry entry, LookupFileLocked(file_id));
      head = entry.oldest_head;
    }
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    BlockNo cur = head;
    BlockNo prev = kNilRef;
    bool broken = false;
    for (int step = 0; step < kMaxChainSteps; ++step) {
      auto page = LoadPageUncached(cur);
      if (!page.ok()) {
        broken = true;  // stale hint (GC pruned it); fall back to the table
        break;
      }
      if (page->prepare_txn != 0) {
        // An in-doubt cross-shard tip (docs/SHARDING.md): staged at the chain's end but
        // not committed. Its predecessor stays current until the coordinator decides.
        // Never cached — the decision may publish the tip at any moment.
        if (prev == kNilRef) {
          broken = true;  // stale hint landed on the staged page itself; retry from table
          break;
        }
        return prev;
      }
      if (page->commit_ref == kNilRef) {
        std::lock_guard<std::mutex> lock(table_mu_);
        current_cache_[file_id] = cur;
        return cur;
      }
      // §5.3 waiter recovery: a superseded version page whose top lock holder died between
      // setting the commit reference and finishing the sub-file commits — finish its work.
      if (page->top_lock != kNullPort && !network()->IsPortAlive(page->top_lock)) {
        RETURN_IF_ERROR(RecoverDeadTopLock(cur, *page));
      }
      prev = cur;
      cur = page->commit_ref;
    }
    if (!broken) {
      return InternalError("version chain too long");
    }
    std::lock_guard<std::mutex> lock(table_mu_);
    current_cache_.erase(file_id);
    ASSIGN_OR_RETURN(FileEntry entry, LookupFileLocked(file_id));
    head = entry.oldest_head;
  }
  return NotFoundError("version chain unreadable");
}

Result<std::vector<BlockNo>> FileServer::FileTableBlocks() {
  BlockNo head;
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    head = table_head_;
  }
  return pages_.ChainBlocks(head);
}

Result<std::vector<BlockNo>> FileServer::CommittedChain(uint64_t file_id) {
  BlockNo head;
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    ASSIGN_OR_RETURN(FileEntry entry, LookupFileLocked(file_id));
    head = entry.oldest_head;
  }
  std::vector<BlockNo> chain;
  BlockNo cur = head;
  for (int step = 0; step < kMaxChainSteps && cur != kNilRef; ++step) {
    ASSIGN_OR_RETURN(Page page, LoadPageUncached(cur));
    if (page.prepare_txn != 0) {
      break;  // in-doubt cross-shard tip: not committed until the coordinator decides
    }
    chain.push_back(cur);
    cur = page.commit_ref;
  }
  return chain;
}

// ---------------------------------------------------------------------------
// Block-level critical sections
// ---------------------------------------------------------------------------

Result<Port> FileServer::AcquireBlockLock(BlockNo bno) {
  Port owner = network()->AllocatePort(port());
  // Block locks guard microsecond-scale read-modify-writes of single version pages; a
  // short bounded spin rides out contention. A holder that died is stolen by the block
  // server itself (locks made of ports). Yield first — the holder is typically another
  // worker finishing a microsecond critical section — and back off to short sleeps only
  // for genuinely congested locks.
  for (int attempt = 0; attempt < 20000; ++attempt) {
    Status st = pages_.LockBlock(bno, owner);
    if (st.ok()) {
      return owner;
    }
    if (st.code() != ErrorCode::kLocked) {
      network()->ClosePort(owner);
      return st;
    }
    if (attempt < 256) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  }
  network()->ClosePort(owner);
  return LockedError("block lock congested");
}

void FileServer::ReleaseBlockLock(BlockNo bno, Port owner) {
  (void)pages_.UnlockBlock(bno, owner);
  network()->ClosePort(owner);
}

// ---------------------------------------------------------------------------
// Locks (§5.3)
// ---------------------------------------------------------------------------

Status FileServer::SetInnerLock(BlockNo sub_head, Port owner) {
  ASSIGN_OR_RETURN(Port block_lock, AcquireBlockLock(sub_head));
  Status st = OkStatus();
  auto page = LoadPageUncached(sub_head);
  if (!page.ok()) {
    st = page.status();
  } else {
    if (page->top_lock != kNullPort && network()->IsPortAlive(page->top_lock)) {
      // "If an update, while descending the page tree, discovers a top lock, it must wait
      // until the lock is cleared before that subtree can be entered."
      st = LockedError("sub-file update in progress (top lock set)");
    } else if (page->inner_lock != kNullPort && page->inner_lock != owner &&
               network()->IsPortAlive(page->inner_lock)) {
      st = LockedError("sub-file inner-locked by another super-file update");
    } else {
      if (page->top_lock != kNullPort && !network()->IsPortAlive(page->top_lock)) {
        page->top_lock = kNullPort;  // dead holder, commit ref unset (page is current)
      }
      page->inner_lock = owner;
      st = pages_.OverwritePage(sub_head, *page);
    }
  }
  ReleaseBlockLock(sub_head, block_lock);
  return st;
}

Status FileServer::ClearInnerLock(BlockNo sub_head, Port owner) {
  ASSIGN_OR_RETURN(Port block_lock, AcquireBlockLock(sub_head));
  Status st = OkStatus();
  auto page = LoadPageUncached(sub_head);
  if (!page.ok()) {
    st = page.status();
  } else if (page->inner_lock == owner) {
    page->inner_lock = kNullPort;
    st = pages_.OverwritePage(sub_head, *page);
  }
  ReleaseBlockLock(sub_head, block_lock);
  return st;
}

Status FileServer::ClearTopLock(BlockNo head, Port owner) {
  ASSIGN_OR_RETURN(Port block_lock, AcquireBlockLock(head));
  Status st = OkStatus();
  auto page = LoadPageUncached(head);
  if (!page.ok()) {
    st = page.status();
  } else if (page->top_lock == owner) {
    page->top_lock = kNullPort;
    st = pages_.OverwritePage(head, *page);
  }
  ReleaseBlockLock(head, block_lock);
  return st;
}

Status FileServer::RecoverDeadTopLock(BlockNo locked_head, const Page& locked_page) {
  // "If the commit reference is set, the version it refers to is current. The version with
  // the lock and the current version are traversed simultaneously, and the commit
  // references of the sub-files are set, finishing the work of the crashed server."
  if (locked_page.commit_ref == kNilRef) {
    return ClearTopLock(locked_head, locked_page.top_lock);
  }
  ASSIGN_OR_RETURN(Page new_current, LoadPageUncached(locked_page.commit_ref));

  // Traverse the new current version's tree; every copied sub-file version page found must
  // be linked as the successor of the page it was based on.
  struct Frame {
    BlockNo bno;
    Page page;
  };
  std::deque<Frame> frontier;
  frontier.push_back({locked_page.commit_ref, std::move(new_current)});
  int guard = 0;
  while (!frontier.empty()) {
    if (++guard > kMaxChainSteps) {
      return InternalError("super-commit recovery tree too large");
    }
    Frame frame = std::move(frontier.front());
    frontier.pop_front();
    if (frame.page.IsVersionPage() && frame.page.base_ref != kNilRef &&
        frame.bno != locked_page.commit_ref) {
      // A copied sub-file version page: finish its commit.
      ASSIGN_OR_RETURN(Port block_lock, AcquireBlockLock(frame.page.base_ref));
      auto base = LoadPageUncached(frame.page.base_ref);
      if (base.ok() && base->commit_ref == kNilRef) {
        base->commit_ref = frame.bno;
        base->inner_lock = kNullPort;
        (void)pages_.OverwritePage(frame.page.base_ref, *base);
      }
      ReleaseBlockLock(frame.page.base_ref, block_lock);
    }
    for (const PageRef& ref : frame.page.refs) {
      if (!ref.copied() || ref.block == kNilRef) {
        continue;  // shared parts were not part of the crashed update
      }
      auto child = LoadPageUncached(ref.block);
      if (child.ok()) {
        frontier.push_back({ref.block, std::move(*child)});
      }
    }
  }
  // Finally clear the dead top lock itself.
  return ClearTopLock(locked_head, locked_page.top_lock);
}

Status FileServer::AcquireUpdateLocks(uint64_t file_id, bool is_super, Port owner,
                                      bool respect_soft_lock, BlockNo* current_head) {
  // Under a commit storm the current version moves between lookup and lock; ride it out —
  // each retry starts from the freshly observed current.
  for (int attempt = 0; attempt < 256; ++attempt) {
    ASSIGN_OR_RETURN(BlockNo cur, FindCurrentHead(file_id));
    ASSIGN_OR_RETURN(Port block_lock, AcquireBlockLock(cur));
    auto page = LoadPageUncached(cur);
    Status st = page.ok() ? OkStatus() : page.status();
    bool retry = false;
    if (st.ok()) {
      if (page->commit_ref != kNilRef) {
        retry = true;  // superseded between lookup and lock
      } else {
        const bool top_alive =
            page->top_lock != kNullPort && network()->IsPortAlive(page->top_lock);
        const bool inner_alive =
            page->inner_lock != kNullPort && network()->IsPortAlive(page->inner_lock);
        if (inner_alive) {
          // Both small files and super-files must wait on a live inner lock.
          st = LockedError("file inner-locked by a super-file update");
        } else if (is_super && top_alive && !options_.relaxed_superfile_locking) {
          st = LockedError("super-file already being updated (top lock set)");
        } else if (!is_super && respect_soft_lock && top_alive && page->top_lock != owner) {
          // §5.3 soft locking: the top lock on a small file is a hint that the file "is
          // likely to change soon"; a cooperating large update defers.
          st = LockedError("small file soft-locked by another update");
        } else {
          if (page->inner_lock != kNullPort && !inner_alive) {
            page->inner_lock = kNullPort;  // dead holder cleanup
          }
          page->top_lock = owner;
          st = pages_.OverwritePage(cur, *page);
        }
      }
    }
    ReleaseBlockLock(cur, block_lock);
    if (retry) {
      continue;
    }
    if (st.ok()) {
      *current_head = cur;
    }
    return st;
  }
  return ConflictError("could not pin the current version (commit storm)");
}

// ---------------------------------------------------------------------------
// Tree walking with copy-on-write (§5.1)
// ---------------------------------------------------------------------------

Result<BlockNo> FileServer::CopyChild(VersionInfo* info, WalkStep* parent, uint32_t index) {
  ASSIGN_OR_RETURN(PageRef ref, parent->page.RefAt(index));
  // The shared child may itself be a sub-file version page; resolve it to the sub-file's
  // *current* version first (small-file updates may have advanced it since our base
  // committed), then inner-lock it for the duration of this super-file update.
  ASSIGN_OR_RETURN(Page shared, LoadPage(ref.block));
  BlockNo shared_bno = ref.block;
  if (shared.IsVersionPage()) {
    int guard = 0;
    while (shared.commit_ref != kNilRef) {
      if (++guard > kMaxChainSteps) {
        return InternalError("sub-file version chain too long");
      }
      shared_bno = shared.commit_ref;
      ASSIGN_OR_RETURN(shared, LoadPageUncached(shared_bno));
    }
    RETURN_IF_ERROR(SetInnerLock(shared_bno, info->owner));
    info->locked_subfiles.push_back(shared_bno);
    info->is_super_update = true;
    // Sub-file flags live in the sub-file's own version pages; the flat path signature
    // cannot represent them, so this update's signature stops being usable.
    info->sig.valid = false;
    // Re-read under the lock to pick up a racing commit.
    ASSIGN_OR_RETURN(shared, LoadPageUncached(shared_bno));
  }

  // "When a page is first read, the C, R, W, S and M flags it contains for its child pages
  // must be initialised to zero."
  Page copy = shared;
  for (PageRef& child_ref : copy.refs) {
    child_ref.flags = 0;
  }
  copy.base_ref = shared_bno;
  if (copy.IsVersionPage()) {
    copy.commit_ref = kNilRef;
    copy.top_lock = kNullPort;
    copy.inner_lock = kNullPort;
    copy.prepare_txn = 0;
    copy.parent_ref = info->head;
    copy.root_flags = RefFlag::kCopied;
  }
  ASSIGN_OR_RETURN(BlockNo new_bno, pages_.WritePage(copy));
  if (copy.IsVersionPage()) {
    // The version capability embeds the head block; sign it now that the block is known.
    copy.version_cap = SignVersionCap(new_bno);
    RETURN_IF_ERROR(pages_.OverwritePage(new_bno, copy));
    info->copied_subfiles.emplace_back(shared_bno, new_bno);
  }
  info->allocated_blocks.push_back(new_bno);

  ref.block = new_bno;
  ref.flags = NormalizeFlags(ref.flags | RefFlag::kCopied);
  RETURN_IF_ERROR(parent->page.SetRef(index, ref));
  return new_bno;
}

Result<std::vector<FileServer::WalkStep>> FileServer::WalkPath(VersionInfo* info, BlockNo head,
                                                               const PagePath& path,
                                                               uint8_t final_access,
                                                               bool materialize_target) {
  std::vector<WalkStep> steps;
  {
    WalkStep root;
    root.bno = head;
    ASSIGN_OR_RETURN(root.page, LoadPageUncached(head));
    steps.push_back(std::move(root));
  }

  const bool mutating = info != nullptr;
  if (mutating) {
    Page& root = steps[0].page;
    const uint8_t before = root.root_flags;
    if (path.IsRoot()) {
      root.root_flags = NormalizeFlags(root.root_flags | final_access);
    } else {
      root.root_flags = NormalizeFlags(root.root_flags | RefFlag::kSearched);
    }
    steps[0].dirty = root.root_flags != before;
  }

  for (size_t depth = 0; depth < path.depth(); ++depth) {
    const uint32_t index = path.at(depth);
    WalkStep& parent = steps.back();
    const bool last = depth + 1 == path.depth();
    if (index >= parent.page.refs.size()) {
      return NotFoundError("path index beyond reference table");
    }
    PageRef ref = parent.page.refs[index];

    if (ref.block == kNilRef) {
      // A hole. Writes materialize a fresh page in it; reads fail.
      if (!mutating || !last || !materialize_target) {
        return NotFoundError("path crosses a hole");
      }
      Page fresh;
      fresh.kind = PageKind::kPlain;
      ASSIGN_OR_RETURN(BlockNo bno, pages_.WritePage(fresh));
      info->allocated_blocks.push_back(bno);
      ref.block = bno;
      ref.flags = RefFlag::kCopied;
      parent.page.refs[index] = ref;
      parent.dirty = true;
    } else if (mutating && !ref.copied()) {
      ASSIGN_OR_RETURN(BlockNo new_bno, CopyChild(info, &parent, index));
      ref = parent.page.refs[index];
      parent.dirty = true;
      (void)new_bno;
    }

    if (mutating) {
      uint8_t access = last ? final_access : RefFlag::kSearched;
      PageRef updated = parent.page.refs[index];
      updated.flags = NormalizeFlags(updated.flags | access | RefFlag::kCopied);
      if (!(updated == parent.page.refs[index])) {
        parent.page.refs[index] = updated;
        parent.dirty = true;
      }
      ref = updated;
    }

    WalkStep child;
    child.bno = ref.block;
    if (mutating) {
      // Copied children are private to this version; never serve them from the cache.
      ASSIGN_OR_RETURN(child.page, LoadPageUncached(ref.block));
    } else {
      ASSIGN_OR_RETURN(child.page, LoadPage(ref.block));
    }
    steps.push_back(std::move(child));
  }

  if (mutating) {
    RETURN_IF_ERROR(PersistSteps(&steps));
    RecordWalkSig(info, path, final_access);
  }
  return steps;
}

void FileServer::RecordWalkSig(VersionInfo* info, const PagePath& path, uint8_t final_access) {
  AccessSig& sig = info->sig;
  if (!sig.valid) {
    return;
  }
  // Mirror the flag ORs the walk just persisted, keyed by path prefix. The root reference
  // carries the file's root_flags; deeper prefixes carry the parent-table entry flags.
  const auto record = [&sig](std::string key, uint8_t flags) {
    uint8_t& slot = sig.refs[std::move(key)];
    slot = NormalizeFlags(slot | flags);
    if (slot & RefFlag::kModified) {
      sig.has_modified = true;
    }
  };
  record(std::string(), path.IsRoot() ? final_access : RefFlag::kSearched);
  for (size_t depth = 0; depth < path.depth(); ++depth) {
    const bool last = depth + 1 == path.depth();
    record(SigKey(path, depth + 1),
           static_cast<uint8_t>((last ? final_access : RefFlag::kSearched) | RefFlag::kCopied));
  }
  if (sig.refs.size() > kMaxSigEntries) {
    sig.valid = false;
    sig.refs.clear();
  }
}

Status FileServer::PersistSteps(std::vector<WalkStep>* steps) {
  // All dirty pages are private copies, so in-place overwrite is safe; uncommitted trees
  // need no crash-ordering ("uncommitted versions need not be salvaged in a server crash").
  for (size_t i = steps->size(); i-- > 0;) {
    WalkStep& step = (*steps)[i];
    if (step.dirty) {
      RETURN_IF_ERROR(pages_.OverwritePage(step.bno, step.page));
      step.dirty = false;
    }
  }
  return OkStatus();
}

}  // namespace afs
