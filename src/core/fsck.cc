#include "src/core/fsck.h"

#include <deque>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace afs {
namespace {

// Collect every block of every page reachable from `head`'s tree into `reachable`;
// report parse errors. Returns the set of page heads in the tree (for I4 sharing checks).
std::unordered_set<BlockNo> WalkTree(PageStore* pages, BlockNo head,
                                     std::unordered_set<BlockNo>* reachable,
                                     FsckReport* report, const std::string& what) {
  std::unordered_set<BlockNo> page_heads;
  std::deque<BlockNo> frontier{head};
  while (!frontier.empty()) {
    BlockNo page_head = frontier.front();
    frontier.pop_front();
    if (!page_heads.insert(page_head).second) {
      continue;
    }
    auto chain = pages->ChainBlocks(page_head);
    if (!chain.ok()) {
      report->clean = false;
      report->errors.push_back(what + ": unreadable page chain at block " +
                               std::to_string(page_head) + " (" +
                               chain.status().ToString() + ")");
      continue;
    }
    for (BlockNo bno : *chain) {
      reachable->insert(bno);
    }
    auto page = pages->ReadPage(page_head);
    if (!page.ok()) {
      report->clean = false;
      report->errors.push_back(what + ": unparsable page at block " +
                               std::to_string(page_head) + " (" +
                               page.status().ToString() + ")");
      continue;
    }
    ++report->pages_checked;
    for (const PageRef& ref : page->refs) {
      if (!FlagsValid(ref.flags)) {  // I3 (defence in depth; Deserialize validates too)
        report->clean = false;
        report->errors.push_back(what + ": invalid flags in page " +
                                 std::to_string(page_head));
      }
      if (ref.block != kNilRef) {
        frontier.push_back(ref.block);
      }
    }
  }
  return page_heads;
}

}  // namespace

std::string FsckReport::ToString() const {
  std::ostringstream os;
  os << (clean ? "CLEAN" : "CORRUPT") << ": " << files << " file(s), " << committed_versions
     << " committed version(s), " << pages_checked << " page(s), " << blocks_reachable
     << " block(s) reachable, " << blocks_garbage << " garbage";
  if (index_records > 0) {
    os << ", " << index_records << " index record(s) verified";
  }
  if (in_doubt > 0) {
    os << ", " << in_doubt << " in-doubt cross-shard tip(s)";
  }
  if (blocks_archived > 0) {
    os << ", " << blocks_archived << " archived (" << archived_verified << " verified, "
       << archived_corrupt << " corrupt)";
  }
  for (const std::string& error : errors) {
    os << "\n  ERROR: " << error;
  }
  for (const std::string& warning : warnings) {
    os << "\n  warning: " << warning;
  }
  return os.str();
}

FsckReport RunFsck(FileServer* server, const FsckOptions& options) {
  FsckReport report;
  PageStore* pages = server->page_store();
  std::unordered_set<BlockNo> reachable;

  // I1: the file table itself.
  auto table_blocks = server->FileTableBlocks();
  if (!table_blocks.ok()) {
    report.clean = false;
    report.errors.push_back("file table unreadable: " + table_blocks.status().ToString());
    return report;
  }
  for (BlockNo bno : *table_blocks) {
    reachable.insert(bno);
  }

  // I7: snapshot the version index up front, BEFORE the chain walks. A commit landing in
  // between then only makes the snapshot lag the disk — a state the check tolerates (a
  // suffix may stop short of the tip) — never the reverse.
  std::unordered_map<uint64_t, std::vector<VersionIndex::CommittedRec>> index_suffixes;
  if (options.verify_version_index) {
    std::vector<VersionIndex::FileSnapshot> snaps = server->version_index().Snapshot();
    for (VersionIndex::FileSnapshot& snap : snaps) {
      index_suffixes.emplace(snap.file_id, std::move(snap.suffix));
    }
  }

  for (const FileServer::FileEntry& entry : server->SnapshotFileTable()) {
    ++report.files;
    const std::string file_tag = "file " + std::to_string(entry.file_id);
    auto chain = server->CommittedChain(entry.file_id);
    if (!chain.ok()) {
      report.clean = false;
      report.errors.push_back(file_tag + ": version chain unreadable (" +
                              chain.status().ToString() + ")");
      continue;
    }
    // I2: double linking, nil terminators, acyclicity (CommittedChain already bounds the
    // walk; verify the back links explicitly).
    std::unordered_set<BlockNo> seen;
    for (size_t i = 0; i < chain->size(); ++i) {
      if (!seen.insert((*chain)[i]).second) {
        report.clean = false;
        report.errors.push_back(file_tag + ": version chain cycle");
        break;
      }
      auto page = pages->ReadPage((*chain)[i]);
      if (!page.ok()) {
        report.clean = false;
        report.errors.push_back(file_tag + ": unreadable version page");
        continue;
      }
      if (!page->IsVersionPage()) {
        report.clean = false;
        report.errors.push_back(file_tag + ": chain element is not a version page");
      }
      if (i == 0 && page->base_ref != kNilRef) {
        report.clean = false;
        report.errors.push_back(file_tag + ": oldest version's base reference is not nil");
      }
      if (i > 0 && page->base_ref != (*chain)[i - 1]) {
        report.clean = false;
        report.errors.push_back(file_tag + ": base reference does not point to predecessor");
      }
      if (i + 1 == chain->size() && page->commit_ref != kNilRef) {
        // I8: the only legal successor of the current version is an in-doubt cross-shard
        // tip — a prepared version the coordinator has not yet decided.
        auto tip = pages->ReadPage(page->commit_ref);
        if (!tip.ok() || tip->prepare_txn == 0) {
          report.clean = false;
          report.errors.push_back(file_tag +
                                  ": current version's commit reference is not nil");
        } else {
          ++report.in_doubt;
          std::string note = file_tag + ": in-doubt cross-shard tip at block " +
                             std::to_string(page->commit_ref) + " (txn " +
                             std::to_string(tip->prepare_txn) + ")";
          if (options.fail_on_in_doubt) {
            report.clean = false;
            report.errors.push_back(note);
          } else {
            report.warnings.push_back(note);
          }
          if (tip->base_ref != (*chain)[i]) {
            report.clean = false;
            report.errors.push_back(file_tag +
                                    ": in-doubt tip's base reference does not point to "
                                    "the current version");
          }
          if (tip->commit_ref != kNilRef) {
            report.clean = false;
            report.errors.push_back(file_tag + ": in-doubt tip has a successor");
          }
          // The staged tree is live until the decision; account its blocks as reachable.
          WalkTree(pages, page->commit_ref, &reachable, &report,
                   file_tag + " in-doubt tip");
        }
      }
      if (i + 1 < chain->size() && page->prepare_txn != 0) {
        report.clean = false;
        report.errors.push_back(file_tag +
                                ": interior chain element carries a prepare marker");
      }
      // I6: locks in the current version page must name live ports.
      if (i + 1 == chain->size()) {
        if (page->top_lock != kNullPort &&
            !server->network()->IsPortAlive(page->top_lock)) {
          report.warnings.push_back(file_tag + ": dead top lock awaiting waiter recovery");
        }
        if (page->inner_lock != kNullPort &&
            !server->network()->IsPortAlive(page->inner_lock)) {
          report.warnings.push_back(file_tag + ": dead inner lock awaiting waiter recovery");
        }
      }
    }
    // I7: the server's version index must agree with the on-disk chain it caches.
    if (auto idx_it = index_suffixes.find(entry.file_id); idx_it != index_suffixes.end()) {
      std::unordered_map<BlockNo, size_t> chain_pos;
      for (size_t i = 0; i < chain->size(); ++i) {
        chain_pos[(*chain)[i]] = i;
      }
      size_t prev_pos = 0;
      for (size_t i = 0; i < idx_it->second.size(); ++i) {
        const VersionIndex::CommittedRec& rec = idx_it->second[i];
        ++report.index_records;
        auto at = chain_pos.find(rec.head);
        if (at == chain_pos.end()) {
          report.clean = false;
          report.errors.push_back(file_tag + ": version index references head " +
                                  std::to_string(rec.head) +
                                  " that is not on the committed chain");
          break;
        }
        if (i > 0 && at->second != prev_pos + 1) {
          report.clean = false;
          report.errors.push_back(file_tag +
                                  ": version index suffix is not a contiguous run of the "
                                  "chain at head " +
                                  std::to_string(rec.head));
          break;
        }
        prev_pos = at->second;
        if (rec.root == nullptr) {
          continue;  // heads-only record (reshared or re-seeded after recovery)
        }
        auto disk = pages->ReadPage(rec.head);
        if (!disk.ok()) {
          continue;  // the I2 pass above already reported the unreadable page
        }
        // Only the fields the serialiser consumes from a snapshot are compared: kind,
        // reference table and data. Header fields that legitimately mutate after commit
        // (commit reference, locks, the base reference the GC rewrites) are excluded.
        bool match = disk->kind == rec.root->kind && disk->data == rec.root->data &&
                     disk->refs.size() == rec.root->refs.size();
        for (size_t r = 0; match && r < disk->refs.size(); ++r) {
          match = disk->refs[r].block == rec.root->refs[r].block &&
                  disk->refs[r].flags == rec.root->refs[r].flags;
        }
        if (!match) {
          report.clean = false;
          report.errors.push_back(file_tag + ": version index root snapshot for head " +
                                  std::to_string(rec.head) +
                                  " disagrees with the persisted version page");
          continue;
        }
        // A valid no-Modified signature records the flags this update set; every flag it
        // claims must be present in the persisted tables (disk may hold MORE — flags that
        // predate the update — but never less).
        if (rec.sig != nullptr && rec.sig->valid && !rec.sig->has_modified) {
          for (const auto& [key, sig_flags] : rec.sig->refs) {
            uint8_t disk_flags = 0;
            bool comparable = false;
            if (key.empty()) {
              disk_flags = disk->root_flags;
              comparable = true;
            } else if (key.size() == 4) {  // depth 1: resolvable from the root snapshot
              uint32_t slot = static_cast<uint32_t>(static_cast<uint8_t>(key[0])) |
                              static_cast<uint32_t>(static_cast<uint8_t>(key[1])) << 8 |
                              static_cast<uint32_t>(static_cast<uint8_t>(key[2])) << 16 |
                              static_cast<uint32_t>(static_cast<uint8_t>(key[3])) << 24;
              if (slot >= disk->refs.size()) {
                report.clean = false;
                report.errors.push_back(file_tag +
                                        ": version index signature names reference slot " +
                                        std::to_string(slot) +
                                        " beyond the persisted table of head " +
                                        std::to_string(rec.head));
                continue;
              }
              disk_flags = disk->refs[slot].flags;
              comparable = true;
            }
            if (comparable && (sig_flags & ~disk_flags) != 0) {
              report.clean = false;
              report.errors.push_back(
                  file_tag + ": version index signature claims flags the persisted page " +
                  std::to_string(rec.head) + " does not carry");
            }
          }
        }
      }
    }

    // I3/I4: walk every retained version tree.
    std::unordered_set<BlockNo> base_pages;
    for (size_t i = 0; i < chain->size(); ++i) {
      ++report.committed_versions;
      std::unordered_set<BlockNo> tree_pages = WalkTree(
          pages, (*chain)[i], &reachable, &report,
          file_tag + " version " + std::to_string(i));
      if (i > 0) {
        // I4: uncopied references must resolve to pages of the base's tree.
        auto page = pages->ReadPage((*chain)[i]);
        if (page.ok()) {
          for (const PageRef& ref : page->refs) {
            if (ref.block != kNilRef && !ref.copied() && base_pages.count(ref.block) == 0) {
              report.clean = false;
              report.errors.push_back(file_tag + ": shared (uncopied) reference to block " +
                                      std::to_string(ref.block) +
                                      " that is not part of the base version");
            }
          }
        }
      }
      base_pages = std::move(tree_pages);
    }
  }

  // Local uncommitted versions are legitimate roots too.
  for (BlockNo head : server->ListUncommitted()) {
    WalkTree(pages, head, &reachable, &report, "uncommitted version");
  }

  // I5: account for every owned block.
  auto owned = pages->blocks()->ListBlocks();
  if (!owned.ok()) {
    report.clean = false;
    report.errors.push_back("block store enumeration failed");
    return report;
  }
  report.blocks_reachable = reachable.size();
  for (BlockNo bno : *owned) {
    if (reachable.count(bno) == 0) {
      ++report.blocks_garbage;
    }
  }
  if (report.blocks_garbage > 0) {
    std::string note = std::to_string(report.blocks_garbage) +
                       " unreachable block(s) awaiting garbage collection";
    if (options.fail_on_garbage) {
      report.clean = false;
      report.errors.push_back(note);
    } else {
      report.warnings.push_back(note);
    }
  }
  return report;
}

}  // namespace afs
