// PageStore: atomic page I/O over fixed-size blocks (paper §5.1 and its footnote).
//
// "Pages are stored by the block server in such a way that they can be read and written as
// atomic actions. ... Arbitrarily long pages can be written atomically by writing them
// back-to-front as a linked list, whereby the head block is (over)written last, and the
// other blocks in the list are allocated from the pool of free disk blocks. After writing,
// the blocks making up the previous linked list can be freed."
//
// Chain block payload format: u32 next_block (kNilRef terminates) | u16 chunk_len | chunk.
// A page whose serialized form fits one block uses a single block with next == kNilRef.
//
// WritePage allocates a fresh chain (new page identity = new head block).
// OverwritePage keeps the head block number (used only for version pages, the one page kind
// that is written in place): new tail blocks are written first, then the head atomically
// switches the page to its new contents, then the old tail blocks are freed.
//
// Vectored I/O: multi-block chains are built with one AllocMulti + one WriteBatch instead
// of one AllocWrite per block (safe: a fresh chain is unreachable until its head is linked,
// and an overwrite's head block is still written last, alone, as the atomic commit point).
// ReadPages fetches many pages with one ReadMulti per chain *level* — the workhorse of
// tree scans, recovery scans and the commit merge pass.

#ifndef SRC_CORE_PAGE_STORE_H_
#define SRC_CORE_PAGE_STORE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "src/base/status.h"
#include "src/block/block_store.h"
#include "src/core/page.h"

namespace afs {

// One element of a vectored page read; status is per page so scans can tolerate holes.
struct PageReadResult {
  Status status;
  Page page;  // valid iff status.ok()
};

class PageStore {
 public:
  explicit PageStore(BlockStore* blocks);

  // Write a new page; returns the head block number.
  Result<BlockNo> WritePage(const Page& page);

  // Atomically replace the contents of the page whose head is `head`.
  Status OverwritePage(BlockNo head, const Page& page);

  // One deferred overwrite for OverwritePages. When the caller already walked the page's
  // chain (ReadPagesDetailed hands it out for free) it can pass the current tail blocks
  // in `old_tail` and set `old_tail_known`, sparing the store a serial re-walk of the
  // chain just to learn which blocks to free.
  struct PendingOverwrite {
    BlockNo head = kNilRef;
    Page page;
    std::vector<BlockNo> old_tail;
    bool old_tail_known = false;
  };

  // Overwrite many pages with vectored I/O: one AllocMulti for every new tail block, one
  // WriteBatch for all tails, then one WriteBatch for all heads, then one FreeMulti for
  // all replaced tails. Per-page atomicity is unchanged — every page's new tail is
  // durable before any head switches, and each head write is still a single block write.
  // Falls back to per-page OverwritePage when batching is disabled.
  Status OverwritePages(std::vector<PendingOverwrite> pending);

  Result<Page> ReadPage(BlockNo head);

  // Read many pages, batching the underlying block reads level-by-level across all chains.
  // result[i] corresponds to heads[i]; per-page failures do not fail the batch. If `chains`
  // is non-null it receives each page's full chain (head first) — the GC mark phase marks
  // chain blocks from the same reads it uses to decode the pages.
  Result<std::vector<PageReadResult>> ReadPagesDetailed(
      std::span<const BlockNo> heads, std::vector<std::vector<BlockNo>>* chains = nullptr);

  // Strict wrapper: every page must read cleanly.
  Result<std::vector<Page>> ReadPages(std::span<const BlockNo> heads);

  // Free the whole chain.
  Status FreePage(BlockNo head);

  // All blocks of the chain starting at `head` (head first). Used by the GC mark phase.
  Result<std::vector<BlockNo>> ChainBlocks(BlockNo head);

  // Block-level lock passthroughs (the commit critical section locks the version page's
  // head block).
  Status LockBlock(BlockNo head, Port owner) { return blocks_->Lock(head, owner); }
  Status UnlockBlock(BlockNo head, Port owner) { return blocks_->Unlock(head, owner); }

  BlockStore* blocks() const { return blocks_; }

  // --- GC epoch support -----------------------------------------------------
  // While an epoch is open, every block allocated through this store is recorded; the GC
  // opens an epoch before marking so that blocks born during a concurrent mark are never
  // swept (DESIGN.md §3).
  void BeginAllocationEpoch();
  std::unordered_set<BlockNo> EndAllocationEpoch();

 private:
  Result<BlockNo> AllocBlock(std::span<const uint8_t> payload);
  void RecordEpochAllocations(std::span<const BlockNo> bnos);
  // Allocate and fill a chain for `payload` whose head points at `next_after_head`...
  // actually: builds the TAIL chain for chunks [1, n) and returns the head's `next`
  // pointer (kNilRef for single-chunk pages). The head block itself is left to the caller
  // (WritePage allocates it; OverwritePage overwrites it in place last).
  Result<BlockNo> WriteTailChain(std::span<const uint8_t> payload, uint32_t chunk_cap,
                                 size_t num_chunks);

  BlockStore* blocks_;
  std::mutex epoch_mu_;
  bool epoch_open_ = false;
  std::unordered_set<BlockNo> epoch_allocations_;
};

}  // namespace afs

#endif  // SRC_CORE_PAGE_STORE_H_
