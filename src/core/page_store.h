// PageStore: atomic page I/O over fixed-size blocks (paper §5.1 and its footnote).
//
// "Pages are stored by the block server in such a way that they can be read and written as
// atomic actions. ... Arbitrarily long pages can be written atomically by writing them
// back-to-front as a linked list, whereby the head block is (over)written last, and the
// other blocks in the list are allocated from the pool of free disk blocks. After writing,
// the blocks making up the previous linked list can be freed."
//
// Chain block payload format: u32 next_block (kNilRef terminates) | u16 chunk_len | chunk.
// A page whose serialized form fits one block uses a single block with next == kNilRef.
//
// WritePage allocates a fresh chain (new page identity = new head block).
// OverwritePage keeps the head block number (used only for version pages, the one page kind
// that is written in place): new tail blocks are written first, then the head atomically
// switches the page to its new contents, then the old tail blocks are freed.

#ifndef SRC_CORE_PAGE_STORE_H_
#define SRC_CORE_PAGE_STORE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "src/base/status.h"
#include "src/block/block_store.h"
#include "src/core/page.h"

namespace afs {

class PageStore {
 public:
  explicit PageStore(BlockStore* blocks);

  // Write a new page; returns the head block number.
  Result<BlockNo> WritePage(const Page& page);

  // Atomically replace the contents of the page whose head is `head`.
  Status OverwritePage(BlockNo head, const Page& page);

  Result<Page> ReadPage(BlockNo head);

  // Free the whole chain.
  Status FreePage(BlockNo head);

  // All blocks of the chain starting at `head` (head first). Used by the GC mark phase.
  Result<std::vector<BlockNo>> ChainBlocks(BlockNo head);

  // Block-level lock passthroughs (the commit critical section locks the version page's
  // head block).
  Status LockBlock(BlockNo head, Port owner) { return blocks_->Lock(head, owner); }
  Status UnlockBlock(BlockNo head, Port owner) { return blocks_->Unlock(head, owner); }

  BlockStore* blocks() const { return blocks_; }

  // --- GC epoch support -----------------------------------------------------
  // While an epoch is open, every block allocated through this store is recorded; the GC
  // opens an epoch before marking so that blocks born during a concurrent mark are never
  // swept (DESIGN.md §3).
  void BeginAllocationEpoch();
  std::unordered_set<BlockNo> EndAllocationEpoch();

 private:
  Result<BlockNo> AllocBlock(std::span<const uint8_t> payload);

  BlockStore* blocks_;
  std::mutex epoch_mu_;
  bool epoch_open_ = false;
  std::unordered_set<BlockNo> epoch_allocations_;
};

}  // namespace afs

#endif  // SRC_CORE_PAGE_STORE_H_
