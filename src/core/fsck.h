// FsckReport / RunFsck: an offline consistency checker over the shared store — the
// executable form of the paper's structural invariants. Used by tests after fault
// injection, and available to operators as the `afs_fsck` example binary.
//
// Checked invariants:
//   I1  The file table parses, and every entry's oldest version page is readable.
//   I2  Version chains are doubly linked (Figure 4): each committed version's base
//       reference points at its predecessor; the oldest's base reference is nil; the
//       current version's commit reference is nil; chains are acyclic.
//   I3  Every page of every retained version tree parses, with valid flag combinations.
//   I4  C-flag consistency: a reference WITHOUT C in a committed version's tree points to
//       a page that is also reachable from that version's base (shared, not dangling).
//   I5  No block owned by the account is unaccounted for: every owned block is reachable
//       from the file table, a retained version tree, a reported uncommitted version, or
//       is explicitly tolerated garbage (awaiting GC).
//   I6  Locks in current version pages are either clear or held by live ports.
//   I7  The server's in-memory version index (version_index.h) agrees with the on-disk
//       chains: every indexed suffix is a contiguous run of its file's committed chain,
//       cached root snapshots match the persisted version pages (excluding the header
//       fields that mutate after commit: commit reference, locks, and the base reference
//       the GC rewrites on the oldest version), and access signatures without a Modified
//       flag match the persisted root-level flag table. The index may lag the disk (a
//       suffix may stop short of the current tip) — it must never contradict it.
//   I8  Cross-shard in-doubt tips (docs/SHARDING.md): a version carrying a prepare marker
//       may hang off the current version's commit reference, but it must back-reference
//       the current version, carry a non-zero transaction id, and have no successor of
//       its own. In-doubt tips are tolerated by default (the coordinator resolves them);
//       fail_on_in_doubt turns them into errors for post-recovery checks.

#ifndef SRC_CORE_FSCK_H_
#define SRC_CORE_FSCK_H_

#include <string>
#include <vector>

#include "src/core/file_server.h"

namespace afs {

struct FsckOptions {
  // Garbage (unreachable blocks) is normal between GC cycles; fail on it only when a
  // quiescent, freshly collected store is expected.
  bool fail_on_garbage = false;
  // I7: cross-check the server's in-memory version index against the on-disk chains.
  // On by default (cheap: the chains are already in hand); only meaningful on a quiescent
  // server — a commit in flight between the index snapshot and the chain walk can show up
  // as a spurious mismatch.
  bool verify_version_index = true;
  // I8: treat in-doubt cross-shard tips as errors. Off by default — an in-doubt tip is a
  // legitimate transient state awaiting the coordinator's decision; turn this on after
  // recovery has resolved every transaction, when none may remain.
  bool fail_on_in_doubt = false;
};

struct FsckReport {
  bool clean = true;
  std::vector<std::string> errors;    // invariant violations
  std::vector<std::string> warnings;  // tolerated anomalies (e.g. pending garbage)
  uint64_t files = 0;
  uint64_t committed_versions = 0;
  uint64_t pages_checked = 0;
  uint64_t blocks_reachable = 0;
  uint64_t blocks_garbage = 0;
  // I7: version-index records cross-checked against the disk (0 when the check is off or
  // the index is empty).
  uint64_t index_records = 0;
  // I8: chain tips found holding a cross-shard prepare marker (awaiting a decision).
  uint64_t in_doubt = 0;
  // Blocks resident on the archive tier, and how many of them verified / failed their
  // archive CRC. Filled by RunTieredFsck (src/tier) on tiered deployments; zero otherwise.
  uint64_t blocks_archived = 0;
  uint64_t archived_verified = 0;
  uint64_t archived_corrupt = 0;

  std::string ToString() const;
};

// Walks the store through `server` (which supplies the page store, file table, and the
// uncommitted-version roots of the local server). Read-only; safe on a quiescent system;
// on a live one it may report transient anomalies as warnings.
FsckReport RunFsck(FileServer* server, const FsckOptions& options = {});

}  // namespace afs

#endif  // SRC_CORE_FSCK_H_
