// In-memory version index (docs/PERF.md §5b): a per-FileServer cache over the committed
// version chains it has observed, so Kung–Robinson condition checks and the §5.2 one-pass
// merge stop re-walking page chains through PageStore RPCs.
//
// Two things are indexed per committed version:
//
//   * Access signature (AccessSig) — the exact map from page-tree path to the C/R/W/S/M
//     flags this version's update set on that path's reference. WalkPath records it as it
//     ORs the same flags into the on-disk reference tables, so (for versions committed by
//     this server, with no Modified flag anywhere) the signature IS the on-disk flag state
//     and two signatures can run the conflict rule of serialise.h entirely in memory.
//     Paths are exact packed-index keys, never hashes: a collision would merge two page
//     sets and could silently skip an adoption the merge needed.
//
//   * Root page snapshot — the version page as persisted at commit, so the serialiser's
//     committed-root read costs no RPC. Header fields that mutate after commit (commit
//     reference, locks) must never be trusted from the snapshot; the serialiser only uses
//     flags, references and data. Commits that ran the §5.1 reshare pass are cached
//     WITHOUT a root snapshot — reshare rewrites the reference table after commit and the
//     superseded copies become garbage, so a stale snapshot could point at freed blocks.
//
// The index is a CACHE, never an arbiter: the §5.2 test-and-set on the on-disk commit
// reference stays the single source of truth. Every entry records a contiguous suffix of
// one file's committed chain as THIS server saw it; a commit by another server shows up as
// a failed flip, which invalidates the file's entry and falls back to the chain walk. The
// index is rebuilt (heads only) when the server re-attaches to the store after a crash,
// and fsck verifies it against the on-disk chains (fsck.h, invariant I7).

#ifndef SRC_CORE_VERSION_INDEX_H_
#define SRC_CORE_VERSION_INDEX_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/page.h"
#include "src/core/path.h"

namespace afs {

// Exact page-set signature of one uncommitted update. `refs` maps a packed path (see
// SigKey; "" is the root) to the access flags the update set on that path's reference.
// `valid` drops to false when the update exceeds the entry cap or enters a super-file
// sub-tree — consumers must then fall back to the on-disk tree walk.
struct AccessSig {
  std::unordered_map<std::string, uint8_t> refs;
  bool valid = true;
  bool has_modified = false;  // any M anywhere: path alignment below it is lost
};

// Signatures above this many touched paths stop being tracked (valid = false); such an
// update re-walks trees like the baseline. Bounds combiner memory under huge updates.
inline constexpr size_t kMaxSigEntries = 4096;

// Packed key for the path prefix of length `depth` (0 = root = "").
std::string SigKey(const PagePath& path, size_t depth);

// Outcome of testing to-commit signature `b` against committed signature `c` in place of
// the serialiser's tree walk.
enum class SigVerdict {
  kConflict,   // the walk would find a serialisability conflict: abort without I/O
  kNoopMerge,  // serialisable AND the merge would adopt nothing: b's tree is already the
               // correct merged tree, so the successor hop costs zero page I/O
  kUnknown,    // signatures can't decide (missing, invalid, M present, or a real merge
               // is needed) — run Serialiser::TestAndMerge
};
SigVerdict TestSigs(const AccessSig& b, const AccessSig& c);

class VersionIndex {
 public:
  struct CommittedRec {
    BlockNo head = kNilRef;
    // Signature of the update that produced this version; null for versions committed by
    // another server or re-seeded from disk after a crash.
    std::shared_ptr<const AccessSig> sig;
    // Root page as persisted at commit; null when not snapshotted (reshared, recovered).
    std::shared_ptr<const Page> root;
  };

  // Record a commit: `base` is the on-disk predecessor the flip succeeded. If `base` is
  // not the newest indexed head of the file, the suffix is no longer contiguous (another
  // server committed in between) and is restarted at this record.
  void OnCommit(uint64_t file_id, BlockNo base, CommittedRec rec);

  // Re-seed a file's suffix from an on-disk chain walk (oldest first); heads only.
  void SeedChain(uint64_t file_id, const std::vector<BlockNo>& chain);

  // Newest indexed head of the file — the current version, as far as this index knows.
  std::optional<BlockNo> CurrentHint(uint64_t file_id) const;

  // The committed successors strictly after `base`, oldest first. True = `base` is in the
  // suffix (the records are exactly the on-disk chain from `base` to the indexed tip).
  // False = index miss; the caller walks commit references instead.
  bool SuccessorsAfter(uint64_t file_id, BlockNo base,
                       std::vector<CommittedRec>* out) const;

  // Drop records whose pages the GC pruned / whose file is gone / everything (restart).
  void Forget(uint64_t file_id, const std::vector<BlockNo>& pruned_heads);
  void ForgetFile(uint64_t file_id);
  void Clear();

  // fsck view: every indexed file's suffix, oldest first.
  struct FileSnapshot {
    uint64_t file_id = 0;
    std::vector<CommittedRec> suffix;
  };
  std::vector<FileSnapshot> Snapshot() const;

 private:
  // Suffix window per file; old records beyond this are trimmed (they are only useful as
  // validation bases, and a base that old has long been superseded).
  static constexpr size_t kMaxRecordsPerFile = 64;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::deque<CommittedRec>> files_;
};

}  // namespace afs

#endif  // SRC_CORE_VERSION_INDEX_H_
