// Client/server page cache (paper §5.4).
//
// "For each file, a server or a private client can make a cache entry, consisting of pages
// of the most recent version it has had locally. When a request for a new version of the
// file is made, a serialisability test is made between the cache entry and the current
// version in order to find out which blocks of the cache are still valid." The test itself
// runs on a file server (kValidateCache); this class is the client-side store the test
// prunes. No unsolicited messages are ever needed: the cache is checked at the *start* of
// an update, pull-style.

#ifndef SRC_CORE_CACHE_H_
#define SRC_CORE_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "src/core/flags.h"
#include "src/core/path.h"
#include "src/obs/metrics.h"

namespace afs {

class PageCache {
 public:
  struct Entry {
    BlockNo version_head = kNilRef;           // version the pages were read from
    std::map<PagePath, std::vector<uint8_t>> pages;
  };

  // Store/refresh a page under the file's cache entry. If the entry is for an older
  // version it is rebased: pages are kept (they will be validated on next use) and the
  // version stamp advances.
  void Put(uint64_t file_id, BlockNo version_head, const PagePath& path,
           std::vector<uint8_t> data);

  std::optional<std::vector<uint8_t>> Get(uint64_t file_id, const PagePath& path) const;

  // Version the entry was last validated against; kNilRef if no entry.
  BlockNo VersionOf(uint64_t file_id) const;

  // All cached paths for the file (input to kValidateCache).
  std::vector<PagePath> PathsOf(uint64_t file_id) const;

  // Apply a validation result: discard `invalid`, stamp the entry with `new_head`.
  void ApplyValidation(uint64_t file_id, BlockNo new_head,
                       const std::vector<PagePath>& invalid);

  void Drop(uint64_t file_id);
  void Clear();

  uint64_t hits() const { return hits_->value(); }
  uint64_t misses() const { return misses_->value(); }

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, Entry> entries_;
  obs::MetricRegistry metrics_{"client.page_cache"};
  obs::Counter* hits_ = metrics_.counter("cache.hit");
  obs::Counter* misses_ = metrics_.counter("cache.miss");
};

}  // namespace afs

#endif  // SRC_CORE_CACHE_H_
