// FileServer: the Amoeba File Service (paper §5) — the system's primary contribution.
//
// One FileServer is one server process of the service group. Several FileServers may share
// the same block storage (and capability secret); each manages the versions it created
// ("M.b, V.b's managing server"), while files and committed versions are global state on
// the shared store. A crashed file server loses only its uncommitted versions; clients
// redo those updates through another server (§5.4.1).
//
// On-disk structures:
//   * File table — one page (PageKind::kPlain with a magic tag) listing, per file:
//     file id, oldest retained version head, and the is-super-file bit. "Access paths to
//     committed versions go through the replicated file table"; the current version is
//     found by following commit references from the oldest retained version, maintaining
//     the Figure 4 invariant that the current version's commit reference is nil.
//   * Version pages and page trees as described in page.h.
//
// Concurrency control, exactly as §5.2/§5.3:
//   * Small files: optimistic. Commit's only critical section is test-and-set of the base
//     version's commit reference (implemented by lock/read/modify/write/unlock on the
//     version page's head block). On a set commit reference the server serialises the
//     update against the committed successor and merges the trees in one pass, repeating
//     down the chain until it wins or a real conflict is found.
//   * Super-files: top/inner locks made of ports. A waiter that finds a lock whose port has
//     died performs the §5.3 recovery itself: clear the lock if the commit reference is
//     unset, finish the crashed commit if it is set.

#ifndef SRC_CORE_FILE_SERVER_H_
#define SRC_CORE_FILE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/capability.h"
#include "src/base/rng.h"
#include "src/block/block_store.h"
#include "src/core/page.h"
#include "src/core/page_store.h"
#include "src/core/path.h"
#include "src/core/protocol.h"
#include "src/core/version_index.h"
#include "src/rpc/service.h"

namespace afs {

struct FileServerOptions {
  // Shared secret of the file service group; all servers of one cluster must agree.
  uint64_t group_secret = 0x5afe5ec7e7ull;
  // Reshare pages that were copied but never written or modified back to the base version
  // at commit time (§5.1's GC rule, applied eagerly). Ablation A2.
  bool reshare_on_commit = true;
  // Cache committed (immutable) pages in memory so serialisability and cache-validation
  // tests run "without having to read the page tree" (§5.4's flag-bit cache). Ablation A3.
  bool cache_committed_pages = true;
  size_t committed_cache_capacity = 4096;
  // §5.3 relaxation: allow creating a version of a super-file even when its top lock is
  // set; "the optimistic concurrency control which still lurks underneath this locking
  // mechanism will see to it that no harm is done".
  bool relaxed_superfile_locking = false;
  // Sharded deployments (src/shard): this server is shard `shard_id` of `num_shards`.
  // CreateFile then mints file ids congruent to shard_id mod num_shards, so any router can
  // place a capability without a lookup (docs/SHARDING.md). num_shards = 1 (the default)
  // is the unsharded service, bit-for-bit as before.
  uint32_t shard_id = 0;
  uint32_t num_shards = 1;
};

class FileServer : public Service {
 public:
  FileServer(Network* network, std::string name, BlockStore* blocks,
             FileServerOptions options = {});
  ~FileServer() override;

  // Attach to the shared store: find the file table (by scanning the account's blocks, the
  // §4 recovery operation) or create a fresh one. Must be called once after Start().
  Status AttachStore();

  // ----- Direct (in-process) API -------------------------------------------
  // The RPC handlers call straight into these; tests, benches and co-located layers may
  // use them directly to factor out transport cost. All methods are thread-safe.

  Result<Capability> CreateFile();
  Status DeleteFile(const Capability& file);
  Result<Capability> GetCurrentVersion(const Capability& file);
  Result<Capability> CreateVersion(const Capability& file, Port owner_port,
                                   bool respect_soft_lock);

  struct ReadResult {
    uint32_t nrefs = 0;
    std::vector<uint8_t> data;
  };
  Result<ReadResult> ReadPage(const Capability& version, const PagePath& path, bool want_refs);
  Status WritePage(const Capability& version, const PagePath& path,
                   std::span<const uint8_t> data);
  Status InsertRef(const Capability& version, const PagePath& parent, uint32_t index);
  Status RemoveRef(const Capability& version, const PagePath& parent, uint32_t index);
  Result<std::vector<uint8_t>> ReadRefs(const Capability& version, const PagePath& path);
  Status MoveSubtree(const Capability& version, const PagePath& from, const PagePath& to_parent,
                     uint32_t index);
  // §5's "split pages into two": the page at `path` keeps data[0, data_offset) and
  // refs[0, ref_index); a new sibling inserted right after it in the parent receives the
  // rest. Sets W and M on the split page, M on the parent.
  Status SplitPage(const Capability& version, const PagePath& path, uint32_t data_offset,
                   uint32_t ref_index);
  // On success returns the committed version's head. On kConflict the version is removed
  // ("V.b is removed, and its owner notified. The update can be retried on another
  // version.").
  Result<BlockNo> Commit(const Capability& version);
  Status Abort(const Capability& version);
  Result<Capability> CreateSubFile(const Capability& version, const PagePath& parent,
                                   uint32_t index);

  struct CacheCheck {
    Capability current_version;
    std::vector<PagePath> invalid;  // cached paths that must be discarded
  };
  Result<CacheCheck> ValidateCache(const Capability& file, BlockNo cached_head,
                                   const std::vector<PagePath>& cached_paths);

  struct FileStatInfo {
    BlockNo current_head = kNilRef;
    uint32_t committed_versions = 0;
    bool is_super = false;
  };
  Result<FileStatInfo> FileStat(const Capability& file);

  std::vector<BlockNo> ListUncommitted() const;

  // ----- Cross-shard two-phase commit (participant side; docs/SHARDING.md) ---
  // Phase 1: validate `version` exactly like Commit() would, link it at the end of its
  // chain with the in-doubt marker (prepare_txn = txn_id) persisted BEFORE the base's
  // commit reference flips, and hold it there until Decide. The staged version is invisible
  // to readers (FindCurrentHead stops short of in-doubt tips) and conflicts any concurrent
  // §5.2 commit of the same file. Idempotent per txn_id. kConflict removes the version.
  Result<BlockNo> Prepare(const Capability& version, uint64_t txn_id);
  // Phase 2: apply the coordinator's decision. Commit clears the marker and publishes the
  // staged version as current; abort unlinks it from the chain and frees its private
  // pages. Idempotent — deciding an unknown txn_id succeeds without effect.
  Status Decide(uint64_t txn_id, bool commit);
  struct InDoubtEntry {
    BlockNo head = kNilRef;
    uint64_t txn_id = 0;
  };
  // Prepared-but-undecided versions held by this server (recovery + fsck support).
  std::vector<InDoubtEntry> ListInDoubt() const;

  // ----- Tier admin ----------------------------------------------------------
  // Hooks into an attached storage tier (src/tier), serving the kMigrateNow / kScrubNow /
  // kTierStat admin ops. std::function indirection keeps the dependency arrow pointing
  // tier -> core: the deployment wires the hooks up at setup, before serving; a server
  // with no tier answers migrate/scrub with kUnavailable and stat with enabled=false.
  struct TierAdminHooks {
    std::function<Result<uint64_t>()> migrate;          // one migration cycle
    std::function<Result<TierScrubSummary>()> scrub;    // one scrub pass
    std::function<TierStatInfo()> stat;
  };
  void SetTierAdmin(TierAdminHooks hooks) { tier_admin_ = std::move(hooks); }

  // ----- Shard admin ---------------------------------------------------------
  // Coordinator hooks for the cross-shard two-phase commit (src/shard), serving the
  // kCrossCommit / kResolveTxn ops. Same dependency discipline as the tier hooks: the
  // deployment wires a ShardCoordinator in at setup; a server with no coordinator answers
  // kUnavailable.
  struct ShardAdminHooks {
    // Commit an n-participant transaction atomically; returns heads in participant order.
    std::function<Result<std::vector<BlockNo>>(
        const std::vector<std::pair<uint32_t, Capability>>& participants)>
        cross_commit;
    // Decision-log lookup (presumed abort): true = committed, false = aborted.
    std::function<Result<bool>(uint64_t txn_id)> resolve;
  };
  void SetShardAdmin(ShardAdminHooks hooks) { shard_admin_ = std::move(hooks); }

  // ----- GC / test support ---------------------------------------------------

  // GC fence: returns once every mutating operation that was in flight at the time of
  // the call has finished. The collector calls this after opening its allocation epoch
  // and before snapshotting the root set, so a block allocated before the epoch by an
  // op that had not yet linked it anywhere is published (or freed) before the roots are
  // read. Mutating ops hold the shared side of `ops_gate_`; this drains them by taking
  // the exclusive side once.
  void QuiesceOps() const { std::unique_lock<std::shared_mutex> gate(ops_gate_); }

  PageStore* page_store() { return &pages_; }
  // Snapshot of the file table: (file id -> oldest retained head, is_super).
  struct FileEntry {
    uint64_t file_id = 0;
    BlockNo oldest_head = kNilRef;
    bool is_super = false;
  };
  std::vector<FileEntry> SnapshotFileTable();
  // Rewrite a file's oldest-retained pointer (GC pruning).
  Status SetOldestHead(uint64_t file_id, BlockNo new_oldest);
  // Walk the committed chain of a file from its oldest retained version (oldest first).
  Result<std::vector<BlockNo>> CommittedChain(uint64_t file_id);
  // Blocks of the on-disk file table page chain (GC must not sweep them).
  Result<std::vector<BlockNo>> FileTableBlocks();
  const FileServerOptions& options() const { return options_; }
  uint64_t serialise_tests_run() const { return serialise_tests_ctr_->value(); }
  uint64_t commits_fast_path() const { return commit_fast_path_->value(); }
  uint64_t commits_sig_fast_path() const { return commit_sig_fast_->value(); }
  uint64_t index_hits() const { return index_hits_->value(); }
  // Total transport calls sampled into the commit.rpcs histogram (sum over all Commit()
  // calls, every outcome) — the measured commit-path RPC cost.
  uint64_t commit_rpcs_total() const { return commit_rpcs_->sum_ns(); }

  // The in-memory version index (a cache over committed chains; version_index.h). fsck
  // verifies it against the on-disk chains (invariant I7).
  const VersionIndex& version_index() const { return index_; }
  // GC pruning hook: drop index records for pruned versions of `file_id`.
  void OnVersionsPruned(uint64_t file_id, const std::vector<BlockNo>& pruned_heads);

 protected:
  Result<Message> Handle(const Message& request) override;
  void OnRestart() override;

 private:
  struct VersionInfo {
    uint64_t file_id = 0;
    BlockNo head = kNilRef;
    BlockNo base_head = kNilRef;
    Port owner = kNullPort;
    bool is_super_update = false;
    // Serialises operations on one version; ops on different versions run in parallel.
    std::shared_ptr<std::mutex> op_mu = std::make_shared<std::mutex>();
    // Every page-chain head this version allocated. Abort frees exactly these — merged
    // trees may share committed pages of other versions, which must never be freed.
    std::vector<BlockNo> allocated_blocks;
    // Sub-file version pages copied during this super-file update: old head -> new head.
    std::vector<std::pair<BlockNo, BlockNo>> copied_subfiles;
    // Sub-file version pages visited and inner-locked but not (yet) copied.
    std::vector<BlockNo> locked_subfiles;
    // Files created inside this (uncommitted) version; removed again on abort.
    std::vector<uint64_t> created_subfiles;
    // Exact page-set signature of this update, maintained by WalkPath alongside the
    // on-disk flag bookkeeping (version_index.h). Drops to valid=false on super-file
    // sub-tree entry or entry-cap overflow; the commit path then walks trees as before.
    AccessSig sig;
  };

  // Guard for operating on one uncommitted version: holds the per-version mutex and the
  // (node-stable) VersionInfo pointer. A null info means the version is not managed here
  // (a committed snapshot, or lost in a crash).
  struct VersionOpGuard {
    // Keeps the mutex alive even after the caller erases the VersionInfo that owns it
    // (Commit/Abort erase while still holding the lock). Declared before `lock` so the
    // lock is released before the mutex can be destroyed.
    std::shared_ptr<std::mutex> mu;
    std::unique_lock<std::mutex> lock;
    VersionInfo* info = nullptr;
  };
  Result<VersionOpGuard> AcquireVersionOp(BlockNo head);

  // --- capability helpers ---
  Capability SignFileCap(uint64_t file_id);
  Capability SignVersionCap(BlockNo head);
  Status VerifyFileCap(const Capability& cap, uint32_t rights, uint64_t* file_id);
  Status VerifyVersionCap(const Capability& cap, uint32_t rights, BlockNo* head);

  // --- file table ---
  // Mint a fresh file id (requires table_mu_). Sharded servers stripe the id space:
  // the result is always congruent to shard_id mod num_shards, and never 0.
  uint64_t MintFileIdLocked();
  // Re-seed the version index from the on-disk chains (heads only; signatures and root
  // snapshots cannot be recovered). Called after (re-)attaching to the store.
  void RebuildVersionIndex();
  // Repopulate prepared_ from on-disk in-doubt markers (crash recovery: a version staged
  // by Prepare whose decision never arrived). Called from AttachStore.
  void RecoverPreparedTips();
  Status LoadFileTable();
  Status PersistFileTableLocked();  // requires table_mu_
  Result<FileEntry> LookupFileLocked(uint64_t file_id);

  // --- version chain ---
  // Follow commit references from `from` to the chain's end; returns the current head.
  Result<BlockNo> FindCurrentHead(uint64_t file_id);
  Result<Page> LoadPage(BlockNo head);             // with committed-page cache
  Result<Page> LoadPageUncached(BlockNo head);
  // Vectored LoadPage: serves what it can from the committed-page cache and fetches the
  // misses with one batched PageStore read. result[i] corresponds to heads[i].
  Result<std::vector<Page>> LoadPagesCommitted(std::span<const BlockNo> heads);
  void CacheCommittedPage(BlockNo head, const Page& page);
  void UncachePage(BlockNo head);

  // --- tree operations ---
  struct WalkStep {
    BlockNo bno = kNilRef;
    Page page;
    bool dirty = false;  // needs persisting (flags or refs changed during the walk)
  };
  // Persist the dirty steps of a walk (all private copies; in-place overwrites).
  Status PersistSteps(std::vector<WalkStep>* steps);
  // Descend `path` in version `head`, copying shared pages on the way (COW + flag
  // bookkeeping). `final_access` is the flag(s) to set on the target's reference
  // (kRead/kWritten/kSearched/kModified); `materialize_target` controls whether a hole at
  // the final position is filled with a fresh page (writes) or reported (reads).
  // Returns the chain of pages from root to target; all returned pages are already
  // persisted with updated flags. `info` may be null for committed (read-only) walks, in
  // which case no mutation is permitted (kReadOnly if the walk would need to copy).
  Result<std::vector<WalkStep>> WalkPath(VersionInfo* info, BlockNo head, const PagePath& path,
                                         uint8_t final_access, bool materialize_target);
  // Mirror the flag updates a mutating walk made into the version's access signature.
  void RecordWalkSig(VersionInfo* info, const PagePath& path, uint8_t final_access);

  // Copy-on-first-access of the child at refs[index] of `parent` (whose own head is
  // parent_bno). Handles sub-file version pages: sets the inner lock on the shared current
  // sub-version page first (§5.3) and records the copy in `info`.
  Result<BlockNo> CopyChild(VersionInfo* info, WalkStep* parent, uint32_t index);

  // --- block-level critical sections ---
  // Mint a per-operation lock identity (a transaction port parent-linked to this server's
  // port, so it dies with the server) and take the block lock, spinning briefly on
  // contention. Every version-page read-modify-write goes through this.
  Result<Port> AcquireBlockLock(BlockNo bno);
  void ReleaseBlockLock(BlockNo bno, Port owner);

  // --- locks (§5.3) ---
  // Test the locking rules on the current version page and set the top lock.
  // May perform dead-holder recovery.
  Status AcquireUpdateLocks(uint64_t file_id, bool is_super, Port owner,
                            bool respect_soft_lock, BlockNo* current_head);
  Status SetInnerLock(BlockNo sub_head, Port owner);
  Status ClearInnerLock(BlockNo sub_head, Port owner);
  Status ClearTopLock(BlockNo head, Port owner);
  // §5.3 waiter recovery: the holder of `locked_head`'s top lock died. If its commit
  // reference is set, finish the crashed super-file commit; otherwise just clear the lock.
  Status RecoverDeadTopLock(BlockNo locked_head, const Page& locked_page);

  // --- commit (§5.2) ---
  // One test-and-set attempt on base_head's commit reference. Returns:
  //   ok(true)   — commit reference set, V.b is now current.
  //   ok(false)  — base already superseded; *successor receives the next version.
  Result<bool> TestAndSetCommitRef(BlockNo base_head, BlockNo new_head, BlockNo* successor);

  // --- group commit (docs/PERF.md §5a) ---
  // One staged Commit() request. The requester loads the root and parks here; the group
  // leader validates, links, persists and flips on its behalf, then posts the result.
  struct PendingCommit {
    VersionInfo* info = nullptr;
    Page root;              // version page; leader rewrites base/commit references
    bool done = false;      // written only under commit_mu_; the follower's wake condition
    bool fast_path = true;  // no real merge ran: tree is this update's own, reshare is safe
    // Validation could not run to the chain end against a trusted tip (successor walk hit
    // its step cap, or the index's tip hint is not a successor of this base): skip the
    // group flip and run the classic serial loop, which walks one successor at a time.
    bool defer_serial = false;
    // Last committed head this request's phase-1 validation covered (its base when the
    // chain had no successors). The flip-loss fallback re-bases onto this, never onto a
    // tip that could sit BEHIND the request's own base.
    BlockNo validated_end = kNilRef;
    Status validation = OkStatus();  // first validation failure (conflict or I/O)
    Result<BlockNo> result = InternalError("commit not processed");
    obs::Counter* outcome = nullptr;  // outcome counter for the requester's CommitScope
    uint64_t group_size = 1;
  };
  // The flip-free §5.2 loop body: validate `req` against ONE committed successor c and
  // merge on success (signature fast path first — version_index.h — then the serialiser
  // walk). kConflict means not serialisable; the caller aborts the version.
  Status ValidateAgainstSuccessor(PendingCommit* req, BlockNo c_head, const AccessSig* c_sig,
                                  const Page* c_root);
  // Classic serial commit (the per-version §5.2 flip/validate/merge loop). Also the
  // fallback when a group flip loses to a foreign committer. Requires the version op lock.
  Result<BlockNo> CommitSerialLocked(VersionInfo* info, Page root, obs::Counter** outcome_ctr);
  // Stage into the commit combiner; leader election + batch processing.
  Result<BlockNo> CommitGrouped(VersionInfo* info, Page root, obs::Counter** outcome_ctr);
  void ProcessCommitBatch(std::vector<PendingCommit*>* batch);
  void ProcessFileCommitGroup(uint64_t file_id, std::vector<PendingCommit*>* group);
  // Record a committed version in the index (+ current-version hint). `reshared` commits
  // cache no root snapshot (the reshare pass rewrites it after commit).
  void IndexCommitted(VersionInfo* info, BlockNo base, const Page& root, bool reshared);
  // After a super-file version committed: descend, commit the copied sub-files ("these
  // commits always succeed"), clear remaining inner locks.
  Status FinishSuperCommit(VersionInfo* info);
  // §5.1 GC rule applied eagerly: reshare copied-but-unchanged subtrees with the base.
  Status ReshareCleanPages(BlockNo head);
  // Post-order reshare helper; returns whether `page` changed, and reports via
  // `subtree_clean` whether the page's subtree contains no writes or modifications.
  Result<bool> ReshareSubtree(Page* page, bool* subtree_clean);
  // Abort with the version's op mutex already held.
  Status AbortLocked(VersionInfo* info);
  // Free the private (copied, unshared) pages of an uncommitted version.
  Status FreePrivatePages(BlockNo head);

  // --- cache validation (§5.4) ---
  // True if committed version `head`'s update wrote the page at `path` or restructured one
  // of its ancestors.
  Result<bool> VersionWrotePath(BlockNo head, const PagePath& path);
  Result<bool> VersionWrotePathFromRoot(const Page& root, const PagePath& path);

  // --- RPC plumbing ---
  Result<Message> Dispatch(const Message& request);

  BlockStore* blocks_;
  PageStore pages_;
  FileServerOptions options_;
  CapabilitySigner file_signer_;
  CapabilitySigner version_signer_;
  Rng rng_;

  mutable std::mutex table_mu_;
  BlockNo table_head_ = kNilRef;
  std::map<uint64_t, FileEntry> files_;
  std::unordered_map<uint64_t, BlockNo> current_cache_;  // file id -> last known current

  mutable std::mutex versions_mu_;
  std::unordered_map<BlockNo, VersionInfo> uncommitted_;

  // Prepared (in-doubt) cross-shard versions, by transaction id. An entry's version has
  // left uncommitted_ — ordinary ops on it fail "not managed" — but its head is still
  // reported by ListUncommitted() so the GC root set and pruning pins protect it until
  // the coordinator's decision arrives. Rebuilt from the on-disk prepare_txn markers on
  // AttachStore (allocated_blocks is then unknown; abort falls back to FreePrivatePages).
  struct PreparedRec {
    uint64_t file_id = 0;
    BlockNo head = kNilRef;
    BlockNo base_head = kNilRef;
    std::vector<BlockNo> allocated_blocks;
    bool know_allocations = false;  // false after restart: free by tree walk instead
    // Carried from the VersionInfo so a decide-commit can index the version with its
    // signature. Recovered entries set valid = false (the signature is unrecoverable).
    AccessSig sig;
  };
  std::unordered_map<uint64_t, PreparedRec> prepared_;  // guarded by versions_mu_

  // Commit combiner (group commit). Commit() stages a PendingCommit here; the first
  // stager becomes leader and drains the queue as one batch, followers park on the
  // condition variable until their result is posted (or they are elected leader for the
  // next batch). Same leader/followers shape as the journal's fsync group commit.
  std::mutex commit_mu_;
  std::condition_variable commit_cv_;
  std::vector<PendingCommit*> commit_queue_;
  bool commit_leader_active_ = false;

  // In-memory index over committed chains (cache only; see version_index.h).
  VersionIndex index_;

  // Held (shared) for the duration of every mutating op; see QuiesceOps(). Acquired
  // before any other lock and never while one is held.
  mutable std::shared_mutex ops_gate_;

  // Tier admin hooks; installed once at deployment setup, before serving (not guarded).
  TierAdminHooks tier_admin_;
  // Shard coordinator hooks; same installation discipline.
  ShardAdminHooks shard_admin_;

  mutable std::mutex cache_mu_;
  std::unordered_map<BlockNo, Page> committed_cache_;
  std::vector<BlockNo> cache_lru_;  // simple clock-ish eviction

  // Commit-outcome and cache metrics (Service's registry). Resolved once at construction;
  // the commit hot path touches them with relaxed atomic increments only — no mutex.
  obs::Counter* commit_fast_path_;
  obs::Counter* commit_validated_;   // won after >= 1 serialisability test
  obs::Counter* commit_merged_;      // successful TestAndMerge passes
  obs::Counter* commit_conflicts_;   // aborted: not serialisable (or starved)
  obs::Counter* serialise_tests_ctr_;
  obs::Counter* commit_sig_fast_;    // successor hops decided by signatures alone
  obs::Counter* index_hits_;         // commit.index_hit: chain/root served from the index
  obs::Counter* index_misses_;       // commit.index_miss: fell back to the chain walk
  obs::Counter* group_fallbacks_;    // group flip lost to a foreign committer
  obs::Histogram* commit_group_size_;
  obs::Histogram* commit_rpcs_;      // transport calls issued by one Commit() call
  obs::Histogram* commit_latency_ns_;
  obs::Counter* cache_hits_;
  obs::Counter* cache_misses_;
  obs::Counter* cache_evictions_;
  // Cross-shard participant counters (shard.* namespace; docs/OBSERVABILITY.md).
  obs::Counter* shard_prepares_;          // shard.prepare: phase-1 validations staged
  obs::Counter* shard_prepare_conflicts_; // shard.prepare_conflict: phase-1 aborts
  obs::Counter* shard_decide_commits_;    // shard.decide_commit
  obs::Counter* shard_decide_aborts_;     // shard.decide_abort
  // The global SLO tracker's "commit" class: commit latency scored against declared
  // p50/p99/p999 targets (BENCH_slo.json). Resolved once, recorded with relaxed adds.
  obs::Histogram* slo_commit_;

  friend class Serialiser;
};

}  // namespace afs

#endif  // SRC_CORE_FILE_SERVER_H_
