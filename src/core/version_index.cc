#include "src/core/version_index.h"

#include <algorithm>

#include "src/core/serialise.h"

namespace afs {

std::string SigKey(const PagePath& path, size_t depth) {
  std::string key;
  key.reserve(depth * 4);
  for (size_t d = 0; d < depth; ++d) {
    uint32_t index = path.at(d);
    key.push_back(static_cast<char>(index & 0xff));
    key.push_back(static_cast<char>((index >> 8) & 0xff));
    key.push_back(static_cast<char>((index >> 16) & 0xff));
    key.push_back(static_cast<char>((index >> 24) & 0xff));
  }
  return key;
}

SigVerdict TestSigs(const AccessSig& b, const AccessSig& c) {
  if (!b.valid || !c.valid) {
    return SigVerdict::kUnknown;
  }
  // Any Modified flag restructures a reference table, so path keys below it no longer
  // align between the two trees; only the walk (which recurses through the actual tables)
  // can compare them.
  if (b.has_modified || c.has_modified) {
    return SigVerdict::kUnknown;
  }
  // Conflict scan over the smaller signature: a path present in both sides corresponds
  // exactly to a both-copied reference pair in the aligned tree walk (no M anywhere, so
  // the tables kept the base version's shape), and the flags here are the flags the walk
  // would read from disk. A path present on one side only has zero flags on the other,
  // which never conflicts.
  const AccessSig& outer = b.refs.size() <= c.refs.size() ? b : c;
  const AccessSig& inner = (&outer == &b) ? c : b;
  for (const auto& [key, flags] : outer.refs) {
    auto it = inner.refs.find(key);
    if (it == inner.refs.end()) {
      continue;
    }
    const uint8_t fb = (&outer == &b) ? flags : it->second;
    const uint8_t fc = (&outer == &b) ? it->second : flags;
    if (FlagsConflict(fb, fc)) {
      return SigVerdict::kConflict;
    }
  }
  // Serialisable. The merge is a no-op iff it would adopt nothing from c:
  //   * every page c WROTE is also written by b (b serialises after c, so b's data wins
  //     and the walk's adoption `b.data = c.data` never fires);
  //   * c paths b never copied carry no writes, so the walk's graft would share content
  //     b's tree already shares via its base — skipping it preserves every byte. (It also
  //     sidesteps grafting copies the §5.1 reshare pass may later redirect to garbage.)
  // Anything else needs the real merge.
  for (const auto& [key, fc] : c.refs) {
    if ((fc & RefFlag::kWritten) == 0) {
      continue;
    }
    auto it = b.refs.find(key);
    if (it == b.refs.end() || (it->second & RefFlag::kWritten) == 0) {
      return SigVerdict::kUnknown;
    }
  }
  return SigVerdict::kNoopMerge;
}

void VersionIndex::OnCommit(uint64_t file_id, BlockNo base, CommittedRec rec) {
  std::lock_guard<std::mutex> lock(mu_);
  std::deque<CommittedRec>& suffix = files_[file_id];
  if (!suffix.empty() && suffix.back().head != base) {
    // The flip succeeded a head this index never saw (another server's commit landed in
    // between): the suffix is no longer a contiguous chain segment. Restart it.
    suffix.clear();
  }
  suffix.push_back(std::move(rec));
  while (suffix.size() > kMaxRecordsPerFile) {
    suffix.pop_front();
  }
}

void VersionIndex::SeedChain(uint64_t file_id, const std::vector<BlockNo>& chain) {
  std::lock_guard<std::mutex> lock(mu_);
  std::deque<CommittedRec>& suffix = files_[file_id];
  suffix.clear();
  const size_t start = chain.size() > kMaxRecordsPerFile ? chain.size() - kMaxRecordsPerFile : 0;
  for (size_t i = start; i < chain.size(); ++i) {
    suffix.push_back(CommittedRec{chain[i], nullptr, nullptr});
  }
}

std::optional<BlockNo> VersionIndex::CurrentHint(uint64_t file_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(file_id);
  if (it == files_.end() || it->second.empty()) {
    return std::nullopt;
  }
  return it->second.back().head;
}

bool VersionIndex::SuccessorsAfter(uint64_t file_id, BlockNo base,
                                   std::vector<CommittedRec>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(file_id);
  if (it == files_.end()) {
    return false;
  }
  const std::deque<CommittedRec>& suffix = it->second;
  for (size_t i = 0; i < suffix.size(); ++i) {
    if (suffix[i].head == base) {
      out->assign(suffix.begin() + static_cast<ptrdiff_t>(i) + 1, suffix.end());
      return true;
    }
  }
  return false;
}

void VersionIndex::Forget(uint64_t file_id, const std::vector<BlockNo>& pruned_heads) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(file_id);
  if (it == files_.end()) {
    return;
  }
  std::deque<CommittedRec>& suffix = it->second;
  // Pruned versions are always the oldest of the chain, so they can only be a prefix of
  // the suffix window.
  while (!suffix.empty() &&
         std::find(pruned_heads.begin(), pruned_heads.end(), suffix.front().head) !=
             pruned_heads.end()) {
    suffix.pop_front();
  }
}

void VersionIndex::ForgetFile(uint64_t file_id) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(file_id);
}

void VersionIndex::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  files_.clear();
}

std::vector<VersionIndex::FileSnapshot> VersionIndex::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FileSnapshot> out;
  out.reserve(files_.size());
  for (const auto& [file_id, suffix] : files_) {
    FileSnapshot snap;
    snap.file_id = file_id;
    snap.suffix.assign(suffix.begin(), suffix.end());
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace afs
