// Page path names (paper §5).
//
// "Pages within a file are referred to by a pathname ... The root page has an empty
// pathname. The pathname of a page that is not the root is the concatenation of the
// pathname of its parent page with the index of its reference in the array of references in
// the parent page." Path names are visible to clients, "giving them explicit control over
// the structure of their files" — linear files, B-trees, whatever the client wants.

#ifndef SRC_CORE_PATH_H_
#define SRC_CORE_PATH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/wire.h"

namespace afs {

class PagePath {
 public:
  PagePath() = default;
  explicit PagePath(std::vector<uint32_t> indices) : indices_(std::move(indices)) {}
  PagePath(std::initializer_list<uint32_t> indices) : indices_(indices) {}

  static PagePath Root() { return PagePath(); }

  bool IsRoot() const { return indices_.empty(); }
  size_t depth() const { return indices_.size(); }
  const std::vector<uint32_t>& indices() const { return indices_; }
  uint32_t at(size_t i) const { return indices_[i]; }

  PagePath Child(uint32_t index) const;
  // Parent of a non-root path.
  PagePath Parent() const;
  uint32_t LastIndex() const { return indices_.back(); }

  // True if `this` is a (non-strict) prefix of `other`.
  bool IsPrefixOf(const PagePath& other) const;

  // "/" for the root, "/3/0/7" otherwise.
  std::string ToString() const;
  // Parses the ToString() form.
  static Result<PagePath> Parse(const std::string& text);

  void Encode(WireEncoder* enc) const;
  static Result<PagePath> Decode(WireDecoder* dec);

  bool operator==(const PagePath& other) const { return indices_ == other.indices_; }
  bool operator!=(const PagePath& other) const { return !(*this == other); }
  bool operator<(const PagePath& other) const { return indices_ < other.indices_; }

 private:
  std::vector<uint32_t> indices_;
};

}  // namespace afs

#endif  // SRC_CORE_PATH_H_
