// Garbage collector (paper abstract: "A garbage collector that runs independent of, and in
// parallel with, the operation of the system").
//
// Mark-and-sweep over the shared block store:
//   roots = { retained committed versions of every file in the file table }
//         ∪ { live uncommitted versions reported by the live file servers }.
// Uncommitted versions of crashed servers are deliberately *not* roots — "uncommitted
// versions need not be salvaged in a server crash" — so their pages are reclaimed.
//
// Safety against concurrent operation comes from three mechanisms:
//   * an allocation epoch on the PageStore: blocks allocated while the mark phase runs are
//     never swept this cycle;
//   * root-set ordering: the uncommitted heads are snapshotted before the committed
//     chains are walked, so a version committing mid-cycle is in one root set or the
//     other — never in neither;
//   * conservative aborts: if any page read fails mid-mark (e.g. a racing reshare), the
//     cycle is abandoned — garbage survives to the next cycle, live data is never freed.
//
// Retention: at least `keep_versions` committed versions per file are retained; versions
// still needed by an uncommitted update (its base and everything after) are always kept.
// Pruning advances the file table's oldest pointer and clears the new oldest version's
// base reference, maintaining Figure 4's invariant.

#ifndef SRC_CORE_GC_H_
#define SRC_CORE_GC_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <unordered_set>
#include <vector>

#include "src/core/file_server.h"

namespace afs {

// Walk the page tree rooted at `head` level-synchronously — each wave of pages is fetched
// with one vectored read, so a tree of depth d costs O(d) batched RPCs — invoking `visit`
// once per page with the decoded page and its full block chain (head first). `visited`
// carries the blocks already seen: subtrees whose head is in it are skipped, and every
// visited page's chain is added, so passing one set across several calls walks shared
// subtrees once (the GC mark phase passes its mark set; the tier Migrator passes its hot
// set). Fails on the first unreadable page, with `visited`/`visit` reflecting a prefix.
Status WalkVersionTree(PageStore* pages, BlockNo head, std::unordered_set<BlockNo>* visited,
                       const std::function<void(const Page& page,
                                                const std::vector<BlockNo>& chain)>& visit);

struct GcOptions {
  // Committed versions retained per file (>= 1; the current version is always kept).
  uint32_t keep_versions = 1;
};

struct GcStats {
  uint64_t cycles = 0;
  uint64_t blocks_swept = 0;
  uint64_t versions_pruned = 0;
  uint64_t cycles_aborted = 0;
};

class GarbageCollector {
 public:
  // `servers` are the live file servers whose uncommitted versions are roots. The first
  // server's page store and file table drive the walk (all servers share the store).
  GarbageCollector(std::vector<FileServer*> servers, GcOptions options = {});
  ~GarbageCollector();

  // One full cycle: prune old versions, mark, sweep. Safe to call while the system runs.
  Status RunCycle();

  // Background operation.
  void Start(std::chrono::milliseconds interval);
  void Stop();

  GcStats stats() const;

 private:
  Status PruneOldVersions();
  // Mark every block reachable from `head`'s page tree into `marked`.
  Status MarkVersionTree(BlockNo head, std::unordered_set<BlockNo>* marked);

  std::vector<FileServer*> servers_;
  GcOptions options_;

  mutable std::mutex mu_;
  GcStats stats_;

  std::atomic<bool> stop_{false};
  std::thread background_;
};

}  // namespace afs

#endif  // SRC_CORE_GC_H_
