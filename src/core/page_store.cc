#include "src/core/page_store.h"

#include <algorithm>

#include "src/base/wire.h"

namespace afs {
namespace {

// Chain block overhead: next(4) + chunk_len(2).
constexpr uint32_t kChainHeaderBytes = 6;

std::vector<uint8_t> EncodeChainBlock(BlockNo next, std::span<const uint8_t> chunk) {
  WireEncoder enc;
  enc.PutU32(next);
  enc.PutU16(static_cast<uint16_t>(chunk.size()));
  enc.PutRaw(chunk);
  return std::move(enc).Take();
}

struct ChainBlock {
  BlockNo next;
  std::vector<uint8_t> chunk;
};

Result<ChainBlock> DecodeChainBlock(std::span<const uint8_t> payload) {
  WireDecoder dec(payload);
  ChainBlock out;
  ASSIGN_OR_RETURN(out.next, dec.GetU32());
  ASSIGN_OR_RETURN(uint16_t len, dec.GetU16());
  ASSIGN_OR_RETURN(out.chunk, dec.GetRaw(len));
  return out;
}

std::span<const uint8_t> ChunkAt(std::span<const uint8_t> payload, uint32_t chunk_cap,
                                 size_t i) {
  size_t begin = i * chunk_cap;
  size_t len = std::min<size_t>(chunk_cap, payload.size() - begin);
  return payload.subspan(begin, len);
}

}  // namespace

PageStore::PageStore(BlockStore* blocks) : blocks_(blocks) {}

Result<BlockNo> PageStore::AllocBlock(std::span<const uint8_t> payload) {
  ASSIGN_OR_RETURN(BlockNo bno, blocks_->AllocWrite(payload));
  RecordEpochAllocations({&bno, 1});
  return bno;
}

void PageStore::RecordEpochAllocations(std::span<const BlockNo> bnos) {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  if (epoch_open_) {
    epoch_allocations_.insert(bnos.begin(), bnos.end());
  }
}

Result<BlockNo> PageStore::WriteTailChain(std::span<const uint8_t> payload,
                                          uint32_t chunk_cap, size_t num_chunks) {
  if (num_chunks <= 1) {
    return kNilRef;
  }
  if (!BatchingEnabled()) {
    // Baseline: one AllocWrite per tail block, back to front.
    BlockNo next = kNilRef;
    for (size_t i = num_chunks; i-- > 1;) {
      ASSIGN_OR_RETURN(next, AllocBlock(EncodeChainBlock(next, ChunkAt(payload, chunk_cap, i))));
    }
    return next;
  }
  // Batched: reserve every tail block in one round trip, then fill them in one vectored
  // write. Safe regardless of write order inside the batch — the chain is unreachable
  // until the caller links the head, which always happens last and alone.
  ASSIGN_OR_RETURN(std::vector<BlockNo> bnos,
                   blocks_->AllocMulti(static_cast<uint32_t>(num_chunks - 1)));
  RecordEpochAllocations(bnos);
  std::vector<BlockWrite> writes(bnos.size());
  for (size_t t = 1; t < num_chunks; ++t) {
    BlockNo next = (t + 1 < num_chunks) ? bnos[t] : kNilRef;
    writes[t - 1] = {bnos[t - 1], EncodeChainBlock(next, ChunkAt(payload, chunk_cap, t))};
  }
  Status written = blocks_->WriteBatch(writes);
  if (!written.ok()) {
    (void)blocks_->FreeMulti(bnos);  // best-effort reclamation of the unreferenced chain
    return written;
  }
  return bnos[0];
}

Result<BlockNo> PageStore::WritePage(const Page& page) {
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, page.Serialize());
  const uint32_t chunk_cap = blocks_->payload_capacity() - kChainHeaderBytes;
  size_t total = payload.size();
  size_t num_chunks = total == 0 ? 1 : (total + chunk_cap - 1) / chunk_cap;

  // Tail chain first (one AllocMulti + one WriteBatch when batching is on), then the head
  // block — so every block's successor exists before the block pointing at it does.
  ASSIGN_OR_RETURN(BlockNo next, WriteTailChain(payload, chunk_cap, num_chunks));
  return AllocBlock(EncodeChainBlock(next, ChunkAt(payload, chunk_cap, 0)));
}

Status PageStore::OverwritePage(BlockNo head, const Page& page) {
  // Remember the old tail so it can be freed after the atomic head switch.
  std::vector<BlockNo> old_tail;
  {
    ASSIGN_OR_RETURN(std::vector<BlockNo> old_chain, ChainBlocks(head));
    old_tail.assign(old_chain.begin() + 1, old_chain.end());
  }

  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, page.Serialize());
  const uint32_t chunk_cap = blocks_->payload_capacity() - kChainHeaderBytes;
  size_t total = payload.size();
  size_t num_chunks = total == 0 ? 1 : (total + chunk_cap - 1) / chunk_cap;

  // New tail blocks first, head overwritten last: the head write is the atomic commit
  // point of the overwrite.
  ASSIGN_OR_RETURN(BlockNo next, WriteTailChain(payload, chunk_cap, num_chunks));
  RETURN_IF_ERROR(blocks_->Write(head, EncodeChainBlock(next, ChunkAt(payload, chunk_cap, 0))));

  return blocks_->FreeMulti(old_tail);
}

Status PageStore::OverwritePages(std::vector<PendingOverwrite> pending) {
  if (pending.empty()) {
    return OkStatus();
  }
  if (!BatchingEnabled()) {
    for (PendingOverwrite& p : pending) {
      RETURN_IF_ERROR(OverwritePage(p.head, p.page));
    }
    return OkStatus();
  }

  const uint32_t chunk_cap = blocks_->payload_capacity() - kChainHeaderBytes;
  std::vector<std::vector<uint8_t>> payloads(pending.size());
  std::vector<size_t> num_chunks(pending.size());
  std::vector<BlockNo> old_tails;
  size_t tails_needed = 0;
  for (size_t i = 0; i < pending.size(); ++i) {
    ASSIGN_OR_RETURN(payloads[i], pending[i].page.Serialize());
    size_t total = payloads[i].size();
    num_chunks[i] = total == 0 ? 1 : (total + chunk_cap - 1) / chunk_cap;
    tails_needed += num_chunks[i] - 1;
    if (pending[i].old_tail_known) {
      old_tails.insert(old_tails.end(), pending[i].old_tail.begin(), pending[i].old_tail.end());
    } else {
      ASSIGN_OR_RETURN(std::vector<BlockNo> chain, ChainBlocks(pending[i].head));
      old_tails.insert(old_tails.end(), chain.begin() + 1, chain.end());
    }
  }

  // Reserve every new tail block across ALL pages in one round trip, fill them in one
  // vectored write, then switch every head. Unreferenced until their head is linked, the
  // tails may land in any order; heads only switch after the whole tail batch is durable.
  std::vector<BlockNo> bnos;
  if (tails_needed > 0) {
    ASSIGN_OR_RETURN(bnos, blocks_->AllocMulti(static_cast<uint32_t>(tails_needed)));
    RecordEpochAllocations(bnos);
  }
  std::vector<BlockWrite> tail_writes;
  tail_writes.reserve(tails_needed);
  std::vector<BlockWrite> head_writes;
  head_writes.reserve(pending.size());
  size_t used = 0;
  for (size_t i = 0; i < pending.size(); ++i) {
    std::span<const uint8_t> payload = payloads[i];
    const size_t n = num_chunks[i];
    const BlockNo* mine = bnos.data() + used;  // this page's n-1 tail blocks
    used += n - 1;
    for (size_t t = 1; t < n; ++t) {
      BlockNo next = (t + 1 < n) ? mine[t] : kNilRef;
      tail_writes.push_back({mine[t - 1], EncodeChainBlock(next, ChunkAt(payload, chunk_cap, t))});
    }
    BlockNo head_next = n > 1 ? mine[0] : kNilRef;
    head_writes.push_back(
        {pending[i].head, EncodeChainBlock(head_next, ChunkAt(payload, chunk_cap, 0))});
  }
  if (!tail_writes.empty()) {
    Status written = blocks_->WriteBatch(tail_writes);
    if (!written.ok()) {
      (void)blocks_->FreeMulti(bnos);  // best-effort reclamation of the unreferenced chains
      return written;
    }
  }
  RETURN_IF_ERROR(blocks_->WriteBatch(head_writes));
  return blocks_->FreeMulti(old_tails);
}

Result<Page> PageStore::ReadPage(BlockNo head) {
  std::vector<uint8_t> payload;
  BlockNo bno = head;
  size_t guard = 0;
  while (bno != kNilRef) {
    if (++guard > 4096) {
      return CorruptError("page chain too long (cycle?)");
    }
    ASSIGN_OR_RETURN(std::vector<uint8_t> raw, blocks_->Read(bno));
    ASSIGN_OR_RETURN(ChainBlock cb, DecodeChainBlock(raw));
    payload.insert(payload.end(), cb.chunk.begin(), cb.chunk.end());
    bno = cb.next;
  }
  return Page::Deserialize(payload);
}

Result<std::vector<PageReadResult>> PageStore::ReadPagesDetailed(
    std::span<const BlockNo> heads, std::vector<std::vector<BlockNo>>* chains) {
  std::vector<PageReadResult> results(heads.size());
  if (chains != nullptr) {
    chains->assign(heads.size(), {});
  }
  if (heads.empty()) {
    return results;
  }

  // Per-head walk state: the next block to fetch, accumulated payload, cycle guard.
  std::vector<BlockNo> cursor(heads.begin(), heads.end());
  std::vector<std::vector<uint8_t>> payloads(heads.size());
  std::vector<size_t> guards(heads.size(), 0);
  std::vector<size_t> active;
  active.reserve(heads.size());
  for (size_t i = 0; i < heads.size(); ++i) {
    active.push_back(i);
  }

  // Level-synchronous walk: each round fetches the current frontier block of EVERY live
  // chain in one ReadMulti, so k pages of depth d cost d vectored RPCs instead of k*d
  // single-block ones.
  while (!active.empty()) {
    std::vector<BlockNo> frontier;
    frontier.reserve(active.size());
    for (size_t i : active) {
      frontier.push_back(cursor[i]);
    }
    ASSIGN_OR_RETURN(std::vector<BlockReadResult> reads, blocks_->ReadMulti(frontier));
    if (reads.size() != frontier.size()) {
      return InternalError("ReadMulti returned wrong entry count");
    }

    std::vector<size_t> still_active;
    for (size_t j = 0; j < active.size(); ++j) {
      size_t i = active[j];
      if (!reads[j].status.ok()) {
        results[i].status = reads[j].status;
        continue;
      }
      Result<ChainBlock> cb = DecodeChainBlock(reads[j].data);
      if (!cb.ok()) {
        results[i].status = cb.status();
        continue;
      }
      if (chains != nullptr) {
        (*chains)[i].push_back(cursor[i]);
      }
      payloads[i].insert(payloads[i].end(), cb->chunk.begin(), cb->chunk.end());
      if (cb->next == kNilRef) {
        continue;  // chain complete; deserialized below
      }
      if (++guards[i] > 4096) {
        results[i].status = CorruptError("page chain too long (cycle?)");
        continue;
      }
      cursor[i] = cb->next;
      still_active.push_back(i);
    }
    active = std::move(still_active);
  }

  for (size_t i = 0; i < heads.size(); ++i) {
    if (!results[i].status.ok()) {
      continue;
    }
    Result<Page> page = Page::Deserialize(payloads[i]);
    if (page.ok()) {
      results[i].page = *std::move(page);
    } else {
      results[i].status = page.status();
    }
  }
  return results;
}

Result<std::vector<Page>> PageStore::ReadPages(std::span<const BlockNo> heads) {
  ASSIGN_OR_RETURN(std::vector<PageReadResult> detailed, ReadPagesDetailed(heads));
  std::vector<Page> pages;
  pages.reserve(detailed.size());
  for (auto& r : detailed) {
    RETURN_IF_ERROR(r.status);
    pages.push_back(std::move(r.page));
  }
  return pages;
}

Result<std::vector<BlockNo>> PageStore::ChainBlocks(BlockNo head) {
  std::vector<BlockNo> chain;
  BlockNo bno = head;
  size_t guard = 0;
  while (bno != kNilRef) {
    if (++guard > 4096) {
      return CorruptError("page chain too long (cycle?)");
    }
    chain.push_back(bno);
    ASSIGN_OR_RETURN(std::vector<uint8_t> raw, blocks_->Read(bno));
    ASSIGN_OR_RETURN(ChainBlock cb, DecodeChainBlock(raw));
    bno = cb.next;
  }
  return chain;
}

Status PageStore::FreePage(BlockNo head) {
  ASSIGN_OR_RETURN(std::vector<BlockNo> chain, ChainBlocks(head));
  return blocks_->FreeMulti(chain);
}

void PageStore::BeginAllocationEpoch() {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  epoch_open_ = true;
  epoch_allocations_.clear();
}

std::unordered_set<BlockNo> PageStore::EndAllocationEpoch() {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  epoch_open_ = false;
  return std::move(epoch_allocations_);
}

}  // namespace afs
