#include "src/core/page_store.h"

#include "src/base/wire.h"

namespace afs {
namespace {

// Chain block overhead: next(4) + chunk_len(2).
constexpr uint32_t kChainHeaderBytes = 6;

std::vector<uint8_t> EncodeChainBlock(BlockNo next, std::span<const uint8_t> chunk) {
  WireEncoder enc;
  enc.PutU32(next);
  enc.PutU16(static_cast<uint16_t>(chunk.size()));
  enc.PutRaw(chunk);
  return std::move(enc).Take();
}

struct ChainBlock {
  BlockNo next;
  std::vector<uint8_t> chunk;
};

Result<ChainBlock> DecodeChainBlock(std::span<const uint8_t> payload) {
  WireDecoder dec(payload);
  ChainBlock out;
  ASSIGN_OR_RETURN(out.next, dec.GetU32());
  ASSIGN_OR_RETURN(uint16_t len, dec.GetU16());
  ASSIGN_OR_RETURN(out.chunk, dec.GetRaw(len));
  return out;
}

}  // namespace

PageStore::PageStore(BlockStore* blocks) : blocks_(blocks) {}

Result<BlockNo> PageStore::AllocBlock(std::span<const uint8_t> payload) {
  ASSIGN_OR_RETURN(BlockNo bno, blocks_->AllocWrite(payload));
  std::lock_guard<std::mutex> lock(epoch_mu_);
  if (epoch_open_) {
    epoch_allocations_.insert(bno);
  }
  return bno;
}

Result<BlockNo> PageStore::WritePage(const Page& page) {
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, page.Serialize());
  const uint32_t chunk_cap = blocks_->payload_capacity() - kChainHeaderBytes;

  // Split into chunks; write back-to-front so every block's successor exists before the
  // block pointing at it does.
  size_t total = payload.size();
  size_t num_chunks = total == 0 ? 1 : (total + chunk_cap - 1) / chunk_cap;
  BlockNo next = kNilRef;
  for (size_t i = num_chunks; i-- > 0;) {
    size_t begin = i * chunk_cap;
    size_t len = std::min<size_t>(chunk_cap, total - begin);
    auto chunk = std::span<const uint8_t>(payload.data() + begin, len);
    ASSIGN_OR_RETURN(next, AllocBlock(EncodeChainBlock(next, chunk)));
  }
  return next;  // head
}

Status PageStore::OverwritePage(BlockNo head, const Page& page) {
  // Remember the old tail so it can be freed after the atomic head switch.
  std::vector<BlockNo> old_tail;
  {
    ASSIGN_OR_RETURN(std::vector<BlockNo> old_chain, ChainBlocks(head));
    old_tail.assign(old_chain.begin() + 1, old_chain.end());
  }

  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, page.Serialize());
  const uint32_t chunk_cap = blocks_->payload_capacity() - kChainHeaderBytes;
  size_t total = payload.size();
  size_t num_chunks = total == 0 ? 1 : (total + chunk_cap - 1) / chunk_cap;

  // New tail blocks first (back to front), head overwritten last: the head write is the
  // atomic commit point of the overwrite.
  BlockNo next = kNilRef;
  for (size_t i = num_chunks; i-- > 1;) {
    size_t begin = i * chunk_cap;
    size_t len = std::min<size_t>(chunk_cap, total - begin);
    auto chunk = std::span<const uint8_t>(payload.data() + begin, len);
    ASSIGN_OR_RETURN(next, AllocBlock(EncodeChainBlock(next, chunk)));
  }
  size_t head_len = std::min<size_t>(chunk_cap, total);
  RETURN_IF_ERROR(blocks_->Write(
      head, EncodeChainBlock(next, std::span<const uint8_t>(payload.data(), head_len))));

  for (BlockNo bno : old_tail) {
    RETURN_IF_ERROR(blocks_->Free(bno));
  }
  return OkStatus();
}

Result<Page> PageStore::ReadPage(BlockNo head) {
  std::vector<uint8_t> payload;
  BlockNo bno = head;
  size_t guard = 0;
  while (bno != kNilRef) {
    if (++guard > 4096) {
      return CorruptError("page chain too long (cycle?)");
    }
    ASSIGN_OR_RETURN(std::vector<uint8_t> raw, blocks_->Read(bno));
    ASSIGN_OR_RETURN(ChainBlock cb, DecodeChainBlock(raw));
    payload.insert(payload.end(), cb.chunk.begin(), cb.chunk.end());
    bno = cb.next;
  }
  return Page::Deserialize(payload);
}

Result<std::vector<BlockNo>> PageStore::ChainBlocks(BlockNo head) {
  std::vector<BlockNo> chain;
  BlockNo bno = head;
  size_t guard = 0;
  while (bno != kNilRef) {
    if (++guard > 4096) {
      return CorruptError("page chain too long (cycle?)");
    }
    chain.push_back(bno);
    ASSIGN_OR_RETURN(std::vector<uint8_t> raw, blocks_->Read(bno));
    ASSIGN_OR_RETURN(ChainBlock cb, DecodeChainBlock(raw));
    bno = cb.next;
  }
  return chain;
}

Status PageStore::FreePage(BlockNo head) {
  ASSIGN_OR_RETURN(std::vector<BlockNo> chain, ChainBlocks(head));
  for (BlockNo bno : chain) {
    RETURN_IF_ERROR(blocks_->Free(bno));
  }
  return OkStatus();
}

void PageStore::BeginAllocationEpoch() {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  epoch_open_ = true;
  epoch_allocations_.clear();
}

std::unordered_set<BlockNo> PageStore::EndAllocationEpoch() {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  epoch_open_ = false;
  return std::move(epoch_allocations_);
}

}  // namespace afs
