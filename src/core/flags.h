// The C/R/W/S/M page-reference flags and their 4-bit encoding (paper §5.1).
//
// A page reference in a parent page carries five flags about the referred-to child page:
//   C — the child was Copied into this version (no longer shared with the base version)
//   R — the child's data was Read
//   W — the child's data was Written
//   S — the child's references were Searched (the tree was descended through it)
//   M — the child's references were Modified (insert page, remove page, ...)
//
// The flags are not independent: "it is not possible to access a page without copying it,
// nor is it possible to modify the references without looking at them." Hence R, W, S or M
// imply C, and M implies S. "This reduces the number of flag combinations to 13, which
// allows encoding the flags in four bits. Amoeba uses 28 bits for a block number and four
// bits for the flags." We reproduce exactly that packing.

#ifndef SRC_CORE_FLAGS_H_
#define SRC_CORE_FLAGS_H_

#include <cstdint>
#include <string>

#include "src/base/status.h"
#include "src/disk/block_device.h"

namespace afs {

// Individual flag bits (the unpacked representation).
struct RefFlag {
  static constexpr uint8_t kCopied = 1u << 0;    // C
  static constexpr uint8_t kRead = 1u << 1;      // R
  static constexpr uint8_t kWritten = 1u << 2;   // W
  static constexpr uint8_t kSearched = 1u << 3;  // S
  static constexpr uint8_t kModified = 1u << 4;  // M
  static constexpr uint8_t kAllFlags = 0x1f;
};

// Number of valid flag combinations under the implication rules (the paper's 13).
inline constexpr int kNumValidFlagCombos = 13;

// True iff `flags` satisfies the implication rules (R|W|S|M => C, M => S).
bool FlagsValid(uint8_t flags);

// Enforce the implications by setting the implied bits (used when orring in new accesses).
uint8_t NormalizeFlags(uint8_t flags);

// 4-bit code <-> flag mask. EncodeFlags fails on an invalid combination; DecodeFlags fails
// on a code >= 13 (such a code in a stored page means corruption).
Result<uint8_t> EncodeFlags(uint8_t flags);
Result<uint8_t> DecodeFlags(uint8_t code);

// "RWC--" style string for logs and test failure messages.
std::string FlagsToString(uint8_t flags);

// A page reference: 28-bit block number of the child page (chain head) plus flags.
// kNilRef marks an absent reference.
inline constexpr BlockNo kNilRef = kMaxBlockNo;  // 0x0fffffff, never allocated

struct PageRef {
  BlockNo block = kNilRef;
  uint8_t flags = 0;

  bool copied() const { return (flags & RefFlag::kCopied) != 0; }
  bool read() const { return (flags & RefFlag::kRead) != 0; }
  bool written() const { return (flags & RefFlag::kWritten) != 0; }
  bool searched() const { return (flags & RefFlag::kSearched) != 0; }
  bool modified() const { return (flags & RefFlag::kModified) != 0; }

  bool operator==(const PageRef& other) const {
    return block == other.block && flags == other.flags;
  }
};

// Pack to the on-disk u32: high 4 bits flag code, low 28 bits block number.
Result<uint32_t> PackRef(const PageRef& ref);
Result<PageRef> UnpackRef(uint32_t raw);

}  // namespace afs

#endif  // SRC_CORE_FLAGS_H_
