#include "src/core/page.h"

#include "src/base/wire.h"

namespace afs {
namespace {

// kind(1) + base_ref(4) + nrefs(2) + dsize(4)
constexpr size_t kPlainHeaderBytes = 11;
// file_cap(28) + version_cap(28) + commit_ref(4) + top_lock(8) + inner_lock(8) +
// parent_ref(4) + root_flags(1) + prepare_txn(8)
constexpr size_t kVersionExtraBytes = 89;

// Wire tags for the kind byte — the page format's version marker. Version pages gained
// the prepare_txn field (the cross-shard in-doubt marker) in a header growth from 81 to
// 89 bytes; a page written before that carries tag 2 and still decodes, with
// prepare_txn = 0 (a pre-sharding store cannot hold an in-doubt tip). New pages always
// serialize as tag 3.
constexpr uint8_t kWirePlain = 1;
constexpr uint8_t kWireVersionV1 = 2;  // version header without prepare_txn
constexpr uint8_t kWireVersionV2 = 3;  // version header with prepare_txn

}  // namespace

size_t Page::SerializedSize() const {
  size_t size = kPlainHeaderBytes + refs.size() * 4 + data.size();
  if (kind == PageKind::kVersion) {
    size += kVersionExtraBytes;
  }
  return size;
}

Result<std::vector<uint8_t>> Page::Serialize() const {
  if (SerializedSize() > kMaxPageBytes) {
    return InvalidArgumentError("page exceeds 32K transaction limit");
  }
  WireEncoder enc;
  enc.PutU8(kind == PageKind::kVersion ? kWireVersionV2 : kWirePlain);
  if (kind == PageKind::kVersion) {
    enc.PutCapability(file_cap);
    enc.PutCapability(version_cap);
    enc.PutU32(commit_ref);
    enc.PutU64(top_lock);
    enc.PutU64(inner_lock);
    enc.PutU32(parent_ref);
    if (!FlagsValid(root_flags)) {
      return InvalidArgumentError("invalid root flags");
    }
    enc.PutU8(root_flags);
    enc.PutU64(prepare_txn);
  }
  enc.PutU32(base_ref);
  enc.PutU16(static_cast<uint16_t>(refs.size()));
  enc.PutU32(static_cast<uint32_t>(data.size()));
  for (const PageRef& ref : refs) {
    ASSIGN_OR_RETURN(uint32_t packed, PackRef(ref));
    enc.PutU32(packed);
  }
  enc.PutRaw(data);
  return std::move(enc).Take();
}

Result<Page> Page::Deserialize(std::span<const uint8_t> payload) {
  WireDecoder dec(payload);
  Page page;
  ASSIGN_OR_RETURN(uint8_t kind_raw, dec.GetU8());
  if (kind_raw != kWirePlain && kind_raw != kWireVersionV1 && kind_raw != kWireVersionV2) {
    return CorruptError("bad page kind");
  }
  page.kind = kind_raw == kWirePlain ? PageKind::kPlain : PageKind::kVersion;
  if (page.kind == PageKind::kVersion) {
    ASSIGN_OR_RETURN(page.file_cap, dec.GetCapability());
    ASSIGN_OR_RETURN(page.version_cap, dec.GetCapability());
    ASSIGN_OR_RETURN(page.commit_ref, dec.GetU32());
    ASSIGN_OR_RETURN(page.top_lock, dec.GetU64());
    ASSIGN_OR_RETURN(page.inner_lock, dec.GetU64());
    ASSIGN_OR_RETURN(page.parent_ref, dec.GetU32());
    ASSIGN_OR_RETURN(page.root_flags, dec.GetU8());
    if (!FlagsValid(page.root_flags)) {
      return CorruptError("invalid root flags");
    }
    if (kind_raw == kWireVersionV2) {
      ASSIGN_OR_RETURN(page.prepare_txn, dec.GetU64());
    } else {
      page.prepare_txn = 0;  // pre-sharding page: no in-doubt marker existed to set
    }
  }
  ASSIGN_OR_RETURN(page.base_ref, dec.GetU32());
  ASSIGN_OR_RETURN(uint16_t nrefs, dec.GetU16());
  ASSIGN_OR_RETURN(uint32_t dsize, dec.GetU32());
  page.refs.reserve(nrefs);
  for (uint16_t i = 0; i < nrefs; ++i) {
    ASSIGN_OR_RETURN(uint32_t packed, dec.GetU32());
    ASSIGN_OR_RETURN(PageRef ref, UnpackRef(packed));
    page.refs.push_back(ref);
  }
  ASSIGN_OR_RETURN(page.data, dec.GetRaw(dsize));
  if (!dec.AtEnd()) {
    return CorruptError("trailing bytes after page data");
  }
  return page;
}

Result<PageRef> Page::RefAt(uint32_t index) const {
  if (index >= refs.size()) {
    return InvalidArgumentError("reference index out of range");
  }
  return refs[index];
}

Status Page::SetRef(uint32_t index, PageRef ref) {
  if (index >= refs.size()) {
    return InvalidArgumentError("reference index out of range");
  }
  refs[index] = ref;
  return OkStatus();
}

}  // namespace afs
