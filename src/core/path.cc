#include "src/core/path.h"

#include <sstream>

namespace afs {

PagePath PagePath::Child(uint32_t index) const {
  std::vector<uint32_t> v = indices_;
  v.push_back(index);
  return PagePath(std::move(v));
}

PagePath PagePath::Parent() const {
  std::vector<uint32_t> v(indices_.begin(), indices_.end() - 1);
  return PagePath(std::move(v));
}

bool PagePath::IsPrefixOf(const PagePath& other) const {
  if (indices_.size() > other.indices_.size()) {
    return false;
  }
  for (size_t i = 0; i < indices_.size(); ++i) {
    if (indices_[i] != other.indices_[i]) {
      return false;
    }
  }
  return true;
}

std::string PagePath::ToString() const {
  if (indices_.empty()) {
    return "/";
  }
  std::ostringstream os;
  for (uint32_t idx : indices_) {
    os << "/" << idx;
  }
  return os.str();
}

Result<PagePath> PagePath::Parse(const std::string& text) {
  if (text.empty() || text[0] != '/') {
    return InvalidArgumentError("path must start with '/'");
  }
  std::vector<uint32_t> indices;
  size_t pos = 1;
  while (pos < text.size()) {
    size_t next = text.find('/', pos);
    if (next == std::string::npos) {
      next = text.size();
    }
    if (next == pos) {
      return InvalidArgumentError("empty path component");
    }
    uint64_t value = 0;
    for (size_t i = pos; i < next; ++i) {
      if (text[i] < '0' || text[i] > '9') {
        return InvalidArgumentError("non-numeric path component");
      }
      value = value * 10 + static_cast<uint64_t>(text[i] - '0');
      if (value > UINT32_MAX) {
        return InvalidArgumentError("path component overflows u32");
      }
    }
    indices.push_back(static_cast<uint32_t>(value));
    pos = next + 1;
  }
  return PagePath(std::move(indices));
}

void PagePath::Encode(WireEncoder* enc) const {
  enc->PutU16(static_cast<uint16_t>(indices_.size()));
  for (uint32_t idx : indices_) {
    enc->PutU32(idx);
  }
}

Result<PagePath> PagePath::Decode(WireDecoder* dec) {
  ASSIGN_OR_RETURN(uint16_t n, dec->GetU16());
  std::vector<uint32_t> indices;
  indices.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(uint32_t idx, dec->GetU32());
    indices.push_back(idx);
  }
  return PagePath(std::move(indices));
}

}  // namespace afs
