#include "src/core/commit_tuning.h"

#include <atomic>

namespace afs {
namespace {

std::atomic<bool> g_group_commit{true};
std::atomic<bool> g_version_index{true};
std::atomic<bool> g_parallel_validate{true};

}  // namespace

void SetGroupCommitEnabled(bool enabled) {
  g_group_commit.store(enabled, std::memory_order_relaxed);
}
bool GroupCommitEnabled() { return g_group_commit.load(std::memory_order_relaxed); }

void SetVersionIndexEnabled(bool enabled) {
  g_version_index.store(enabled, std::memory_order_relaxed);
}
bool VersionIndexEnabled() { return g_version_index.load(std::memory_order_relaxed); }

void SetParallelValidateEnabled(bool enabled) {
  g_parallel_validate.store(enabled, std::memory_order_relaxed);
}
bool ParallelValidateEnabled() { return g_parallel_validate.load(std::memory_order_relaxed); }

}  // namespace afs
