#include "src/core/flags.h"

#include <array>

namespace afs {
namespace {

// The 13 valid combinations, in a fixed order that defines the 4-bit code. Order: the
// shared/untouched state first, then copied states by increasing access.
constexpr std::array<uint8_t, kNumValidFlagCombos> BuildTable() {
  std::array<uint8_t, kNumValidFlagCombos> table{};
  int n = 0;
  for (uint8_t flags = 0; flags <= RefFlag::kAllFlags; ++flags) {
    const bool c = (flags & RefFlag::kCopied) != 0;
    const bool r = (flags & RefFlag::kRead) != 0;
    const bool w = (flags & RefFlag::kWritten) != 0;
    const bool s = (flags & RefFlag::kSearched) != 0;
    const bool m = (flags & RefFlag::kModified) != 0;
    const bool implies_c = !(r || w || s || m) || c;
    const bool m_implies_s = !m || s;
    if (implies_c && m_implies_s) {
      table[n++] = flags;
    }
  }
  return table;
}

constexpr std::array<uint8_t, kNumValidFlagCombos> kCombos = BuildTable();

// Inverse map: flag mask (0..31) -> code, or -1 if invalid.
constexpr std::array<int8_t, 32> BuildInverse() {
  std::array<int8_t, 32> inv{};
  for (auto& v : inv) {
    v = -1;
  }
  for (int code = 0; code < kNumValidFlagCombos; ++code) {
    inv[kCombos[code]] = static_cast<int8_t>(code);
  }
  return inv;
}

constexpr std::array<int8_t, 32> kInverse = BuildInverse();

}  // namespace

bool FlagsValid(uint8_t flags) {
  return flags <= RefFlag::kAllFlags && kInverse[flags] >= 0;
}

uint8_t NormalizeFlags(uint8_t flags) {
  flags &= RefFlag::kAllFlags;
  if ((flags & RefFlag::kModified) != 0) {
    flags |= RefFlag::kSearched;
  }
  if ((flags & (RefFlag::kRead | RefFlag::kWritten | RefFlag::kSearched)) != 0) {
    flags |= RefFlag::kCopied;
  }
  return flags;
}

Result<uint8_t> EncodeFlags(uint8_t flags) {
  if (!FlagsValid(flags)) {
    return InvalidArgumentError("invalid C/R/W/S/M flag combination");
  }
  return static_cast<uint8_t>(kInverse[flags]);
}

Result<uint8_t> DecodeFlags(uint8_t code) {
  if (code >= kNumValidFlagCombos) {
    return CorruptError("flag code out of range");
  }
  return kCombos[code];
}

std::string FlagsToString(uint8_t flags) {
  std::string out = "-----";
  if ((flags & RefFlag::kCopied) != 0) {
    out[0] = 'C';
  }
  if ((flags & RefFlag::kRead) != 0) {
    out[1] = 'R';
  }
  if ((flags & RefFlag::kWritten) != 0) {
    out[2] = 'W';
  }
  if ((flags & RefFlag::kSearched) != 0) {
    out[3] = 'S';
  }
  if ((flags & RefFlag::kModified) != 0) {
    out[4] = 'M';
  }
  return out;
}

Result<uint32_t> PackRef(const PageRef& ref) {
  if (ref.block > kMaxBlockNo) {
    return InvalidArgumentError("block number exceeds 28 bits");
  }
  ASSIGN_OR_RETURN(uint8_t code, EncodeFlags(ref.flags));
  return (static_cast<uint32_t>(code) << 28) | ref.block;
}

Result<PageRef> UnpackRef(uint32_t raw) {
  PageRef ref;
  ref.block = raw & kMaxBlockNo;
  ASSIGN_OR_RETURN(ref.flags, DecodeFlags(static_cast<uint8_t>(raw >> 28)));
  return ref;
}

}  // namespace afs
